//! Regression test for the fig4/fig5 journal grid's agreement-rate floor.
//!
//! Four of the 84 archived grid cells (e.g. Global-NN, `w = 15`,
//! `sim_seed = 2`) report `estimates_agree = false` at quiescence even
//! though the radio is loss-free, flooring the paper-claims agreement rate
//! at 0.75. This is **not** a too-short protocol deadline: the runs are
//! quiescent and every broadcast was delivered. It is *sampling-clock
//! window skew*: the simulator staggers node clocks across 64 slots of
//! 200 µs, so at the instant the run settles, a node whose sampling slot
//! lands exactly on the sliding-window cutoff (`now - w·interval`) still
//! retains one whole epoch of points that every later-slotted node already
//! evicted. Different windows are different detection problems — Theorem 1
//! guarantees agreement on the *union of the current windows*, which the
//! skewed nodes no longer share, so the per-node top-`n` sets can
//! legitimately differ on rank-boundary points.
//!
//! The proof carried by this test: the divergence (a) reproduces at
//! quiescence, and (b) vanishes the moment every node's window is advanced
//! to one common instant — same detectors, same held points, no further
//! protocol traffic. The serving-path fleet (`wsn-fleet`) advances every
//! node to a common per-slide instant by construction, so this skew cannot
//! occur there; `tests/property_fleet.rs` covers that side.

use std::collections::BTreeMap;

use wsn_bench::paper::{global_nn, PaperScenario, PAPER_N};
use wsn_core::app::{any_simulator_with_sampling, DetectorApp};
use wsn_core::experiment::AnyDetector;
use wsn_core::global::GlobalNode;
use wsn_core::OutlierDetector;
use wsn_data::impute::WindowMeanImputer;
use wsn_data::lab::LabDeployment;
use wsn_data::stream::SensorStream;
use wsn_data::window::WindowConfig;
use wsn_data::SensorId;
use wsn_netsim::radio::RadioConfig;
use wsn_netsim::topology::Topology;
use wsn_netsim::{SimConfig, SimHandle};

/// The smallest disagreeing cell of the archived grid: Figure 4's
/// Global-NN series at `w = 15`, seed offset 1 (`sim_seed = 2`,
/// `trace_seed = 8`).
#[test]
fn quiescent_window_skew_divergence_is_real_and_clock_alignment_removes_it() {
    let scenario = PaperScenario::Full;
    let mut config = scenario.config(global_nn(), 15, PAPER_N);
    config.sim_seed = 2;
    config.trace_seed = 8;

    let deployment =
        LabDeployment::with_sensor_count(config.sensor_count, config.deployment_seed).unwrap();
    let topology = Topology::from_deployment(&deployment, config.transmission_range_m);
    let mut trace = deployment.generate_trace(&config.trace, config.trace_seed).unwrap();
    WindowMeanImputer::new(config.window_samples as usize).impute_trace(&mut trace);
    let window =
        WindowConfig::from_samples(config.window_samples, config.trace.sample_interval_secs)
            .unwrap();
    let schedule = config.schedule();
    let sim_config = SimConfig {
        radio: RadioConfig::with_range(config.transmission_range_m).with_loss(config.loss),
        seed: config.sim_seed,
        ..Default::default()
    };
    let ranking = config.algorithm.ranking().build();

    let make_app = |id: SensorId| {
        let stream = trace
            .stream(id)
            .ok()
            .cloned()
            .unwrap_or_else(|| SensorStream::new(deployment.sensors()[0]));
        let detector = AnyDetector::Global(GlobalNode::new(id, ranking.clone(), config.n, window));
        DetectorApp::new(detector, stream, schedule)
    };
    let mut sim: wsn_netsim::region::AnySimulator<DetectorApp<AnyDetector>> =
        any_simulator_with_sampling(config.backend, sim_config, topology, &schedule, &make_app);

    // (a) The run settles (every message delivered, nothing pending) ...
    let quiescent = sim.run_until_quiescent(config.deadline());
    assert!(quiescent, "the loss-free run must reach protocol quiescence");

    // ... yet the estimates disagree: the staggered sampling clocks leave
    // at least one node holding an epoch its peers' windows already
    // evicted.
    let mut estimates = BTreeMap::new();
    sim.for_each_app(&mut |id, app| {
        estimates.insert(id, app.detector().estimate());
    });
    assert!(
        !wsn_core::metrics::estimates_agree(&estimates),
        "the archived divergence no longer reproduces — if a change \
         intentionally aligned the simulator's sampling clocks, re-anchor \
         the agreement floor in experiments_fig45 and retire this test"
    );

    // (b) Advance every window to one common instant — no new points, no
    // new messages — and the disagreement disappears: the divergence is
    // window skew, not a protocol error.
    let common_now = config.deadline();
    let mut aligned = BTreeMap::new();
    sim.for_each_app_mut(&mut |id, app| {
        app.detector_mut().advance_time(common_now);
        aligned.insert(id, app.detector().estimate());
    });
    assert!(
        wsn_core::metrics::estimates_agree(&aligned),
        "aligning the windows must restore Theorem 1 agreement"
    );
}
