//! Journaled, resumable sweep runs.
//!
//! A long sweep grid (hundreds of `(configuration, seed)` cells, each a full
//! simulation) should survive being killed. [`SweepJournal`] makes that
//! cheap: every cell's metrics are appended to a JSONL file **on
//! completion**, one row per line, fsynced before the runner moves on. A
//! re-run against the same journal skips every cell whose row is already
//! present — identified by the cell's configuration hash
//! ([`wsn_core::persist::config_hash`], which covers the seed) — and only
//! simulates the remainder.
//!
//! # Crash recovery
//!
//! A kill mid-append can leave a half-written trailing line. [`SweepJournal::open`]
//! detects it (the line does not parse as a row, or lacks its terminating
//! newline) and truncates the file back to the last complete row; the torn
//! cell simply re-runs. A malformed line *followed by* complete rows is not
//! a torn tail but real corruption, and `open` refuses the file instead of
//! silently dropping data.
//!
//! # Bit-identical aggregation
//!
//! Each row stores exactly the per-run scalars
//! [`crate::sweep::run_averaged`]'s aggregation consumes, and
//! [`aggregate_rows`] repeats that arithmetic term for term (same seed
//! order, same summation order). Because [`wsn_json`] round-trips `f64`s
//! losslessly, an average recomputed from archived rows is bit-identical
//! to the one computed from live runs — there is a test for that.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::pool;
use crate::sweep::{seed_configs, AveragedOutcome};
use wsn_core::experiment::{run_experiment, ExperimentConfig, ExperimentOutcome};
use wsn_core::persist::config_hash;
use wsn_core::{CoreError, PersistError};
use wsn_json::JsonValue;
use wsn_netsim::stats::MinAvgMax;

/// Rows appended to any journal this process runs.
static OBS_JOURNAL_ROWS: wsn_obs::Counter = wsn_obs::Counter::new("persist.journal_rows");
/// Cells skipped because their row was already journaled.
static OBS_CELLS_SKIPPED: wsn_obs::Counter =
    wsn_obs::Counter::new("persist.cells_skipped_on_resume");

/// Provenance of the binary that produced a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Toolchain {
    /// The workspace version (`CARGO_PKG_VERSION`) the row was built from.
    pub version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl Toolchain {
    /// The provenance of the currently running binary.
    pub fn current() -> Toolchain {
        Toolchain {
            version: env!("CARGO_PKG_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("version".into(), JsonValue::from(self.version.as_str())),
            ("os".into(), JsonValue::from(self.os.as_str())),
            ("arch".into(), JsonValue::from(self.arch.as_str())),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Toolchain, PersistError> {
        Ok(Toolchain {
            version: str_field(value, "version")?.to_string(),
            os: str_field(value, "os")?.to_string(),
            arch: str_field(value, "arch")?.to_string(),
        })
    }
}

/// The per-run scalars the seed-averaging arithmetic consumes — one value
/// per term of [`crate::sweep`]'s `aggregate`, nothing more. Everything an
/// [`AveragedOutcome`] reports is a mean (or element-wise mean) of these.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Average transmit energy per node per sampling round, in joules.
    pub tx_per_node_per_round: f64,
    /// Average receive energy per node per sampling round, in joules.
    pub rx_per_node_per_round: f64,
    /// Minimum total per-node energy over the run, in joules.
    pub total_energy_min: f64,
    /// Average total per-node energy over the run, in joules.
    pub total_energy_avg: f64,
    /// Maximum total per-node energy over the run, in joules.
    pub total_energy_max: f64,
    /// Fraction of nodes with the exactly correct estimate.
    pub accuracy: f64,
    /// Mean per-node recall of the true outliers.
    pub mean_recall: f64,
    /// Mean per-node precision against injected labels.
    pub label_precision: f64,
    /// Mean per-node recall against injected labels.
    pub label_recall: f64,
    /// Whether every node's estimate agreed with every other node's.
    pub estimates_agree: bool,
    /// Whether the protocol reached quiescence before the deadline.
    pub quiescent: bool,
    /// Protocol data points broadcast.
    pub data_points_sent: u64,
    /// Total packets transmitted in the network.
    pub packets_sent: u64,
    /// Max-over-average radio-activity imbalance.
    pub traffic_imbalance: f64,
}

impl CellMetrics {
    /// Extracts the aggregation inputs from one finished run, calling the
    /// exact accessors `aggregate` calls so the stored values are the
    /// values the live path would have summed.
    pub fn of(outcome: &ExperimentOutcome) -> CellMetrics {
        let energy = outcome.total_energy_summary();
        CellMetrics {
            tx_per_node_per_round: outcome.avg_tx_energy_per_node_per_round(),
            rx_per_node_per_round: outcome.avg_rx_energy_per_node_per_round(),
            total_energy_min: energy.min,
            total_energy_avg: energy.avg,
            total_energy_max: energy.max,
            accuracy: outcome.accuracy(),
            mean_recall: outcome.mean_recall(),
            label_precision: outcome.label_precision(),
            label_recall: outcome.label_recall(),
            estimates_agree: outcome.all_estimates_agree,
            quiescent: outcome.quiescent,
            data_points_sent: outcome.data_points_sent,
            packets_sent: outcome.stats.total_packets_sent(),
            traffic_imbalance: outcome.stats.traffic_imbalance(),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("tx_per_node_per_round".into(), JsonValue::Number(self.tx_per_node_per_round)),
            ("rx_per_node_per_round".into(), JsonValue::Number(self.rx_per_node_per_round)),
            ("total_energy_min".into(), JsonValue::Number(self.total_energy_min)),
            ("total_energy_avg".into(), JsonValue::Number(self.total_energy_avg)),
            ("total_energy_max".into(), JsonValue::Number(self.total_energy_max)),
            ("accuracy".into(), JsonValue::Number(self.accuracy)),
            ("mean_recall".into(), JsonValue::Number(self.mean_recall)),
            ("label_precision".into(), JsonValue::Number(self.label_precision)),
            ("label_recall".into(), JsonValue::Number(self.label_recall)),
            ("estimates_agree".into(), JsonValue::from(self.estimates_agree)),
            ("quiescent".into(), JsonValue::from(self.quiescent)),
            ("data_points_sent".into(), JsonValue::from(self.data_points_sent)),
            ("packets_sent".into(), JsonValue::from(self.packets_sent)),
            ("traffic_imbalance".into(), JsonValue::Number(self.traffic_imbalance)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<CellMetrics, PersistError> {
        Ok(CellMetrics {
            tx_per_node_per_round: f64_field(value, "tx_per_node_per_round")?,
            rx_per_node_per_round: f64_field(value, "rx_per_node_per_round")?,
            total_energy_min: f64_field(value, "total_energy_min")?,
            total_energy_avg: f64_field(value, "total_energy_avg")?,
            total_energy_max: f64_field(value, "total_energy_max")?,
            accuracy: f64_field(value, "accuracy")?,
            mean_recall: f64_field(value, "mean_recall")?,
            label_precision: f64_field(value, "label_precision")?,
            label_recall: f64_field(value, "label_recall")?,
            estimates_agree: bool_field(value, "estimates_agree")?,
            quiescent: bool_field(value, "quiescent")?,
            data_points_sent: u64_field(value, "data_points_sent")?,
            packets_sent: u64_field(value, "packets_sent")?,
            traffic_imbalance: f64_field(value, "traffic_imbalance")?,
        })
    }
}

/// One journaled `(configuration, seed)` cell: which cell it was, where it
/// came from, and the metrics its run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRow {
    /// Append-order index within the journal file (strictly increasing).
    pub cell: u64,
    /// [`config_hash`] of the fully seeded configuration this cell ran.
    pub config_hash: u64,
    /// The cell's simulation seed (also folded into `config_hash`; kept
    /// explicit for human readers of the journal).
    pub seed: u64,
    /// The algorithm's plot label ("Global-NN", "Centralized", …).
    pub label: String,
    /// Provenance of the binary that ran the cell.
    pub toolchain: Toolchain,
    /// The run's aggregation inputs.
    pub metrics: CellMetrics,
}

impl JournalRow {
    /// Builds the row for one finished cell.
    pub fn of(cell: u64, hash: u64, seed: u64, outcome: &ExperimentOutcome) -> JournalRow {
        JournalRow {
            cell,
            config_hash: hash,
            seed,
            label: outcome.label.clone(),
            toolchain: Toolchain::current(),
            metrics: CellMetrics::of(outcome),
        }
    }

    /// Serializes the row as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("cell".into(), JsonValue::from(self.cell)),
            ("config_hash".into(), JsonValue::from(self.config_hash)),
            ("seed".into(), JsonValue::from(self.seed)),
            ("label".into(), JsonValue::from(self.label.as_str())),
            ("toolchain".into(), self.toolchain.to_json()),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }

    /// Parses a row back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] if a field is missing or mistyped.
    pub fn from_json(value: &JsonValue) -> Result<JournalRow, PersistError> {
        Ok(JournalRow {
            cell: u64_field(value, "cell")?,
            config_hash: u64_field(value, "config_hash")?,
            seed: u64_field(value, "seed")?,
            label: str_field(value, "label")?.to_string(),
            toolchain: Toolchain::from_json(field(value, "toolchain")?)?,
            metrics: CellMetrics::from_json(field(value, "metrics")?)?,
        })
    }
}

/// An append-only JSONL archive of completed sweep cells, opened for
/// resumable running. See the [module docs](self) for the format and the
/// recovery rules.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: fs::File,
    rows: Vec<JournalRow>,
    completed: BTreeMap<u64, usize>,
}

impl SweepJournal {
    /// Opens (creating if absent) the journal at `path`, recovering from a
    /// torn trailing row by truncating it.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure; [`PersistError::Corrupt`]
    /// if a *non-trailing* line is malformed (real corruption, not a torn
    /// append — refusing beats silently dropping completed cells).
    pub fn open(path: impl Into<PathBuf>) -> Result<SweepJournal, PersistError> {
        let path = path.into();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(PersistError::Io(format!("cannot read {}: {e}", path.display()))),
        };
        let mut rows: Vec<JournalRow> = Vec::new();
        let mut valid_end = 0usize;
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            let start = offset;
            offset += line.len();
            let complete = line.ends_with('\n');
            let parsed = JsonValue::parse(line.trim_end_matches('\n'))
                .ok()
                .and_then(|v| JournalRow::from_json(&v).ok());
            match parsed {
                Some(row) if complete => {
                    rows.push(row);
                    valid_end = offset;
                }
                // A bad or unterminated line is only recoverable as a torn
                // append if nothing follows it.
                _ if offset == text.len() => break,
                _ => {
                    return Err(PersistError::Corrupt(format!(
                        "{}: malformed journal row at byte {start} is not the trailing line",
                        path.display()
                    )));
                }
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| PersistError::Io(format!("cannot open {}: {e}", path.display())))?;
        if valid_end < text.len() {
            file.set_len(valid_end as u64).map_err(|e| {
                PersistError::Io(format!("cannot truncate torn row in {}: {e}", path.display()))
            })?;
        }
        let completed = rows.iter().enumerate().map(|(i, r)| (r.config_hash, i)).collect();
        Ok(SweepJournal { path, file, rows, completed })
    }

    /// The journal's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every completed row, in file (= append) order.
    pub fn rows(&self) -> &[JournalRow] {
        &self.rows
    }

    /// Whether a cell with this configuration hash already completed.
    pub fn contains(&self, hash: u64) -> bool {
        self.completed.contains_key(&hash)
    }

    /// The `cell` index the next append will carry.
    pub fn next_cell(&self) -> u64 {
        self.rows.last().map_or(0, |r| r.cell + 1)
    }

    /// Appends one completed row durably: the line is written, flushed and
    /// fsynced before this returns, so a kill immediately after cannot lose
    /// the cell.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the write or fsync fails.
    pub fn append(&mut self, row: JournalRow) -> Result<(), PersistError> {
        let mut line = row.to_json().to_compact_string();
        line.push('\n');
        self.file.write_all(line.as_bytes()).and_then(|()| self.file.sync_data()).map_err(|e| {
            PersistError::Io(format!("cannot append to {}: {e}", self.path.display()))
        })?;
        OBS_JOURNAL_ROWS.add(1);
        self.completed.insert(row.config_hash, self.rows.len());
        self.rows.push(row);
        Ok(())
    }

    /// The journaled counterpart of [`crate::sweep::run_averaged`]: runs
    /// `config` under `seeds` seeds, skipping every cell whose row is
    /// already in this journal, journaling every cell that completes (even
    /// if a later seed fails), and averaging from the rows.
    ///
    /// The fresh cells run in parallel on the shared worker pool; rows are
    /// appended and aggregated in ascending seed order, so the result is
    /// bit-identical to [`crate::sweep::run_averaged`] on the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// The first (lowest-seed) simulation error, or [`CoreError::Persist`]
    /// if journaling a completed cell fails. Completed cells stay journaled
    /// either way — a re-run resumes from them.
    pub fn run_averaged(
        &mut self,
        config: &ExperimentConfig,
        seeds: u64,
    ) -> Result<AveragedOutcome, CoreError> {
        let mut slots: Vec<Option<JournalRow>> = Vec::new();
        let mut pending = Vec::new();
        for c in seed_configs(config, seeds) {
            let hash = config_hash(&c);
            match self.completed.get(&hash) {
                Some(&index) => {
                    OBS_CELLS_SKIPPED.add(1);
                    slots.push(Some(self.rows[index].clone()));
                }
                None => {
                    let seed = c.sim_seed;
                    let slot = slots.len();
                    slots.push(None);
                    let handle = pool::global().submit(move || run_experiment(&c));
                    pending.push((slot, hash, seed, handle));
                }
            }
        }
        // Join every in-flight cell before surfacing the first error, so a
        // panic in any seed's job resurfaces and completed cells still get
        // journaled.
        let mut first_error: Option<CoreError> = None;
        for (slot, hash, seed, handle) in pending {
            match handle.join() {
                Ok(outcome) => {
                    let row = JournalRow::of(self.next_cell(), hash, seed, &outcome);
                    self.append(row.clone())?;
                    slots[slot] = Some(row);
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let rows: Vec<JournalRow> = slots.into_iter().map(Option::unwrap).collect();
        Ok(aggregate_rows(&rows))
    }
}

/// Averages journal rows (in the given order) exactly as
/// [`crate::sweep::run_averaged`] averages live runs: same terms, same
/// summation order, bit-identical floating-point results.
///
/// # Panics
///
/// Panics on an empty slice — an average of nothing is a caller bug.
pub fn aggregate_rows(rows: &[JournalRow]) -> AveragedOutcome {
    assert!(!rows.is_empty(), "cannot aggregate zero journal rows");
    let count = rows.len() as f64;
    let mean = |f: &dyn Fn(&JournalRow) -> f64| rows.iter().map(f).sum::<f64>() / count;
    let total_energy = MinAvgMax {
        min: mean(&|r| r.metrics.total_energy_min),
        avg: mean(&|r| r.metrics.total_energy_avg),
        max: mean(&|r| r.metrics.total_energy_max),
    };
    AveragedOutcome {
        label: rows[0].label.clone(),
        seeds: rows.len() as u64,
        avg_tx_per_node_per_round: mean(&|r| r.metrics.tx_per_node_per_round),
        avg_rx_per_node_per_round: mean(&|r| r.metrics.rx_per_node_per_round),
        total_energy,
        accuracy: mean(&|r| r.metrics.accuracy),
        mean_recall: mean(&|r| r.metrics.mean_recall),
        label_precision: mean(&|r| r.metrics.label_precision),
        label_recall: mean(&|r| r.metrics.label_recall),
        agreement_rate: mean(&|r| if r.metrics.estimates_agree { 1.0 } else { 0.0 }),
        quiescence_rate: mean(&|r| if r.metrics.quiescent { 1.0 } else { 0.0 }),
        avg_data_points_sent: mean(&|r| r.metrics.data_points_sent as f64),
        avg_packets_sent: mean(&|r| r.metrics.packets_sent as f64),
        avg_traffic_imbalance: mean(&|r| r.metrics.traffic_imbalance),
    }
}

fn field<'v>(value: &'v JsonValue, key: &str) -> Result<&'v JsonValue, PersistError> {
    value.get(key).ok_or_else(|| PersistError::Schema(format!("missing field \"{key}\"")))
}

fn u64_field(value: &JsonValue, key: &str) -> Result<u64, PersistError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not an unsigned integer")))
}

fn f64_field(value: &JsonValue, key: &str) -> Result<f64, PersistError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not a number")))
}

fn bool_field(value: &JsonValue, key: &str) -> Result<bool, PersistError> {
    match field(value, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(PersistError::Schema(format!("field \"{key}\" is not a boolean"))),
    }
}

fn str_field<'v>(value: &'v JsonValue, key: &str) -> Result<&'v str, PersistError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not a string")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_averaged, run_averaged_sequential};
    use wsn_core::experiment::{AlgorithmConfig, RankingChoice};

    fn tiny() -> ExperimentConfig {
        let mut c = ExperimentConfig::small();
        c.trace.rounds = 4;
        c
    }

    fn scratch(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("wsn-journal-{tag}-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn journaled_average_is_bit_identical_to_the_live_path() {
        let config = tiny();
        let path = scratch("bitident");
        let journaled = SweepJournal::open(&path).unwrap().run_averaged(&config, 3).unwrap();
        assert_eq!(journaled, run_averaged(&config, 3).unwrap());
        assert_eq!(journaled, run_averaged_sequential(&config, 3).unwrap());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_rerun_skips_journaled_cells_and_reproduces_the_result() {
        let config = tiny();
        let path = scratch("skip");
        let first = SweepJournal::open(&path).unwrap().run_averaged(&config, 3).unwrap();

        // Reopen: all three cells are on disk; the rerun runs nothing new.
        let mut journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.rows().len(), 3);
        assert!(journal.rows().windows(2).all(|w| w[0].cell < w[1].cell));
        let again = journal.run_averaged(&config, 3).unwrap();
        assert_eq!(again, first);
        assert_eq!(journal.rows().len(), 3, "a full rerun must append nothing");

        // Widening the sweep only runs the two new seeds.
        let widened = journal.run_averaged(&config, 5).unwrap();
        assert_eq!(journal.rows().len(), 5);
        assert_eq!(widened, run_averaged_sequential(&config, 5).unwrap());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rows_survive_a_round_trip_through_disk() {
        let config =
            tiny().with_algorithm(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn });
        let path = scratch("roundtrip");
        let mut journal = SweepJournal::open(&path).unwrap();
        journal.run_averaged(&config, 2).unwrap();
        let written = journal.rows().to_vec();
        drop(journal);
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.rows(), written.as_slice());
        assert_eq!(written[0].toolchain, Toolchain::current());
        assert_eq!(written[0].label, "Centralized");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_torn_trailing_row_is_truncated_and_rerun() {
        let config = tiny();
        let path = scratch("torn");
        let baseline = SweepJournal::open(&path).unwrap().run_averaged(&config, 2).unwrap();

        // Tear the last row in half, as a kill mid-append would.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 25]).unwrap();
        let mut journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.rows().len(), 1, "the torn row must be dropped");
        assert_eq!(fs::read_to_string(&path).unwrap().len(), journal.rows()[0].byte_len());

        // The rerun redoes only the torn cell and matches the baseline.
        let recovered = journal.run_averaged(&config, 2).unwrap();
        assert_eq!(recovered, baseline);
        assert_eq!(journal.rows().len(), 2);
        fs::remove_file(&path).unwrap();
    }

    impl JournalRow {
        fn byte_len(&self) -> usize {
            self.to_json().to_compact_string().len() + 1
        }
    }

    #[test]
    fn corruption_before_the_tail_is_refused() {
        let config = tiny();
        let path = scratch("midfile");
        SweepJournal::open(&path).unwrap().run_averaged(&config, 3).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"cell\":1", "\"cell\",1", 1);
        assert_ne!(corrupted, text);
        fs::write(&path, corrupted).unwrap();
        assert!(matches!(SweepJournal::open(&path), Err(PersistError::Corrupt(_))));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn errors_propagate_but_leave_the_journal_reusable() {
        let mut bad = tiny();
        bad.transmission_range_m = 0.1;
        let path = scratch("error");
        let mut journal = SweepJournal::open(&path).unwrap();
        assert!(journal.run_averaged(&bad, 2).is_err());
        let good = journal.run_averaged(&tiny(), 2).unwrap();
        assert_eq!(good, run_averaged_sequential(&tiny(), 2).unwrap());
        fs::remove_file(&path).unwrap();
    }
}
