//! Renders a [`wsn_obs::TelemetryReport`] as a `TELEMETRY_<label>.json`
//! document via the in-repo [`crate::json`] emitter.
//!
//! The schema mirrors the report structure directly:
//!
//! ```json
//! {
//!   "kind": "telemetry",
//!   "label": "fig_telemetry",
//!   "wall_ns": 123456789,
//!   "counters": { "engine.calls": 42 },
//!   "gauges": { "fleet.load": 0.5 },
//!   "histograms": { "sim.queue_depth": { "bounds": [...], "counts": [...], "count": 9, "sum": 17 } },
//!   "spans": [ { "path": "slide/sim", "count": 2, "total_ns": 1, "min_ns": 0, "max_ns": 1 } ]
//! }
//! ```
//!
//! The `kind` discriminator is what `json_check` dispatches on (see
//! [`crate::check`]); `wall_ns` is the caller-measured wall clock of the run
//! the report covers, so consumers can relate span totals to real time.
//! Every `u64` is carried as a JSON number; the metrics this repository
//! records stay far below 2^53, where `f64` round-trips integers exactly.

use wsn_obs::TelemetryReport;

use crate::json::JsonValue;

/// Converts a telemetry report into the sidecar JSON document.
pub fn report_to_json(label: &str, report: &TelemetryReport, wall_ns: u64) -> JsonValue {
    let counters = JsonValue::Object(
        report.counters.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v as f64))).collect(),
    );
    let gauges = JsonValue::Object(
        report.gauges.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect(),
    );
    let histograms = JsonValue::Object(
        report
            .histograms
            .iter()
            .map(|h| {
                (
                    h.name.clone(),
                    JsonValue::object([
                        ("bounds", u64_array(&h.bounds)),
                        ("counts", u64_array(&h.counts)),
                        ("count", JsonValue::from(h.count as f64)),
                        ("sum", JsonValue::from(h.sum as f64)),
                    ]),
                )
            })
            .collect(),
    );
    let spans = JsonValue::Array(
        report
            .spans
            .iter()
            .map(|s| {
                JsonValue::object([
                    ("path", JsonValue::from(s.path.clone())),
                    ("count", JsonValue::from(s.count as f64)),
                    ("total_ns", JsonValue::from(s.total_ns as f64)),
                    ("min_ns", JsonValue::from(s.min_ns as f64)),
                    ("max_ns", JsonValue::from(s.max_ns as f64)),
                ])
            })
            .collect(),
    );
    JsonValue::object([
        ("kind", JsonValue::from("telemetry")),
        ("label", JsonValue::from(label)),
        ("wall_ns", JsonValue::from(wall_ns as f64)),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("spans", spans),
    ])
}

fn u64_array(values: &[u64]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::from(v as f64)).collect())
}

/// Writes the sidecar to `TELEMETRY_<label>.json` in the current directory —
/// or to the path in the `WSN_TELEMETRY_OUT` environment variable, which the
/// CI smoke uses to keep run artifacts out of the tree. Returns the path
/// written.
pub fn write_sidecar(
    label: &str,
    report: &TelemetryReport,
    wall_ns: u64,
) -> std::io::Result<String> {
    let path =
        std::env::var("WSN_TELEMETRY_OUT").unwrap_or_else(|_| format!("TELEMETRY_{label}.json"));
    std::fs::write(&path, report_to_json(label, report, wall_ns).to_pretty_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use wsn_obs::{HistogramSnapshot, SpanStat, TelemetryReport};

    use super::*;

    fn sample_report() -> TelemetryReport {
        TelemetryReport {
            counters: BTreeMap::from([("engine.calls".to_string(), 42u64)]),
            gauges: BTreeMap::from([("fleet.load".to_string(), 0.5f64)]),
            histograms: vec![HistogramSnapshot {
                name: "sim.queue_depth".to_string(),
                bounds: vec![0, 1, 3],
                counts: vec![4, 3, 2],
                count: 9,
                sum: 17,
            }],
            spans: vec![SpanStat {
                path: "slide/sim".to_string(),
                count: 2,
                total_ns: 10,
                min_ns: 3,
                max_ns: 7,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_the_json_layer() {
        let json = report_to_json("unit", &sample_report(), 1234);
        let text = json.to_pretty_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, json);
        assert_eq!(back.get("kind").and_then(|v| v.as_str()), Some("telemetry"));
        assert_eq!(back.get("label").and_then(|v| v.as_str()), Some("unit"));
        assert_eq!(back.get("wall_ns").and_then(|v| v.as_f64()), Some(1234.0));
        let calls = back.get("counters").and_then(|c| c.get("engine.calls"));
        assert_eq!(calls.and_then(|v| v.as_f64()), Some(42.0));
        let spans = back.get("spans").and_then(|v| v.as_array()).unwrap();
        assert_eq!(spans[0].get("path").and_then(|v| v.as_str()), Some("slide/sim"));
    }

    #[test]
    fn sidecar_document_passes_the_shared_validator() {
        let text = report_to_json("unit", &sample_report(), 1234).to_pretty_string();
        crate::check::check_text("unit.json", &text).expect("sample sidecar must validate");
    }
}
