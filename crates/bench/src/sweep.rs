//! Seed-averaged experiment runs and parameter sweeps.
//!
//! The paper repeats every simulation four times with different random seeds
//! and plots the averages. [`run_averaged`] does the same: it runs one
//! [`ExperimentConfig`] under several seeds — in parallel, on the shared
//! [`crate::pool`] worker pool — and aggregates the per-node energy and
//! accuracy metrics into an [`AveragedOutcome`].
//!
//! For whole sweep grids, [`submit_averaged`] splits submission from
//! collection: a figure binary submits every `(configuration, seed)` cell
//! up front and collects the [`PendingAverage`]s in order, so the pool keeps
//! every core busy across cell boundaries while the output stays in
//! deterministic sweep order. Seed results are always aggregated in
//! ascending seed order, which makes the pooled path bit-identical to
//! [`run_averaged_sequential`] (there is a test for that).

use crate::pool::{self, JobHandle, WorkerPool};
use wsn_core::experiment::{run_experiment, ExperimentConfig, ExperimentOutcome};
use wsn_core::CoreError;
use wsn_netsim::stats::MinAvgMax;

/// Seed-averaged measurements of one experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedOutcome {
    /// The plot label of the algorithm ("Centralized", "Global-NN", …).
    pub label: String,
    /// Number of seeds averaged.
    pub seeds: u64,
    /// Average transmit energy per node per sampling round, in joules.
    pub avg_tx_per_node_per_round: f64,
    /// Average receive energy per node per sampling round, in joules.
    pub avg_rx_per_node_per_round: f64,
    /// Min / avg / max total energy consumed by a node over the run
    /// (averaged element-wise across seeds) — the quantity of Figure 5.
    pub total_energy: MinAvgMax,
    /// Detection accuracy (fraction of nodes exactly correct), averaged.
    pub accuracy: f64,
    /// Mean per-node recall of the true outliers, averaged across seeds.
    pub mean_recall: f64,
    /// Mean per-node precision against the injected ground-truth labels,
    /// averaged across seeds.
    pub label_precision: f64,
    /// Mean per-node recall against the injected ground-truth labels,
    /// averaged across seeds.
    pub label_recall: f64,
    /// Fraction of seeds in which every node's estimate agreed with every
    /// other node's (Theorem 1; global algorithm only).
    pub agreement_rate: f64,
    /// Fraction of seeds that reached protocol quiescence before the deadline.
    pub quiescence_rate: f64,
    /// Average number of protocol data points broadcast (distributed
    /// algorithms only).
    pub avg_data_points_sent: f64,
    /// Average total packets transmitted in the network.
    pub avg_packets_sent: f64,
    /// Average max-over-average radio-activity imbalance (§8).
    pub avg_traffic_imbalance: f64,
}

impl AveragedOutcome {
    /// Average total energy per node per sampling round (TX + RX + idle),
    /// divided evenly across rounds.
    pub fn avg_total_per_node_per_round(&self, rounds: usize) -> f64 {
        if rounds == 0 {
            0.0
        } else {
            self.total_energy.avg / rounds as f64
        }
    }

    /// The Figure 6 view: the per-node energy spread normalised by its mean.
    pub fn normalized_energy(&self) -> MinAvgMax {
        self.total_energy.normalized()
    }
}

/// The per-seed configurations of one averaged cell: seed `s` offsets both
/// the simulation and the trace seed by `s`. Shared with the journaled
/// runner ([`crate::journal`]) so both paths run identical cells.
pub(crate) fn seed_configs(config: &ExperimentConfig, seeds: u64) -> Vec<ExperimentConfig> {
    assert!(seeds > 0, "at least one seed is required");
    (0..seeds)
        .map(|s| {
            let mut c = config.clone();
            c.sim_seed = config.sim_seed + s;
            c.trace_seed = config.trace_seed + s;
            c
        })
        .collect()
}

/// Averages the per-seed outcomes (in ascending seed order) into one
/// [`AveragedOutcome`]. Shared by the pooled and the sequential path, so the
/// two are arithmetic-for-arithmetic identical.
fn aggregate(runs: &[ExperimentOutcome]) -> AveragedOutcome {
    let count = runs.len() as f64;
    let mean = |f: &dyn Fn(&ExperimentOutcome) -> f64| runs.iter().map(f).sum::<f64>() / count;
    let total_energy = MinAvgMax {
        min: mean(&|r| r.total_energy_summary().min),
        avg: mean(&|r| r.total_energy_summary().avg),
        max: mean(&|r| r.total_energy_summary().max),
    };

    AveragedOutcome {
        label: runs[0].label.clone(),
        seeds: runs.len() as u64,
        avg_tx_per_node_per_round: mean(&|r| r.avg_tx_energy_per_node_per_round()),
        avg_rx_per_node_per_round: mean(&|r| r.avg_rx_energy_per_node_per_round()),
        total_energy,
        accuracy: mean(&|r| r.accuracy()),
        mean_recall: mean(&|r| r.mean_recall()),
        label_precision: mean(&|r| r.label_precision()),
        label_recall: mean(&|r| r.label_recall()),
        agreement_rate: mean(&|r| if r.all_estimates_agree { 1.0 } else { 0.0 }),
        quiescence_rate: mean(&|r| if r.quiescent { 1.0 } else { 0.0 }),
        avg_data_points_sent: mean(&|r| r.data_points_sent as f64),
        avg_packets_sent: mean(&|r| r.stats.total_packets_sent() as f64),
        avg_traffic_imbalance: mean(&|r| r.stats.traffic_imbalance()),
    }
}

/// One averaged cell whose per-seed simulations are in flight on a
/// [`WorkerPool`]. Obtain it from [`submit_averaged`], redeem it with
/// [`PendingAverage::collect`].
#[must_use = "collect() the pending average to obtain the outcome"]
pub struct PendingAverage {
    handles: Vec<JobHandle<Result<ExperimentOutcome, CoreError>>>,
}

impl PendingAverage {
    /// Blocks until every seed of the cell finished and aggregates the
    /// results (in ascending seed order, independent of completion order).
    ///
    /// Every handle is joined before the first error is returned, so a panic
    /// in any seed's job always resurfaces here (matching the old
    /// thread-per-seed join semantics) instead of being silently dropped
    /// behind an earlier seed's error.
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-seed) error any run produced.
    pub fn collect(self) -> Result<AveragedOutcome, CoreError> {
        let results: Vec<Result<ExperimentOutcome, CoreError>> =
            self.handles.into_iter().map(JobHandle::join).collect();
        let mut runs = Vec::with_capacity(results.len());
        for result in results {
            runs.push(result?);
        }
        Ok(aggregate(&runs))
    }
}

/// Submits one configuration's `seeds` runs to `pool` without waiting for
/// them. Figure binaries use this to keep the whole sweep grid in flight on
/// the one shared pool; call [`PendingAverage::collect`] in sweep order to
/// read the results back deterministically.
pub fn submit_averaged(pool: &WorkerPool, config: &ExperimentConfig, seeds: u64) -> PendingAverage {
    let handles = seed_configs(config, seeds)
        .into_iter()
        .map(|c| pool.submit(move || run_experiment(&c)))
        .collect();
    PendingAverage { handles }
}

/// Runs `config` once per seed in `0..seeds` (offsetting both the simulation
/// and trace seeds) and averages the results.
///
/// The runs are independent, so they execute on the shared worker pool
/// ([`pool::global`]); the paper's four repetitions therefore cost roughly
/// one, and concurrency stays bounded by the pool size no matter how many
/// seeds (or concurrent sweeps) are requested.
///
/// # Errors
///
/// Returns the first error any run produced (invalid configuration,
/// disconnected deployment, trace-generation failure).
pub fn run_averaged(config: &ExperimentConfig, seeds: u64) -> Result<AveragedOutcome, CoreError> {
    submit_averaged(pool::global(), config, seeds).collect()
}

/// The sequential reference implementation of [`run_averaged`]: same seeds,
/// same aggregation, no pool. Exists so tests (and suspicious readers) can
/// prove the pooled path changes nothing but wall-clock time.
///
/// # Errors
///
/// Returns the first error any run produced.
pub fn run_averaged_sequential(
    config: &ExperimentConfig,
    seeds: u64,
) -> Result<AveragedOutcome, CoreError> {
    let mut runs = Vec::with_capacity(seeds as usize);
    for c in seed_configs(config, seeds) {
        runs.push(run_experiment(&c)?);
    }
    Ok(aggregate(&runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_core::experiment::{AlgorithmConfig, RankingChoice};

    fn tiny() -> ExperimentConfig {
        let mut c = ExperimentConfig::small();
        c.trace.rounds = 4;
        c
    }

    #[test]
    fn averaging_a_single_seed_matches_a_direct_run() {
        let config = tiny();
        let direct = run_experiment(&config).unwrap();
        let averaged = run_averaged(&config, 1).unwrap();
        assert_eq!(averaged.label, direct.label);
        assert!(
            (averaged.avg_tx_per_node_per_round - direct.avg_tx_energy_per_node_per_round()).abs()
                < 1e-12
        );
        assert!((averaged.accuracy - direct.accuracy()).abs() < 1e-12);
        assert_eq!(averaged.quiescence_rate, 1.0);
    }

    #[test]
    fn averaging_multiple_seeds_runs_them_all() {
        let config = tiny();
        let averaged = run_averaged(&config, 3).unwrap();
        assert_eq!(averaged.seeds, 3);
        assert!(averaged.avg_packets_sent > 0.0);
        assert!(averaged.total_energy.max >= averaged.total_energy.avg);
        assert!(averaged.total_energy.avg >= averaged.total_energy.min);
        assert!(averaged.normalized_energy().avg == 1.0);
        assert!(averaged.avg_total_per_node_per_round(4) > 0.0);
        assert_eq!(averaged.avg_total_per_node_per_round(0), 0.0);
    }

    #[test]
    fn pooled_averaging_is_bit_identical_to_sequential() {
        // Same seeds, same aggregation order: every field — including the
        // floating-point energy averages — must match bit for bit.
        for algorithm in [
            AlgorithmConfig::Global { ranking: RankingChoice::Nn },
            AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: 2 },
            AlgorithmConfig::Centralized { ranking: RankingChoice::Nn },
        ] {
            let config = tiny().with_algorithm(algorithm);
            let pooled = run_averaged(&config, 3).unwrap();
            let sequential = run_averaged_sequential(&config, 3).unwrap();
            assert_eq!(pooled, sequential, "pool sharding changed a {} outcome", pooled.label);
        }
    }

    #[test]
    fn submitted_cells_collect_in_submission_order() {
        let pool = crate::pool::WorkerPool::new(2);
        let small = tiny();
        let big = tiny().with_n(3);
        let pending: Vec<PendingAverage> =
            vec![submit_averaged(&pool, &small, 2), submit_averaged(&pool, &big, 2)];
        let outcomes: Vec<AveragedOutcome> =
            pending.into_iter().map(|p| p.collect().unwrap()).collect();
        assert_eq!(outcomes[0], run_averaged_sequential(&small, 2).unwrap());
        assert_eq!(outcomes[1], run_averaged_sequential(&big, 2).unwrap());
    }

    #[test]
    fn centralized_and_distributed_share_the_interface() {
        let distributed = run_averaged(&tiny(), 1).unwrap();
        let centralized = run_averaged(
            &tiny().with_algorithm(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }),
            1,
        )
        .unwrap();
        assert_eq!(centralized.label, "Centralized");
        assert_eq!(centralized.avg_data_points_sent, 0.0);
        assert!(distributed.avg_data_points_sent > 0.0);
    }

    #[test]
    fn errors_propagate_out_of_the_average() {
        let mut config = tiny();
        config.transmission_range_m = 0.1;
        assert!(run_averaged(&config, 2).is_err());
    }
}
