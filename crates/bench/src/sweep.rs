//! Seed-averaged experiment runs and parameter sweeps.
//!
//! The paper repeats every simulation four times with different random seeds
//! and plots the averages. [`run_averaged`] does the same: it runs one
//! [`ExperimentConfig`] under several seeds — in parallel, one thread per
//! seed — and aggregates the per-node energy and accuracy metrics into an
//! [`AveragedOutcome`].

use wsn_core::experiment::{run_experiment, ExperimentConfig};
use wsn_core::CoreError;
use wsn_netsim::stats::MinAvgMax;

/// Seed-averaged measurements of one experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedOutcome {
    /// The plot label of the algorithm ("Centralized", "Global-NN", …).
    pub label: String,
    /// Number of seeds averaged.
    pub seeds: u64,
    /// Average transmit energy per node per sampling round, in joules.
    pub avg_tx_per_node_per_round: f64,
    /// Average receive energy per node per sampling round, in joules.
    pub avg_rx_per_node_per_round: f64,
    /// Min / avg / max total energy consumed by a node over the run
    /// (averaged element-wise across seeds) — the quantity of Figure 5.
    pub total_energy: MinAvgMax,
    /// Detection accuracy (fraction of nodes exactly correct), averaged.
    pub accuracy: f64,
    /// Mean per-node recall of the true outliers, averaged across seeds.
    pub mean_recall: f64,
    /// Fraction of seeds in which every node's estimate agreed with every
    /// other node's (Theorem 1; global algorithm only).
    pub agreement_rate: f64,
    /// Fraction of seeds that reached protocol quiescence before the deadline.
    pub quiescence_rate: f64,
    /// Average number of protocol data points broadcast (distributed
    /// algorithms only).
    pub avg_data_points_sent: f64,
    /// Average total packets transmitted in the network.
    pub avg_packets_sent: f64,
    /// Average max-over-average radio-activity imbalance (§8).
    pub avg_traffic_imbalance: f64,
}

impl AveragedOutcome {
    /// Average total energy per node per sampling round (TX + RX + idle),
    /// divided evenly across rounds.
    pub fn avg_total_per_node_per_round(&self, rounds: usize) -> f64 {
        if rounds == 0 {
            0.0
        } else {
            self.total_energy.avg / rounds as f64
        }
    }

    /// The Figure 6 view: the per-node energy spread normalised by its mean.
    pub fn normalized_energy(&self) -> MinAvgMax {
        self.total_energy.normalized()
    }
}

/// Runs `config` once per seed in `0..seeds` (offsetting both the simulation
/// and trace seeds) and averages the results.
///
/// The runs are independent, so they execute on separate threads; the paper's
/// four repetitions therefore cost roughly one.
///
/// # Errors
///
/// Returns the first error any run produced (invalid configuration,
/// disconnected deployment, trace-generation failure).
pub fn run_averaged(config: &ExperimentConfig, seeds: u64) -> Result<AveragedOutcome, CoreError> {
    assert!(seeds > 0, "at least one seed is required");
    let configs: Vec<ExperimentConfig> = (0..seeds)
        .map(|s| {
            let mut c = config.clone();
            c.sim_seed = config.sim_seed + s;
            c.trace_seed = config.trace_seed + s;
            c
        })
        .collect();

    let outcomes: Vec<Result<wsn_core::experiment::ExperimentOutcome, CoreError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                configs.iter().map(|c| scope.spawn(move || run_experiment(c))).collect();
            handles.into_iter().map(|h| h.join().expect("experiment thread panicked")).collect()
        });

    let mut runs = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        runs.push(outcome?);
    }

    let count = runs.len() as f64;
    let mean = |f: &dyn Fn(&wsn_core::experiment::ExperimentOutcome) -> f64| {
        runs.iter().map(f).sum::<f64>() / count
    };
    let total_energy = MinAvgMax {
        min: mean(&|r| r.total_energy_summary().min),
        avg: mean(&|r| r.total_energy_summary().avg),
        max: mean(&|r| r.total_energy_summary().max),
    };

    Ok(AveragedOutcome {
        label: runs[0].label.clone(),
        seeds,
        avg_tx_per_node_per_round: mean(&|r| r.avg_tx_energy_per_node_per_round()),
        avg_rx_per_node_per_round: mean(&|r| r.avg_rx_energy_per_node_per_round()),
        total_energy,
        accuracy: mean(&|r| r.accuracy()),
        mean_recall: mean(&|r| r.mean_recall()),
        agreement_rate: mean(&|r| if r.all_estimates_agree { 1.0 } else { 0.0 }),
        quiescence_rate: mean(&|r| if r.quiescent { 1.0 } else { 0.0 }),
        avg_data_points_sent: mean(&|r| r.data_points_sent as f64),
        avg_packets_sent: mean(&|r| r.stats.total_packets_sent() as f64),
        avg_traffic_imbalance: mean(&|r| r.stats.traffic_imbalance()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_core::experiment::{AlgorithmConfig, RankingChoice};

    fn tiny() -> ExperimentConfig {
        let mut c = ExperimentConfig::small();
        c.trace.rounds = 4;
        c
    }

    #[test]
    fn averaging_a_single_seed_matches_a_direct_run() {
        let config = tiny();
        let direct = run_experiment(&config).unwrap();
        let averaged = run_averaged(&config, 1).unwrap();
        assert_eq!(averaged.label, direct.label);
        assert!(
            (averaged.avg_tx_per_node_per_round - direct.avg_tx_energy_per_node_per_round()).abs()
                < 1e-12
        );
        assert!((averaged.accuracy - direct.accuracy()).abs() < 1e-12);
        assert_eq!(averaged.quiescence_rate, 1.0);
    }

    #[test]
    fn averaging_multiple_seeds_runs_them_all() {
        let config = tiny();
        let averaged = run_averaged(&config, 3).unwrap();
        assert_eq!(averaged.seeds, 3);
        assert!(averaged.avg_packets_sent > 0.0);
        assert!(averaged.total_energy.max >= averaged.total_energy.avg);
        assert!(averaged.total_energy.avg >= averaged.total_energy.min);
        assert!(averaged.normalized_energy().avg == 1.0);
        assert!(averaged.avg_total_per_node_per_round(4) > 0.0);
        assert_eq!(averaged.avg_total_per_node_per_round(0), 0.0);
    }

    #[test]
    fn centralized_and_distributed_share_the_interface() {
        let distributed = run_averaged(&tiny(), 1).unwrap();
        let centralized = run_averaged(
            &tiny().with_algorithm(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }),
            1,
        )
        .unwrap();
        assert_eq!(centralized.label, "Centralized");
        assert_eq!(centralized.avg_data_points_sent, 0.0);
        assert!(distributed.avg_data_points_sent > 0.0);
    }

    #[test]
    fn errors_propagate_out_of_the_average() {
        let mut config = tiny();
        config.transmission_range_m = 0.1;
        assert!(run_averaged(&config, 2).is_err());
    }
}
