//! Shared tenant workload for the `fleet` bench group and the `fig_fleet`
//! binary: a fleet of identical small deployments (one 3×3 grid of nine
//! sensors per tenant, Global-NN, `n = 2`, `w = 8`) fed deterministic
//! per-tenant reading streams. Both consumers measure the same unit — one
//! *fleet epoch* is one batch ingested and one slide executed for every
//! tenant, i.e. `tenants` tenant-slides — so their throughput figures are
//! directly comparable.

use wsn_core::experiment::{AlgorithmConfig, RankingChoice};
use wsn_data::rng::SeededRng;
use wsn_data::stream::SensorSpec;
use wsn_data::{DataPoint, Epoch, Position, SensorId, Timestamp};
use wsn_fleet::{DetectorFleet, TenantId, TenantSpec};

/// Sensors per tenant (a 3×3 grid at 10 m spacing, 15 m radio range — every
/// sensor reaches its grid neighbours, the deployment is connected).
pub const SENSORS_PER_TENANT: u32 = 9;

/// Seconds between epochs, matching the paper's trace cadence.
pub const SAMPLE_INTERVAL_SECS: f64 = 31.0;

/// Shard count for the measured fleets. A fixed count (rather than the
/// pool's worker count) keeps the dispatch order — and therefore the
/// workload — identical across machines; parallelism still scales with the
/// pool underneath.
pub const SHARDS: usize = 8;

/// The per-tenant deployment every workload tenant runs.
pub fn tenant_spec() -> TenantSpec {
    let sensors = (0..SENSORS_PER_TENANT)
        .map(|i| {
            SensorSpec::new(
                SensorId(i),
                Position { x: f64::from(i % 3) * 10.0, y: f64::from(i / 3) * 10.0 },
            )
        })
        .collect();
    TenantSpec {
        sensors,
        transmission_range_m: 15.0,
        algorithm: AlgorithmConfig::Global { ranking: RankingChoice::Nn },
        n: 2,
        window_samples: 8,
        sample_interval_secs: SAMPLE_INTERVAL_SECS,
    }
}

/// Registers `tenants` workload tenants with ids `0..tenants`.
pub fn populate(fleet: &mut DetectorFleet, tenants: u64) {
    for t in 0..tenants {
        fleet.add_tenant(TenantId(t), tenant_spec()).expect("workload tenant registers");
    }
}

/// One epoch's readings for one tenant: nine clustered temperature samples
/// with a deterministic, rare spike so the detectors do real protocol work.
/// Seeded by `(tenant, epoch)` — every run of every consumer sees the same
/// stream.
pub fn epoch_batch(tenant: u64, epoch: u64) -> Vec<DataPoint> {
    let mut rng = SeededRng::seed_from_u64(tenant.wrapping_mul(1_000_003).wrapping_add(epoch));
    (0..SENSORS_PER_TENANT)
        .map(|i| {
            let mut value = rng.gen_gaussian(20.0, 0.5);
            if rng.gen_bool(0.02) {
                value += rng.gen_range(10.0..30.0);
            }
            DataPoint::new(
                SensorId(i),
                Epoch(epoch),
                Timestamp::from_secs_f64(epoch as f64 * SAMPLE_INTERVAL_SECS),
                vec![value],
            )
            .expect("workload point is finite")
        })
        .collect()
}

/// Ingests epoch `epoch` for every tenant and executes one fleet step,
/// returning the number of tenant-slides it produced.
pub fn run_epoch(fleet: &mut DetectorFleet, tenants: u64, epoch: u64) -> u64 {
    for t in 0..tenants {
        fleet.ingest(TenantId(t), epoch_batch(t, epoch)).expect("workload tenant is registered");
    }
    fleet.step().expect("fleet step succeeds").len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_epoch_slides_every_tenant_exactly_once() {
        let mut fleet = DetectorFleet::sequential();
        populate(&mut fleet, 3);
        assert_eq!(run_epoch(&mut fleet, 3, 0), 3);
        assert_eq!(run_epoch(&mut fleet, 3, 1), 3);
        for t in 0..3 {
            assert_eq!(fleet.next_epoch(TenantId(t)).unwrap(), 2);
        }
    }

    #[test]
    fn the_stream_is_deterministic() {
        assert_eq!(epoch_batch(7, 3), epoch_batch(7, 3));
        assert_ne!(epoch_batch(7, 3), epoch_batch(8, 3));
    }
}
