//! A std-only micro-benchmark harness.
//!
//! The workspace builds offline, so the benches cannot use Criterion; this
//! module provides the small subset the repository needs: named benchmark
//! groups, warm-up, wall-clock sampling with [`std::time::Instant`], a
//! human-readable summary table, and machine-readable `BENCH_<suite>.json`
//! output (via the in-repo [`crate::json`] emitter) for regression tracking.
//!
//! Benches are plain binaries with `harness = false` in `Cargo.toml`:
//!
//! ```no_run
//! use wsn_bench::harness::Harness;
//!
//! let mut h = Harness::from_args("my_suite");
//! h.bench("group", "case", || {
//!     std::hint::black_box(2_u64.pow(10));
//! });
//! h.finish();
//! ```
//!
//! Pass a substring as the first non-flag CLI argument to run only matching
//! benchmarks (`cargo bench --bench algo_microbench -- top_n`). The
//! measurement duration can be tuned with the `WSN_BENCH_MEASURE_MS` and
//! `WSN_BENCH_WARMUP_MS` environment variables.

use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// One benchmark's timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark group (e.g. `top_n_outliers`).
    pub group: String,
    /// Case name within the group (e.g. `nn/256`).
    pub name: String,
    /// Total iterations measured across all samples.
    pub iterations: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample's nanoseconds per iteration.
    pub max_ns: f64,
    /// Median sample's nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of timing samples taken.
    pub samples: usize,
}

impl Measurement {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("group", JsonValue::from(self.group.clone())),
            ("name", JsonValue::from(self.name.clone())),
            ("iterations", JsonValue::from(self.iterations as f64)),
            ("mean_ns", JsonValue::from(self.mean_ns)),
            ("min_ns", JsonValue::from(self.min_ns)),
            ("max_ns", JsonValue::from(self.max_ns)),
            ("median_ns", JsonValue::from(self.median_ns)),
            ("samples", JsonValue::from(self.samples as f64)),
        ])
    }
}

/// The benchmark runner: collects measurements, prints a table, writes JSON.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    results: Vec<Measurement>,
    started: Instant,
}

impl Harness {
    /// Creates a harness for `suite`, reading the filter from the process
    /// arguments (the first argument that does not start with `-`) and the
    /// measurement budget from `WSN_BENCH_MEASURE_MS` / `WSN_BENCH_WARMUP_MS`.
    ///
    /// When the workspace is built with the `telemetry` feature, this also
    /// switches `wsn_obs` collection on, so [`Harness::finish`] can emit a
    /// `TELEMETRY_<suite>.json` sidecar of everything the benched code
    /// recorded. (The numbers then include the enabled-telemetry overhead;
    /// regression medians are tracked with the feature off.)
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        if wsn_obs::compiled() {
            wsn_obs::set_enabled(true);
            wsn_obs::reset();
        }
        Harness::new(suite, filter)
    }

    /// Creates a harness with an explicit filter (mostly for tests).
    pub fn new(suite: &str, filter: Option<String>) -> Self {
        let millis_env = |key: &str, default: u64| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Harness {
            suite: suite.to_string(),
            filter,
            warmup: Duration::from_millis(millis_env("WSN_BENCH_WARMUP_MS", 200)),
            measure: Duration::from_millis(millis_env("WSN_BENCH_MEASURE_MS", 1_000)),
            results: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Benchmarks `routine`, which is called repeatedly with no arguments.
    /// The whole batch is timed with a single pair of clock reads, so the
    /// per-iteration numbers carry no `Instant` overhead.
    pub fn bench(&mut self, group: &str, name: &str, mut routine: impl FnMut()) {
        self.run(group, name, |batch| {
            let t = Instant::now();
            for _ in 0..batch {
                routine();
            }
            t.elapsed()
        });
    }

    /// Benchmarks `routine` with a fresh value from `setup` per iteration;
    /// only the time spent inside `routine` is measured (Criterion's
    /// `iter_batched`). The per-iteration clock reads this needs put a few
    /// tens of nanoseconds of overhead on each sample — prefer [`Harness::bench`]
    /// for routines that do not consume their input.
    pub fn bench_with_setup<T>(
        &mut self,
        group: &str,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T),
    ) {
        self.run(group, name, |batch| {
            let mut batch_time = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                routine(input);
                batch_time += t.elapsed();
            }
            batch_time
        });
    }

    /// Shared measurement loop: `measure_batch(n)` runs `n` iterations and
    /// returns the time attributable to them.
    fn run(&mut self, group: &str, name: &str, mut measure_batch: impl FnMut(u64) -> Duration) {
        let full_name = format!("{group}/{name}");
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }

        // Warm-up: run (and time) iterations until the warm-up budget is
        // spent, to page code in and pick a batch size for measurement.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let mut warmup_spent = Duration::ZERO;
        while warmup_start.elapsed() < self.warmup || warmup_iters == 0 {
            warmup_spent += measure_batch(1);
            warmup_iters += 1;
        }
        let per_iter = warmup_spent.checked_div(warmup_iters as u32).unwrap_or(Duration::ZERO);
        // Aim for ~50 samples over the measurement budget, at least one
        // iteration per sample.
        let target_sample = self.measure / 50;
        let batch = if per_iter.is_zero() {
            1_000
        } else {
            (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples_ns: Vec<f64> = Vec::new();
        let mut iterations: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples_ns.is_empty() {
            let batch_time = measure_batch(batch);
            iterations += batch;
            samples_ns.push(batch_time.as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let measurement = Measurement {
            group: group.to_string(),
            name: name.to_string(),
            iterations,
            mean_ns,
            min_ns: samples_ns[0],
            max_ns: samples_ns[samples_ns.len() - 1],
            median_ns: samples_ns[samples_ns.len() / 2],
            samples: samples_ns.len(),
        };
        println!(
            "{:<44} {:>14} {:>12} {:>12}",
            full_name,
            format_ns(measurement.median_ns),
            format_ns(measurement.min_ns),
            format_ns(measurement.max_ns),
        );
        self.results.push(measurement);
    }

    /// The measurements collected so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the results as a `BENCH_*.json`-compatible JSON document.
    pub fn to_json(&self) -> String {
        JsonValue::object([
            ("suite", JsonValue::from(self.suite.clone())),
            (
                "results",
                JsonValue::Array(self.results.iter().map(Measurement::to_json_value).collect()),
            ),
        ])
        .to_pretty_string()
    }

    /// Prints the summary footer and writes `BENCH_<suite>.json` into the
    /// current directory — or to the path in the `WSN_BENCH_OUT` environment
    /// variable, which smoke runs (see `ci.sh`) use to keep the committed
    /// benchmark JSON untouched. Call this once at the end of `main`.
    pub fn finish(self) {
        let path =
            std::env::var("WSN_BENCH_OUT").unwrap_or_else(|_| format!("BENCH_{}.json", self.suite));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("\n{} benchmarks -> {path}", self.results.len()),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
        // With the `telemetry` feature on (see [`Harness::from_args`]),
        // everything the benched code recorded rides along as a
        // `TELEMETRY_<suite>.json` sidecar (path override:
        // `WSN_TELEMETRY_OUT`), validated in CI by `json_check`.
        if wsn_obs::compiled() && wsn_obs::enabled() {
            let report = wsn_obs::report();
            if !report.is_empty() {
                let wall_ns = self.started.elapsed().as_nanos() as u64;
                match crate::telemetry::write_sidecar(&self.suite, &report, wall_ns) {
                    Ok(sidecar) => println!("telemetry sidecar -> {sidecar}"),
                    Err(e) => eprintln!("failed to write telemetry sidecar: {e}"),
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Harness {
        let mut h = Harness::new("test_suite", None);
        h.warmup = Duration::from_millis(1);
        h.measure = Duration::from_millis(5);
        h
    }

    #[test]
    fn measurements_are_recorded_and_positive() {
        let mut h = quick();
        h.bench("group", "spin", || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert!(m.iterations > 0);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut h = quick();
        h.filter = Some("keep".to_string());
        h.bench("group", "keep_me", || {});
        h.bench("group", "drop_me", || {});
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep_me");
    }

    #[test]
    fn setup_values_are_consumed_per_iteration() {
        let mut h = quick();
        let mut built = 0u64;
        h.bench_with_setup(
            "group",
            "batched",
            || {
                built += 1;
                vec![1u8; 64]
            },
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert!(built >= h.results()[0].iterations);
    }

    #[test]
    fn json_output_has_the_expected_shape() {
        let mut h = quick();
        h.bench("g", "case", || {});
        let parsed = crate::json::JsonValue::parse(&h.to_json()).unwrap();
        assert_eq!(parsed.get("suite").and_then(|v| v.as_str()), Some("test_suite"));
        let results = parsed.get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("name").and_then(|v| v.as_str()), Some("case"));
        assert!(results[0].get("median_ns").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn ns_formatting_picks_sensible_units() {
        assert_eq!(format_ns(500.0), "500.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.500 s");
    }
}
