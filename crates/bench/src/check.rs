//! Shared validators for the JSON artifacts this repository commits or
//! emits in CI: figure reports (`rows`), benchmark suites (`results`) and
//! telemetry sidecars (`kind: "telemetry"`, see [`crate::telemetry`]).
//!
//! The `json_check` binary is a thin dispatcher over [`check_file`]; the
//! validators live here so the three schemas share the finite/non-empty
//! helpers and the unit tests can exercise every rejection path without
//! spawning a process.

use crate::json::JsonValue;

/// Reads and validates one JSON artifact. Returns a one-line success
/// summary, or a message naming the first violation.
pub fn check_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    check_text(path, &text)
}

/// Validates JSON text against whichever schema its shape declares:
/// `kind == "telemetry"` → telemetry sidecar, a `rows` key → figure report,
/// a `results` key → benchmark suite. `path` only labels error messages.
pub fn check_text(path: &str, text: &str) -> Result<String, String> {
    let value = JsonValue::parse(text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(format!("{path}: top-level value is not an object"));
    }
    if value.get("kind").and_then(|k| k.as_str()) == Some("telemetry") {
        return check_telemetry(path, &value).map(|entries| {
            format!("{path}: valid telemetry, {entries} entries, {} bytes", text.len())
        });
    }
    let data = value
        .get("rows")
        .or_else(|| value.get("results"))
        .ok_or_else(|| format!("{path}: object has neither a \"rows\" nor a \"results\" key"))?;
    let entries = non_empty_array(path, "rows/results", data)?;
    if value.get("results").is_some() {
        check_bench_results(path, entries)?;
    }
    Ok(format!("{path}: valid JSON, {} entries, {} bytes", entries.len(), text.len()))
}

/// Benchmark-suite entries carry group labels and median timings; a run that
/// produced NaN/infinite timings or lost its group labels is as useless as
/// an empty one.
fn check_bench_results(path: &str, entries: &[JsonValue]) -> Result<(), String> {
    for (index, entry) in entries.iter().enumerate() {
        let group = entry.get("group").and_then(|g| g.as_str()).unwrap_or("");
        if group.is_empty() {
            return Err(format!("{path}: results[{index}] has an empty or missing group"));
        }
        let median =
            finite_number(path, &format!("results[{index}].median_ns"), entry.get("median_ns"))?;
        if median <= 0.0 {
            return Err(format!(
                "{path}: results[{index}] ({group}) has a non-positive median_ns ({median})"
            ));
        }
    }
    Ok(())
}

/// Telemetry sidecars must prove the instrumented run actually recorded
/// something: non-empty counter registry and span list, every value finite
/// and non-negative, histogram bucket bounds strictly increasing. Returns
/// the total entry count (counters + gauges + histograms + spans).
fn check_telemetry(path: &str, value: &JsonValue) -> Result<usize, String> {
    let label = value.get("label").and_then(|l| l.as_str()).unwrap_or("");
    if label.is_empty() {
        return Err(format!("{path}: telemetry document has an empty or missing label"));
    }
    finite_nonneg(path, "wall_ns", value.get("wall_ns"))?;

    let counters = object_entries(path, "counters", value.get("counters"))?;
    if counters.is_empty() {
        return Err(format!("{path}: \"counters\" object is empty — nothing was recorded"));
    }
    for (name, v) in counters {
        finite_nonneg(path, &format!("counters.{name}"), Some(v))?;
    }

    // Gauges may legitimately be absent from a run that records none.
    let gauges = object_entries(path, "gauges", value.get("gauges"))?;
    for (name, v) in gauges {
        finite_nonneg(path, &format!("gauges.{name}"), Some(v))?;
    }

    let histograms = object_entries(path, "histograms", value.get("histograms"))?;
    for (name, h) in histograms {
        check_histogram(path, name, h)?;
    }

    let spans = non_empty_array(path, "spans", value.get("spans").unwrap_or(&JsonValue::Null))?;
    for (index, span) in spans.iter().enumerate() {
        check_span(path, index, span)?;
    }

    Ok(counters.len() + gauges.len() + histograms.len() + spans.len())
}

fn check_histogram(path: &str, name: &str, h: &JsonValue) -> Result<(), String> {
    let bounds = h
        .get("bounds")
        .and_then(|b| b.as_array())
        .ok_or_else(|| format!("{path}: histograms.{name} has no bounds array"))?;
    let counts = h
        .get("counts")
        .and_then(|c| c.as_array())
        .ok_or_else(|| format!("{path}: histograms.{name} has no counts array"))?;
    if bounds.len() != counts.len() {
        return Err(format!(
            "{path}: histograms.{name} has {} bounds but {} counts",
            bounds.len(),
            counts.len()
        ));
    }
    let mut previous: Option<f64> = None;
    for (index, bound) in bounds.iter().enumerate() {
        let b = finite_nonneg(path, &format!("histograms.{name}.bounds[{index}]"), Some(bound))?;
        if previous.is_some_and(|p| p >= b) {
            return Err(format!(
                "{path}: histograms.{name} bucket bounds are not strictly increasing at [{index}]"
            ));
        }
        previous = Some(b);
    }
    let mut bucket_total = 0.0;
    for (index, count) in counts.iter().enumerate() {
        bucket_total +=
            finite_nonneg(path, &format!("histograms.{name}.counts[{index}]"), Some(count))?;
    }
    let count = finite_nonneg(path, &format!("histograms.{name}.count"), h.get("count"))?;
    finite_nonneg(path, &format!("histograms.{name}.sum"), h.get("sum"))?;
    if bucket_total != count {
        return Err(format!(
            "{path}: histograms.{name} bucket counts sum to {bucket_total} but count is {count}"
        ));
    }
    Ok(())
}

fn check_span(path: &str, index: usize, span: &JsonValue) -> Result<(), String> {
    let span_path = span.get("path").and_then(|p| p.as_str()).unwrap_or("");
    if span_path.is_empty() {
        return Err(format!("{path}: spans[{index}] has an empty or missing path"));
    }
    let count = finite_nonneg(path, &format!("spans[{index}].count"), span.get("count"))?;
    if count < 1.0 {
        return Err(format!("{path}: spans[{index}] ({span_path}) has a zero count"));
    }
    let total = finite_nonneg(path, &format!("spans[{index}].total_ns"), span.get("total_ns"))?;
    let min = finite_nonneg(path, &format!("spans[{index}].min_ns"), span.get("min_ns"))?;
    let max = finite_nonneg(path, &format!("spans[{index}].max_ns"), span.get("max_ns"))?;
    if min > max || max > total {
        return Err(format!(
            "{path}: spans[{index}] ({span_path}) has inconsistent timings \
             (min {min}, max {max}, total {total})"
        ));
    }
    Ok(())
}

/// Shared helper: the value must be a finite, non-negative number.
fn finite_nonneg(path: &str, what: &str, value: Option<&JsonValue>) -> Result<f64, String> {
    let n = finite_number(path, what, value)?;
    if n < 0.0 {
        return Err(format!("{path}: {what} is negative ({n})"));
    }
    Ok(n)
}

/// Shared helper: the value must be a finite number.
fn finite_number(path: &str, what: &str, value: Option<&JsonValue>) -> Result<f64, String> {
    let n = value
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path}: {what} is missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("{path}: {what} is not finite ({n})"));
    }
    Ok(n)
}

/// Shared helper: the value must be a non-empty array.
fn non_empty_array<'v>(
    path: &str,
    what: &str,
    value: &'v JsonValue,
) -> Result<&'v [JsonValue], String> {
    let entries = value.as_array().ok_or_else(|| format!("{path}: \"{what}\" is not an array"))?;
    if entries.is_empty() {
        return Err(format!("{path}: \"{what}\" array is empty"));
    }
    Ok(entries)
}

/// Shared helper: the value must be an object; returns its entries.
fn object_entries<'v>(
    path: &str,
    what: &str,
    value: Option<&'v JsonValue>,
) -> Result<&'v [(String, JsonValue)], String> {
    match value {
        Some(JsonValue::Object(pairs)) => Ok(pairs),
        _ => Err(format!("{path}: \"{what}\" is missing or not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry_doc() -> String {
        r#"{
            "kind": "telemetry",
            "label": "smoke",
            "wall_ns": 1000,
            "counters": { "engine.calls": 3 },
            "gauges": {},
            "histograms": {
                "sim.queue_depth": { "bounds": [0, 1, 3], "counts": [1, 1, 1], "count": 3, "sum": 4 }
            },
            "spans": [
                { "path": "slide", "count": 2, "total_ns": 10, "min_ns": 3, "max_ns": 7 }
            ]
        }"#
        .to_string()
    }

    #[test]
    fn valid_documents_of_all_three_schemas_pass() {
        check_text("t.json", &telemetry_doc()).unwrap();
        check_text("f.json", r#"{ "rows": [ { "x": 1 } ] }"#).unwrap();
        check_text("b.json", r#"{ "results": [ { "group": "g", "median_ns": 1.5 } ] }"#).unwrap();
    }

    #[test]
    fn bench_rejections_still_fire() {
        let empty = r#"{ "results": [] }"#;
        assert!(check_text("b.json", empty).unwrap_err().contains("empty"));
        let no_group = r#"{ "results": [ { "median_ns": 1.0 } ] }"#;
        assert!(check_text("b.json", no_group).unwrap_err().contains("group"));
        let bad_median = r#"{ "results": [ { "group": "g", "median_ns": 0.0 } ] }"#;
        assert!(check_text("b.json", bad_median).unwrap_err().contains("median_ns"));
    }

    #[test]
    fn telemetry_requires_non_empty_counters_and_spans() {
        let no_counters = telemetry_doc().replace(r#"{ "engine.calls": 3 }"#, "{}");
        assert!(check_text("t.json", &no_counters).unwrap_err().contains("counters"));
        let no_spans = telemetry_doc().replace(
            r#"{ "path": "slide", "count": 2, "total_ns": 10, "min_ns": 3, "max_ns": 7 }"#,
            "",
        );
        assert!(check_text("t.json", &no_spans).unwrap_err().contains("spans"));
    }

    #[test]
    fn telemetry_rejects_negative_and_inconsistent_values() {
        let negative = telemetry_doc().replace(r#""engine.calls": 3"#, r#""engine.calls": -1"#);
        assert!(check_text("t.json", &negative).unwrap_err().contains("negative"));
        let bad_span = telemetry_doc().replace(r#""min_ns": 3"#, r#""min_ns": 9"#);
        assert!(check_text("t.json", &bad_span).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn histogram_bounds_must_increase_and_counts_must_reconcile() {
        let flat_bounds = telemetry_doc().replace("[0, 1, 3]", "[0, 1, 1]");
        assert!(check_text("t.json", &flat_bounds).unwrap_err().contains("strictly increasing"));
        let bad_total = telemetry_doc().replace(r#""count": 3"#, r#""count": 5"#);
        assert!(check_text("t.json", &bad_total).unwrap_err().contains("sum to"));
        let ragged = telemetry_doc().replace("[1, 1, 1]", "[1, 1]");
        assert!(check_text("t.json", &ragged).unwrap_err().contains("bounds but"));
    }

    #[test]
    fn unknown_shapes_are_rejected() {
        assert!(check_text("x.json", "[1, 2]").unwrap_err().contains("not an object"));
        assert!(check_text("x.json", r#"{ "other": 1 }"#)
            .unwrap_err()
            .contains("neither a \"rows\" nor a \"results\""));
    }
}
