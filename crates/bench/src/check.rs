//! Shared validators for the JSON artifacts this repository commits or
//! emits in CI: figure reports (`rows`), benchmark suites (`results`),
//! telemetry sidecars (`kind: "telemetry"`, see [`crate::telemetry`]),
//! persistence snapshots (wsn-persist header line, see
//! [`wsn_core::persist`]) and sweep journals (JSONL rows, see
//! [`crate::journal`]).
//!
//! The `json_check` binary is a thin dispatcher over [`check_file`]; the
//! validators live here so the schemas share the finite/non-empty helpers
//! and the unit tests can exercise every rejection path without spawning a
//! process.

use crate::json::JsonValue;
use wsn_core::persist;

/// Reads and validates one JSON artifact. Returns a one-line success
/// summary, or a message naming the first violation.
pub fn check_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    check_text(path, &text)
}

/// Validates JSON text against whichever schema its shape declares:
/// a `wsn-persist` header line → persistence snapshot, a first line with a
/// `cell` key → sweep journal (JSONL), `kind == "telemetry"` → telemetry
/// sidecar, a `rows` key → figure report, a `results` key → benchmark
/// suite. `path` only labels error messages.
pub fn check_text(path: &str, text: &str) -> Result<String, String> {
    // The persistence formats are line-oriented (header + payload lines,
    // or one row per line), so they dispatch on the first line before the
    // whole text is parsed as a single document.
    let first_line = text.split('\n').next().unwrap_or("");
    if let Ok(header) = JsonValue::parse(first_line) {
        if header.get("format").and_then(|f| f.as_str()) == Some("wsn-persist") {
            return check_snapshot(path, text);
        }
        if matches!(header, JsonValue::Object(_)) && header.get("cell").is_some() {
            return check_journal(path, text);
        }
    }
    let value = JsonValue::parse(text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(format!("{path}: top-level value is not an object"));
    }
    if value.get("kind").and_then(|k| k.as_str()) == Some("telemetry") {
        return check_telemetry(path, &value).map(|entries| {
            format!("{path}: valid telemetry, {entries} entries, {} bytes", text.len())
        });
    }
    if value.get("kind").and_then(|k| k.as_str()) == Some("fleet") {
        return check_fleet(path, &value)
            .map(|rows| format!("{path}: valid fleet report, {rows} rows, {} bytes", text.len()));
    }
    let data = value
        .get("rows")
        .or_else(|| value.get("results"))
        .ok_or_else(|| format!("{path}: object has neither a \"rows\" nor a \"results\" key"))?;
    let entries = non_empty_array(path, "rows/results", data)?;
    if value.get("results").is_some() {
        check_bench_results(path, entries)?;
    }
    Ok(format!("{path}: valid JSON, {} entries, {} bytes", entries.len(), text.len()))
}

/// Benchmark-suite entries carry group labels and median timings; a run that
/// produced NaN/infinite timings or lost its group labels is as useless as
/// an empty one.
fn check_bench_results(path: &str, entries: &[JsonValue]) -> Result<(), String> {
    for (index, entry) in entries.iter().enumerate() {
        let group = entry.get("group").and_then(|g| g.as_str()).unwrap_or("");
        if group.is_empty() {
            return Err(format!("{path}: results[{index}] has an empty or missing group"));
        }
        let median =
            finite_number(path, &format!("results[{index}].median_ns"), entry.get("median_ns"))?;
        if median <= 0.0 {
            return Err(format!(
                "{path}: results[{index}] ({group}) has a non-positive median_ns ({median})"
            ));
        }
    }
    Ok(())
}

/// Fleet throughput reports (`kind: "fleet"`, written by the `fig_fleet`
/// binary) must hold at least one row, each with positive tenant, shard and
/// slide counts and a finite, positive tenant-slides-per-second figure —
/// a zero or NaN throughput means the timed loop never ran. Returns the row
/// count.
fn check_fleet(path: &str, value: &JsonValue) -> Result<usize, String> {
    let rows = non_empty_array(path, "rows", value.get("rows").unwrap_or(&JsonValue::Null))?;
    for (index, row) in rows.iter().enumerate() {
        for field in ["tenants", "shards", "slides", "tenant_slides_per_sec"] {
            let n = finite_number(path, &format!("rows[{index}].{field}"), row.get(field))?;
            if n <= 0.0 {
                return Err(format!("{path}: rows[{index}].{field} is not positive ({n})"));
            }
        }
        // 0 is legal (checkpoints off); absent or negative is not.
        finite_nonneg(
            path,
            &format!("rows[{index}].checkpoint_every"),
            row.get("checkpoint_every"),
        )?;
    }
    Ok(rows.len())
}

/// Persistence snapshots are validated exactly as a loader would before
/// trusting a byte of payload: header format and version tag, declared
/// length (a shorter payload is a torn write), FNV-1a checksum, and the
/// payload parsing at all.
fn check_snapshot(path: &str, text: &str) -> Result<String, String> {
    let (header_line, body) =
        text.split_once('\n').ok_or_else(|| format!("{path}: missing snapshot header line"))?;
    let header = JsonValue::parse(header_line)
        .map_err(|e| format!("{path}: unreadable snapshot header: {e}"))?;
    let version = header
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{path}: snapshot header has no version tag"))?;
    if version != persist::PERSIST_VERSION {
        return Err(format!(
            "{path}: snapshot format version is {version}, this binary reads {}",
            persist::PERSIST_VERSION
        ));
    }
    let kind = header.get("kind").and_then(|k| k.as_str()).unwrap_or("");
    if kind.is_empty() {
        return Err(format!("{path}: snapshot header has an empty or missing kind"));
    }
    let len = header
        .get("len")
        .and_then(|l| l.as_u64())
        .ok_or_else(|| format!("{path}: snapshot header has no len field"))? as usize;
    let bytes = body.as_bytes();
    if bytes.len() < len {
        return Err(format!(
            "{path}: torn snapshot: payload holds {} of {len} declared bytes",
            bytes.len()
        ));
    }
    let declared = header
        .get("checksum")
        .and_then(|c| c.as_u64())
        .ok_or_else(|| format!("{path}: snapshot header has no checksum field"))?;
    let actual = persist::fnv1a64(&bytes[..len]);
    if actual != declared {
        return Err(format!(
            "{path}: snapshot checksum mismatch: header declares {declared}, payload hashes to {actual}"
        ));
    }
    let payload = std::str::from_utf8(&bytes[..len])
        .map_err(|e| format!("{path}: snapshot payload is not UTF-8: {e}"))?;
    JsonValue::parse(payload).map_err(|e| format!("{path}: unparsable snapshot payload: {e}"))?;
    Ok(format!("{path}: valid wsn-persist {kind} snapshot v{version}, {len} payload bytes"))
}

/// Sweep journals must hold at least one complete row, with strictly
/// increasing cell indices (append order), intact provenance and finite
/// metrics — NaN in an archived row poisons every average recomputed from
/// it.
fn check_journal(path: &str, text: &str) -> Result<String, String> {
    let mut rows = 0usize;
    let mut previous: Option<f64> = None;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = JsonValue::parse(line)
            .map_err(|e| format!("{path}: journal line {index} is unparsable: {e}"))?;
        let cell = finite_nonneg(path, &format!("rows[{index}].cell"), row.get("cell"))?;
        if previous.is_some_and(|p| p >= cell) {
            return Err(format!(
                "{path}: journal cell indices are not strictly increasing at line {index}"
            ));
        }
        previous = Some(cell);
        finite_nonneg(path, &format!("rows[{index}].config_hash"), row.get("config_hash"))?;
        finite_nonneg(path, &format!("rows[{index}].seed"), row.get("seed"))?;
        if row.get("label").and_then(|l| l.as_str()).unwrap_or("").is_empty() {
            return Err(format!("{path}: rows[{index}] has an empty or missing label"));
        }
        let metrics = object_entries(path, &format!("rows[{index}].metrics"), row.get("metrics"))?;
        if metrics.is_empty() {
            return Err(format!("{path}: rows[{index}].metrics is empty"));
        }
        for (name, value) in metrics {
            if !matches!(value, JsonValue::Bool(_)) {
                finite_number(path, &format!("rows[{index}].metrics.{name}"), Some(value))?;
            }
        }
        rows += 1;
    }
    if rows == 0 {
        return Err(format!("{path}: journal holds no rows"));
    }
    Ok(format!("{path}: valid sweep journal, {rows} rows, {} bytes", text.len()))
}

/// Telemetry sidecars must prove the instrumented run actually recorded
/// something: non-empty counter registry and span list, every value finite
/// and non-negative, histogram bucket bounds strictly increasing. Returns
/// the total entry count (counters + gauges + histograms + spans).
fn check_telemetry(path: &str, value: &JsonValue) -> Result<usize, String> {
    let label = value.get("label").and_then(|l| l.as_str()).unwrap_or("");
    if label.is_empty() {
        return Err(format!("{path}: telemetry document has an empty or missing label"));
    }
    finite_nonneg(path, "wall_ns", value.get("wall_ns"))?;

    let counters = object_entries(path, "counters", value.get("counters"))?;
    if counters.is_empty() {
        return Err(format!("{path}: \"counters\" object is empty — nothing was recorded"));
    }
    for (name, v) in counters {
        finite_nonneg(path, &format!("counters.{name}"), Some(v))?;
    }

    // Gauges may legitimately be absent from a run that records none.
    let gauges = object_entries(path, "gauges", value.get("gauges"))?;
    for (name, v) in gauges {
        finite_nonneg(path, &format!("gauges.{name}"), Some(v))?;
    }

    let histograms = object_entries(path, "histograms", value.get("histograms"))?;
    for (name, h) in histograms {
        check_histogram(path, name, h)?;
    }

    let spans = non_empty_array(path, "spans", value.get("spans").unwrap_or(&JsonValue::Null))?;
    for (index, span) in spans.iter().enumerate() {
        check_span(path, index, span)?;
    }

    Ok(counters.len() + gauges.len() + histograms.len() + spans.len())
}

fn check_histogram(path: &str, name: &str, h: &JsonValue) -> Result<(), String> {
    let bounds = h
        .get("bounds")
        .and_then(|b| b.as_array())
        .ok_or_else(|| format!("{path}: histograms.{name} has no bounds array"))?;
    let counts = h
        .get("counts")
        .and_then(|c| c.as_array())
        .ok_or_else(|| format!("{path}: histograms.{name} has no counts array"))?;
    if bounds.len() != counts.len() {
        return Err(format!(
            "{path}: histograms.{name} has {} bounds but {} counts",
            bounds.len(),
            counts.len()
        ));
    }
    let mut previous: Option<f64> = None;
    for (index, bound) in bounds.iter().enumerate() {
        let b = finite_nonneg(path, &format!("histograms.{name}.bounds[{index}]"), Some(bound))?;
        if previous.is_some_and(|p| p >= b) {
            return Err(format!(
                "{path}: histograms.{name} bucket bounds are not strictly increasing at [{index}]"
            ));
        }
        previous = Some(b);
    }
    let mut bucket_total = 0.0;
    for (index, count) in counts.iter().enumerate() {
        bucket_total +=
            finite_nonneg(path, &format!("histograms.{name}.counts[{index}]"), Some(count))?;
    }
    let count = finite_nonneg(path, &format!("histograms.{name}.count"), h.get("count"))?;
    finite_nonneg(path, &format!("histograms.{name}.sum"), h.get("sum"))?;
    if bucket_total != count {
        return Err(format!(
            "{path}: histograms.{name} bucket counts sum to {bucket_total} but count is {count}"
        ));
    }
    Ok(())
}

fn check_span(path: &str, index: usize, span: &JsonValue) -> Result<(), String> {
    let span_path = span.get("path").and_then(|p| p.as_str()).unwrap_or("");
    if span_path.is_empty() {
        return Err(format!("{path}: spans[{index}] has an empty or missing path"));
    }
    let count = finite_nonneg(path, &format!("spans[{index}].count"), span.get("count"))?;
    if count < 1.0 {
        return Err(format!("{path}: spans[{index}] ({span_path}) has a zero count"));
    }
    let total = finite_nonneg(path, &format!("spans[{index}].total_ns"), span.get("total_ns"))?;
    let min = finite_nonneg(path, &format!("spans[{index}].min_ns"), span.get("min_ns"))?;
    let max = finite_nonneg(path, &format!("spans[{index}].max_ns"), span.get("max_ns"))?;
    if min > max || max > total {
        return Err(format!(
            "{path}: spans[{index}] ({span_path}) has inconsistent timings \
             (min {min}, max {max}, total {total})"
        ));
    }
    Ok(())
}

/// Shared helper: the value must be a finite, non-negative number.
fn finite_nonneg(path: &str, what: &str, value: Option<&JsonValue>) -> Result<f64, String> {
    let n = finite_number(path, what, value)?;
    if n < 0.0 {
        return Err(format!("{path}: {what} is negative ({n})"));
    }
    Ok(n)
}

/// Shared helper: the value must be a finite number.
fn finite_number(path: &str, what: &str, value: Option<&JsonValue>) -> Result<f64, String> {
    let n = value
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path}: {what} is missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("{path}: {what} is not finite ({n})"));
    }
    Ok(n)
}

/// Shared helper: the value must be a non-empty array.
fn non_empty_array<'v>(
    path: &str,
    what: &str,
    value: &'v JsonValue,
) -> Result<&'v [JsonValue], String> {
    let entries = value.as_array().ok_or_else(|| format!("{path}: \"{what}\" is not an array"))?;
    if entries.is_empty() {
        return Err(format!("{path}: \"{what}\" array is empty"));
    }
    Ok(entries)
}

/// Shared helper: the value must be an object; returns its entries.
fn object_entries<'v>(
    path: &str,
    what: &str,
    value: Option<&'v JsonValue>,
) -> Result<&'v [(String, JsonValue)], String> {
    match value {
        Some(JsonValue::Object(pairs)) => Ok(pairs),
        _ => Err(format!("{path}: \"{what}\" is missing or not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry_doc() -> String {
        r#"{
            "kind": "telemetry",
            "label": "smoke",
            "wall_ns": 1000,
            "counters": { "engine.calls": 3 },
            "gauges": {},
            "histograms": {
                "sim.queue_depth": { "bounds": [0, 1, 3], "counts": [1, 1, 1], "count": 3, "sum": 4 }
            },
            "spans": [
                { "path": "slide", "count": 2, "total_ns": 10, "min_ns": 3, "max_ns": 7 }
            ]
        }"#
        .to_string()
    }

    #[test]
    fn valid_documents_of_all_three_schemas_pass() {
        check_text("t.json", &telemetry_doc()).unwrap();
        check_text("f.json", r#"{ "rows": [ { "x": 1 } ] }"#).unwrap();
        check_text("b.json", r#"{ "results": [ { "group": "g", "median_ns": 1.5 } ] }"#).unwrap();
    }

    #[test]
    fn bench_rejections_still_fire() {
        let empty = r#"{ "results": [] }"#;
        assert!(check_text("b.json", empty).unwrap_err().contains("empty"));
        let no_group = r#"{ "results": [ { "median_ns": 1.0 } ] }"#;
        assert!(check_text("b.json", no_group).unwrap_err().contains("group"));
        let bad_median = r#"{ "results": [ { "group": "g", "median_ns": 0.0 } ] }"#;
        assert!(check_text("b.json", bad_median).unwrap_err().contains("median_ns"));
    }

    #[test]
    fn telemetry_requires_non_empty_counters_and_spans() {
        let no_counters = telemetry_doc().replace(r#"{ "engine.calls": 3 }"#, "{}");
        assert!(check_text("t.json", &no_counters).unwrap_err().contains("counters"));
        let no_spans = telemetry_doc().replace(
            r#"{ "path": "slide", "count": 2, "total_ns": 10, "min_ns": 3, "max_ns": 7 }"#,
            "",
        );
        assert!(check_text("t.json", &no_spans).unwrap_err().contains("spans"));
    }

    #[test]
    fn telemetry_rejects_negative_and_inconsistent_values() {
        let negative = telemetry_doc().replace(r#""engine.calls": 3"#, r#""engine.calls": -1"#);
        assert!(check_text("t.json", &negative).unwrap_err().contains("negative"));
        let bad_span = telemetry_doc().replace(r#""min_ns": 3"#, r#""min_ns": 9"#);
        assert!(check_text("t.json", &bad_span).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn histogram_bounds_must_increase_and_counts_must_reconcile() {
        let flat_bounds = telemetry_doc().replace("[0, 1, 3]", "[0, 1, 1]");
        assert!(check_text("t.json", &flat_bounds).unwrap_err().contains("strictly increasing"));
        let bad_total = telemetry_doc().replace(r#""count": 3"#, r#""count": 5"#);
        assert!(check_text("t.json", &bad_total).unwrap_err().contains("sum to"));
        let ragged = telemetry_doc().replace("[1, 1, 1]", "[1, 1]");
        assert!(check_text("t.json", &ragged).unwrap_err().contains("bounds but"));
    }

    fn snapshot_doc() -> String {
        let payload = r#"{"x":1}"#;
        format!(
            "{{\"format\":\"wsn-persist\",\"kind\":\"checkpoint\",\"version\":{},\"len\":{},\"checksum\":{}}}\n{payload}\n",
            persist::PERSIST_VERSION,
            payload.len(),
            persist::fnv1a64(payload.as_bytes()),
        )
    }

    fn journal_doc() -> String {
        let row = |cell: u64| {
            format!(
                r#"{{"cell":{cell},"config_hash":17,"seed":{cell},"label":"Global-NN","toolchain":{{"version":"0.1.0","os":"linux","arch":"x86_64"}},"metrics":{{"accuracy":1.0,"quiescent":true}}}}"#
            )
        };
        format!("{}\n{}\n", row(0), row(1))
    }

    #[test]
    fn valid_snapshots_and_journals_pass() {
        let summary = check_text("s.json", &snapshot_doc()).unwrap();
        assert!(summary.contains("checkpoint"), "summary was {summary:?}");
        let summary = check_text("j.jsonl", &journal_doc()).unwrap();
        assert!(summary.contains("2 rows"), "summary was {summary:?}");
    }

    #[test]
    fn torn_and_corrupt_snapshots_are_rejected() {
        let doc = snapshot_doc();
        let torn = &doc[..doc.len() - 4];
        assert!(check_text("s.json", torn).unwrap_err().contains("torn"));
        let rotted = doc.replace(r#""x":1"#, r#""x":2"#);
        assert!(check_text("s.json", &rotted).unwrap_err().contains("checksum"));
        let future = doc.replace(
            &format!("\"version\":{}", persist::PERSIST_VERSION),
            &format!("\"version\":{}", persist::PERSIST_VERSION + 1),
        );
        assert!(check_text("s.json", &future).unwrap_err().contains("version"));
        let untagged = doc.replace(&format!("\"version\":{},", persist::PERSIST_VERSION), "");
        assert!(check_text("s.json", &untagged).unwrap_err().contains("version tag"));
    }

    #[test]
    fn journal_rejections_fire() {
        let out_of_order = journal_doc().replace(r#""cell":1"#, r#""cell":0"#);
        assert!(check_text("j.jsonl", &out_of_order).unwrap_err().contains("strictly increasing"));
        let nan_metric = journal_doc().replace(r#""accuracy":1.0"#, r#""accuracy":"oops""#);
        assert!(check_text("j.jsonl", &nan_metric).unwrap_err().contains("metrics.accuracy"));
        let unlabelled = journal_doc().replace(r#""label":"Global-NN","#, "");
        assert!(check_text("j.jsonl", &unlabelled).unwrap_err().contains("label"));
        let doc = journal_doc();
        let half_row = &doc[..doc.len() - 30];
        assert!(check_text("j.jsonl", half_row).unwrap_err().contains("unparsable"));
    }

    fn fleet_doc() -> String {
        r#"{
            "kind": "fleet",
            "label": "fig_fleet",
            "rows": [
                { "tenants": 1000, "shards": 8, "epochs": 8, "slides": 8000,
                  "checkpoint_every": 4, "elapsed_ms": 1200.5,
                  "tenant_slides_per_sec": 6664.0 }
            ]
        }"#
        .to_string()
    }

    #[test]
    fn valid_fleet_reports_pass_and_rejections_fire() {
        let summary = check_text("fl.json", &fleet_doc()).unwrap();
        assert!(summary.contains("fleet report"), "summary was {summary:?}");
        let zero_rate = fleet_doc()
            .replace(r#""tenant_slides_per_sec": 6664.0"#, r#""tenant_slides_per_sec": 0"#);
        assert!(check_text("fl.json", &zero_rate).unwrap_err().contains("tenant_slides_per_sec"));
        let no_tenants = fleet_doc().replace(r#""tenants": 1000,"#, "");
        assert!(check_text("fl.json", &no_tenants).unwrap_err().contains("tenants"));
        let no_policy = fleet_doc().replace(r#""checkpoint_every": 4,"#, "");
        assert!(check_text("fl.json", &no_policy).unwrap_err().contains("checkpoint_every"));
        let empty = fleet_doc().replace(
            r#"{ "tenants": 1000, "shards": 8, "epochs": 8, "slides": 8000,
                  "checkpoint_every": 4, "elapsed_ms": 1200.5,
                  "tenant_slides_per_sec": 6664.0 }"#,
            "",
        );
        assert!(check_text("fl.json", &empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn unknown_shapes_are_rejected() {
        assert!(check_text("x.json", "[1, 2]").unwrap_err().contains("not an object"));
        assert!(check_text("x.json", r#"{ "other": 1 }"#)
            .unwrap_err()
            .contains("neither a \"rows\" nor a \"results\""));
    }
}
