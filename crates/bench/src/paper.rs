//! The experiment configurations of the paper's evaluation (§7.1).
//!
//! The paper simulates the 53 Intel-lab sensors on a 50 m × 50 m terrain with
//! a 6.77 m radio range, runs 1000 seconds of simulated time (≈32 sampling
//! rounds at the trace's ~31 s sampling period), repeats every point with
//! four random seeds, and sweeps
//!
//! * the sliding-window length `w ∈ {10, 15, 20, 25, 30, 35, 40}` samples,
//! * the number of reported outliers `n ∈ {1, …, 8}`,
//! * the semi-global hop diameter `ε ∈ {1, 2, 3}`,
//!
//! with `n = 4` and `k = 4` wherever they are held fixed. [`PaperScenario`]
//! reproduces exactly those configurations, plus a `--quick` variant for
//! iterating on the harness without waiting for the full sweep.

use wsn_core::experiment::{AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_data::synth::{AnomalyModel, SyntheticTraceConfig};

/// The paper's `k` for the KNN ranking function.
pub const PAPER_K: usize = 4;

/// The paper's default number of reported outliers.
pub const PAPER_N: usize = 4;

/// The sliding-window sweep of Figures 4–8.
pub const WINDOW_SWEEP: [u64; 7] = [10, 15, 20, 25, 30, 35, 40];

/// The outlier-count sweep of Figure 9.
pub const N_SWEEP: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// The semi-global hop diameters of Figures 7–9.
pub const EPSILON_SWEEP: [u16; 3] = [1, 2, 3];

/// Number of seeds averaged per data point (the paper repeats every
/// simulation four times).
pub const PAPER_SEEDS: u64 = 4;

/// The paper's simulated duration in seconds.
pub const PAPER_SIM_SECONDS: f64 = 1000.0;

/// The sampling period of the Intel-lab trace, in seconds.
pub const PAPER_SAMPLE_INTERVAL_SECS: f64 = 31.0;

/// Scenario scale: the full paper configuration or a reduced one for quick
/// iteration on the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperScenario {
    /// The full §7.1 configuration: 53 sensors, 1000 s, four seeds per point.
    Full,
    /// A reduced configuration (fewer sensors, rounds and seeds) that keeps
    /// the qualitative shape of every figure but runs in seconds. Selected by
    /// passing `--quick` to any figure binary.
    Quick,
}

impl PaperScenario {
    /// Parses the scenario from command-line arguments (`--quick` selects the
    /// reduced configuration).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            PaperScenario::Quick
        } else {
            PaperScenario::Full
        }
    }

    /// Number of sensors simulated.
    pub fn sensor_count(&self) -> usize {
        match self {
            PaperScenario::Full => wsn_data::lab::LAB_SENSOR_COUNT,
            PaperScenario::Quick => 20,
        }
    }

    /// Number of sampling rounds simulated.
    ///
    /// The paper simulates 1000 s (≈32 rounds at the trace's ~31 s sampling
    /// period). We extend the run to 48 rounds so that the largest window of
    /// the sweep (`w = 40` samples) is still meaningfully different from the
    /// smaller ones — at exactly 32 rounds, windows of 35 and 40 samples
    /// never evict anything and collapse onto each other.
    pub fn rounds(&self) -> usize {
        match self {
            PaperScenario::Full => 48,
            PaperScenario::Quick => 12,
        }
    }

    /// Number of random seeds averaged per data point.
    pub fn seeds(&self) -> u64 {
        match self {
            PaperScenario::Full => PAPER_SEEDS,
            PaperScenario::Quick => 1,
        }
    }

    /// The sliding-window sweep used by this scenario.
    pub fn window_sweep(&self) -> Vec<u64> {
        match self {
            PaperScenario::Full => WINDOW_SWEEP.to_vec(),
            PaperScenario::Quick => vec![10, 20, 40],
        }
    }

    /// The `n` sweep used by this scenario.
    pub fn n_sweep(&self) -> Vec<usize> {
        match self {
            PaperScenario::Full => N_SWEEP.to_vec(),
            PaperScenario::Quick => vec![1, 4, 8],
        }
    }

    /// The radio range, widened in the quick scenario so the reduced
    /// deployment stays connected.
    pub fn transmission_range_m(&self) -> f64 {
        match self {
            PaperScenario::Full => wsn_data::lab::PAPER_TRANSMISSION_RANGE_M,
            PaperScenario::Quick => 14.0,
        }
    }

    /// The synthetic-trace configuration of this scenario: the Intel-lab-like
    /// temperature field with fault-style anomalies and a small missing-data
    /// rate (imputed by the experiment runner exactly as §7.1 does).
    ///
    /// The quick scenario raises the fault rate so that its much shorter
    /// trace still contains enough pronounced outliers for the accuracy
    /// columns to be meaningful.
    pub fn trace(&self) -> SyntheticTraceConfig {
        let anomalies = match self {
            PaperScenario::Full => AnomalyModel::default(),
            PaperScenario::Quick => {
                AnomalyModel { spike_probability: 0.03, ..AnomalyModel::default() }
            }
        };
        SyntheticTraceConfig {
            sample_interval_secs: PAPER_SAMPLE_INTERVAL_SECS,
            rounds: self.rounds(),
            anomalies,
            missing_probability: 0.02,
            ..Default::default()
        }
    }

    /// The base experiment configuration shared by every figure: only the
    /// algorithm, `w` and `n` vary between data points.
    pub fn base_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            sensor_count: self.sensor_count(),
            deployment_seed: 1,
            trace: self.trace(),
            trace_seed: 7,
            sim_seed: 1,
            window_samples: 20,
            n: PAPER_N,
            algorithm: AlgorithmConfig::Global { ranking: RankingChoice::Nn },
            loss: wsn_netsim::radio::LossModel::Reliable,
            transmission_range_m: self.transmission_range_m(),
            backend: wsn_netsim::region::SimBackend::Sequential,
            fault_plan: None,
            liveness_timeout_secs: None,
        }
    }

    /// The configuration of one data point.
    pub fn config(&self, algorithm: AlgorithmConfig, w: u64, n: usize) -> ExperimentConfig {
        self.base_config().with_algorithm(algorithm).with_window_samples(w).with_n(n)
    }
}

/// The `Centralized` series of every figure.
pub fn centralized() -> AlgorithmConfig {
    AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }
}

/// The `Global-NN` series of Figures 4–6.
pub fn global_nn() -> AlgorithmConfig {
    AlgorithmConfig::Global { ranking: RankingChoice::Nn }
}

/// The `Global-KNN` series of Figures 4–6 (`k = 4`).
pub fn global_knn() -> AlgorithmConfig {
    AlgorithmConfig::Global { ranking: RankingChoice::KnnAverage { k: PAPER_K } }
}

/// The `Semi-global, epsilon=ε` series of Figure 7 (NN ranking).
pub fn semi_global_nn(epsilon: u16) -> AlgorithmConfig {
    AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: epsilon }
}

/// The `Semi-global, epsilon=ε` series of Figures 8–9 (KNN ranking, `k = 4`).
pub fn semi_global_knn(epsilon: u16) -> AlgorithmConfig {
    AlgorithmConfig::SemiGlobal {
        ranking: RankingChoice::KnnAverage { k: PAPER_K },
        hop_diameter: epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_matches_the_paper_parameters() {
        let s = PaperScenario::Full;
        assert_eq!(s.sensor_count(), 53);
        assert_eq!(s.rounds(), 48);
        assert_eq!(s.seeds(), 4);
        assert_eq!(s.window_sweep(), vec![10, 15, 20, 25, 30, 35, 40]);
        assert_eq!(s.n_sweep(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!((s.transmission_range_m() - 6.77).abs() < 1e-9);
    }

    #[test]
    fn quick_scenario_is_smaller_in_every_dimension() {
        let full = PaperScenario::Full;
        let quick = PaperScenario::Quick;
        assert!(quick.sensor_count() < full.sensor_count());
        assert!(quick.rounds() < full.rounds());
        assert!(quick.seeds() < full.seeds());
        assert!(quick.window_sweep().len() < full.window_sweep().len());
    }

    #[test]
    fn configs_are_valid_and_parameterized() {
        let s = PaperScenario::Quick;
        let c = s.config(global_knn(), 15, 6);
        assert!(c.validate().is_ok());
        assert_eq!(c.window_samples, 15);
        assert_eq!(c.n, 6);
        assert_eq!(c.algorithm.label(), "Global-KNN");
        assert_eq!(s.config(semi_global_nn(2), 10, 4).algorithm.label(), "Semi-global, epsilon=2");
        assert_eq!(s.config(centralized(), 10, 4).algorithm.label(), "Centralized");
        assert_eq!(semi_global_knn(3).label(), "Semi-global, epsilon=3");
        assert_eq!(global_nn().label(), "Global-NN");
    }
}
