//! Figure 9: average TX and RX energy per node per sampling round versus the
//! number of reported outliers `n`, for semi-global detection with the
//! k-nearest-neighbour ranking function (`w = 20`, `k = 4`).
//!
//! Series: Centralized, Semi-global ε = 1, 2, 3.

use wsn_bench::paper::{centralized, semi_global_knn};
use wsn_bench::runner::{emit, n_sweep_report, TableStyle};
use wsn_bench::PaperScenario;

/// The fixed sliding-window length of Figure 9.
const FIGURE_9_WINDOW: u64 = 20;

fn main() {
    let scenario = PaperScenario::from_args();
    let report = n_sweep_report(
        scenario,
        "Figure 9: semi-global KNN detection energy vs number of reported outliers",
        "53-sensor lab deployment, w=20, k=4, series: Centralized / Semi-global epsilon=1,2,3",
        &[centralized(), semi_global_knn(1), semi_global_knn(2), semi_global_knn(3)],
        FIGURE_9_WINDOW,
    )
    .expect("figure 9 sweep failed");
    emit(&report, "fig9_energy_vs_num_outliers", TableStyle::Energy);
}
