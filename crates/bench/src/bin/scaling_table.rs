//! Network-size scaling table (§7.1).
//!
//! The paper also simulated a 32-node uniformly random subsample of the
//! 53-node network and reports that "as the network size increased, the
//! performance benefit of the distributed algorithms increased in comparison
//! to the centralized algorithms" (trends otherwise identical, so no plots
//! are shown). This harness prints the centralized-to-distributed energy
//! ratio at both sizes so the claim can be checked directly.

use wsn_bench::paper::{centralized, global_nn, PAPER_N};
use wsn_bench::sweep::run_averaged;
use wsn_bench::PaperScenario;

fn main() {
    let scenario = PaperScenario::from_args();
    let sizes: Vec<usize> = match scenario {
        PaperScenario::Full => vec![32, 53],
        PaperScenario::Quick => vec![12, 20],
    };
    let w = 20;

    println!("== Scaling with network size (w=20, n=4) ==");
    println!(
        "{:<10}{:>26}{:>26}{:>22}",
        "sensors",
        "Centralized TX/round (J)",
        "Global-NN TX/round (J)",
        "centralized / distributed"
    );
    for &size in &sizes {
        let mut cent = scenario.config(centralized(), w, PAPER_N);
        cent.sensor_count = size;
        let mut dist = scenario.config(global_nn(), w, PAPER_N);
        dist.sensor_count = size;
        // The sparser subsampled network needs a slightly wider radio range to
        // stay connected, exactly like the paper's random 32-node subsample.
        if size < 40 {
            cent.transmission_range_m = cent.transmission_range_m.max(9.5);
            dist.transmission_range_m = dist.transmission_range_m.max(9.5);
        }
        let centralized_outcome =
            run_averaged(&cent, scenario.seeds()).expect("centralized scaling run failed");
        let distributed_outcome =
            run_averaged(&dist, scenario.seeds()).expect("distributed scaling run failed");
        let ratio = if distributed_outcome.avg_tx_per_node_per_round > 0.0 {
            centralized_outcome.avg_tx_per_node_per_round
                / distributed_outcome.avg_tx_per_node_per_round
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10}{:>26.4}{:>26.4}{:>22.2}",
            size,
            centralized_outcome.avg_tx_per_node_per_round,
            distributed_outcome.avg_tx_per_node_per_round,
            ratio
        );
    }
    println!(
        "\nPaper: the benefit of the distributed algorithm over the centralized one \
         grows with the network size."
    );
}
