//! Scenario-diversity sweep: every `wsn-workload` catalog scenario × a grid
//! of algorithms, each run through the **streaming window-slide driver**
//! (`wsn_core::streaming`) instead of the one-shot batch runner.
//!
//! For every cell the table reports slide-averaged exact-match accuracy,
//! label recall (against the scenario's injected ground truth), per-slide
//! energy and protocol traffic; the per-cell log lines additionally carry
//! label precision, the convergence latency in slides and the agreement
//! rate. The correlated-burst and adversarial rows are the interesting
//! ones — they are exactly the workloads the paper's Bernoulli model cannot
//! produce.
//!
//! Run with `--quick` for a reduced (12-node, 8-round) sweep.

use wsn_bench::pool;
use wsn_bench::report::{FigureReport, SeriesRow};
use wsn_bench::runner::{emit, TableStyle};
use wsn_core::experiment::{AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_core::streaming::{StreamingExperiment, StreamingOutcome};
use wsn_core::CoreError;
use wsn_data::lab::{LabDeployment, PAPER_TRANSMISSION_RANGE_M};
use wsn_workload::Scenario;

fn row_from_outcome(x: f64, outcome: &StreamingOutcome) -> SeriesRow {
    let total = outcome.final_stats.total_energy_summary();
    SeriesRow {
        x,
        label: outcome.label.clone(),
        avg_tx_per_round: outcome.avg_tx_per_node_per_slide(),
        avg_rx_per_round: outcome.avg_rx_per_node_per_slide(),
        min_total_energy: total.min,
        avg_total_energy: total.avg,
        max_total_energy: total.max,
        accuracy: outcome.mean_slide_accuracy(),
        mean_recall: outcome.mean_label_recall(),
        traffic_imbalance: outcome.final_stats.traffic_imbalance(),
        data_points_sent: outcome.data_points_sent as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sensor_count, rounds, range_m) =
        if quick { (12usize, 8usize, 18.0) } else { (53, 24, PAPER_TRANSMISSION_RANGE_M) };
    let algorithms = [
        AlgorithmConfig::Global { ranking: RankingChoice::Nn },
        AlgorithmConfig::Global { ranking: RankingChoice::KnnAverage { k: 4 } },
        AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: 2 },
    ];
    let deployment = LabDeployment::with_sensor_count(sensor_count, 1).expect("deployment builds");
    let scenarios = Scenario::catalog(rounds);

    // Submit the whole scenario × algorithm grid to the shared worker pool,
    // then collect in sweep order (the same discipline as the window/n
    // sweeps of the other figure binaries).
    let pool = pool::global();
    let mut pending = Vec::new();
    for (index, scenario) in scenarios.iter().enumerate() {
        for &algorithm in &algorithms {
            let mut config = ExperimentConfig {
                sensor_count,
                window_samples: 10,
                n: 4,
                transmission_range_m: range_m,
                ..Default::default()
            }
            .with_algorithm(algorithm);
            // Dynamic-network scenarios carry a declarative fault profile:
            // instantiate it for this layout and let the detectors prune
            // neighbours that go silent for ~3 sampling rounds.
            if let Some(profile) = scenario.faults {
                let plan = profile.instantiate(
                    deployment.sensors(),
                    scenario.trace.sample_interval_secs,
                    rounds,
                    41,
                );
                config = config
                    .with_fault_plan(plan)
                    .with_liveness_timeout(3.0 * scenario.trace.sample_interval_secs);
            }
            let name = scenario.name.clone();
            let cell = scenario.clone();
            let sensors = deployment.sensors().to_vec();
            let handle = pool.submit(move || -> Result<StreamingOutcome, CoreError> {
                // Seed 41 injects a non-empty label set for every labelled
                // catalog scenario even at --quick scale (96 readings), so
                // no row of the figure is vacuous.
                let trace = cell.generate(&sensors, 41).map_err(CoreError::from)?;
                StreamingExperiment::new(config).run_on_trace(&trace)
            });
            pending.push((index, name, handle));
        }
    }

    let legend: Vec<String> =
        scenarios.iter().enumerate().map(|(i, s)| format!("{i}={}", s.name)).collect();
    let mut report = FigureReport::new(
        "Streaming scenario sweep (per-slide evaluation)",
        format!(
            "{sensor_count} sensors, {rounds} rounds, w=10, n=4, one seed; scenarios: {}",
            legend.join(", ")
        ),
        "scenario",
    );
    for (index, name, handle) in pending {
        let outcome = handle.join().expect("scenario cell failed");
        eprintln!(
            "  [fig_scenarios] {} on {name}: acc/slide={:.3} label p/r={:.3}/{:.3} \
             agree={:.2} conv={} pts={}",
            outcome.label,
            outcome.mean_slide_accuracy(),
            outcome.mean_label_precision(),
            outcome.mean_label_recall(),
            outcome.agreement_rate(),
            outcome
                .convergence_latency_slides
                .map_or_else(|| "never".to_string(), |s| format!("{s} slides")),
            outcome.data_points_sent,
        );
        report.push(row_from_outcome(index as f64, &outcome));
    }
    emit(&report, "fig_scenarios", TableStyle::Energy);
}
