//! `fig_fleet`: wall-clock throughput of the multi-tenant detection service,
//! reported as **tenant-slides per second** — the fleet's unit of work (one
//! tenant advancing one epoch to the protocol fixed point).
//!
//! Rows sweep the tenant count with checkpoints off and on (a snapshot of
//! every tenant each 4 executed slides, the crash-safety cadence); the
//! workload is the shared [`wsn_bench::fleetload`] stream, so the figures
//! are comparable with the `fleet` bench group. Writes a
//! `kind: "fleet"` JSON report to `results/fig_fleet.json` (override with
//! `WSN_FIG_FLEET_OUT`), validated downstream by `json_check`.
//!
//! `--quick` shrinks the sweep for CI smoke runs.

use std::path::Path;
use std::time::Instant;

use wsn_bench::fleetload;
use wsn_bench::json::JsonValue;
use wsn_fleet::DetectorFleet;

fn run_row(tenants: u64, epochs: u64, checkpoint_every: u64, scratch: &Path) -> JsonValue {
    let shards = fleetload::SHARDS;
    let mut fleet = DetectorFleet::new(shards);
    fleetload::populate(&mut fleet, tenants);
    if checkpoint_every > 0 {
        fleet.checkpoint_every_epochs(
            checkpoint_every,
            scratch.join(format!("t{tenants}_k{checkpoint_every}")),
        );
    }
    let started = Instant::now();
    let mut slides = 0u64;
    for epoch in 0..epochs {
        slides += fleetload::run_epoch(&mut fleet, tenants, epoch);
    }
    slides += fleet.flush().expect("final drain succeeds").len() as u64;
    let elapsed = started.elapsed();
    let rate = slides as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "  [fig_fleet] tenants={tenants:5} shards={shards} checkpoint_every={checkpoint_every}: \
         {slides} slides in {:.1} ms -> {rate:.0} tenant-slides/sec",
        elapsed.as_secs_f64() * 1e3,
    );
    JsonValue::Object(vec![
        ("tenants".to_string(), JsonValue::from(tenants)),
        ("shards".to_string(), JsonValue::from(shards)),
        ("epochs".to_string(), JsonValue::from(epochs)),
        ("slides".to_string(), JsonValue::from(slides)),
        ("checkpoint_every".to_string(), JsonValue::from(checkpoint_every)),
        ("elapsed_ms".to_string(), JsonValue::from(elapsed.as_secs_f64() * 1e3)),
        ("tenant_slides_per_sec".to_string(), JsonValue::from(rate)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tenant_counts, epochs): (&[u64], u64) = if quick { (&[50], 4) } else { (&[250, 1000], 8) };

    let scratch = std::env::temp_dir().join(format!("fig_fleet_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut rows = Vec::new();
    for &tenants in tenant_counts {
        for checkpoint_every in [0u64, 4] {
            rows.push(run_row(tenants, epochs, checkpoint_every, &scratch));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let doc = JsonValue::Object(vec![
        ("kind".to_string(), JsonValue::from("fleet")),
        (
            "label".to_string(),
            JsonValue::from(if quick { "fig_fleet --quick" } else { "fig_fleet" }),
        ),
        ("rows".to_string(), JsonValue::Array(rows)),
    ]);
    let path =
        std::env::var("WSN_FIG_FLEET_OUT").unwrap_or_else(|_| "results/fig_fleet.json".into());
    if let Some(dir) = Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, doc.to_pretty_string() + "\n") {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
