//! Figure 5: minimum, average and maximum total energy consumed by a node
//! versus the sliding-window size `w`, for global outlier detection
//! (`n = 4`, `k = 4`).
//!
//! Series: Centralized, Global-NN, Global-KNN.

use wsn_bench::paper::{centralized, global_knn, global_nn, PAPER_N};
use wsn_bench::runner::{emit, window_sweep_report, TableStyle};
use wsn_bench::PaperScenario;

fn main() {
    let scenario = PaperScenario::from_args();
    let report = window_sweep_report(
        scenario,
        "Figure 5: per-node total energy range vs sliding window size",
        "53-sensor lab deployment, n=4, k=4, series: Centralized / Global-NN / Global-KNN",
        &[centralized(), global_nn(), global_knn()],
        PAPER_N,
    )
    .expect("figure 5 sweep failed");
    emit(&report, "fig5_energy_range_vs_window", TableStyle::Range);
}
