//! Figure 4: average TX and RX energy per node per sampling round versus the
//! sliding-window size `w`, for global outlier detection (`n = 4`, `k = 4`).
//!
//! Series: Centralized, Global-NN, Global-KNN.
//!
//! Run with `--quick` for a reduced (20-node, 1-seed) sweep that preserves
//! the qualitative shape.

use wsn_bench::paper::{centralized, global_knn, global_nn, PAPER_N};
use wsn_bench::runner::{emit, window_sweep_report, TableStyle};
use wsn_bench::PaperScenario;

fn main() {
    let scenario = PaperScenario::from_args();
    let report = window_sweep_report(
        scenario,
        "Figure 4: global detection energy vs sliding window size",
        "53-sensor lab deployment, n=4, k=4, series: Centralized / Global-NN / Global-KNN",
        &[centralized(), global_nn(), global_knn()],
        PAPER_N,
    )
    .expect("figure 4 sweep failed");
    emit(&report, "fig4_global_energy_vs_window", TableStyle::Energy);
}
