//! Figure 6: the per-node energy spread of Figure 5 normalised by each
//! algorithm's average, shown for `w ∈ {10, 20, 40}`.
//!
//! The paper's headline reading: at `w = 10` the most energy-hungry node of
//! the centralized algorithm consumes nearly 3× the average, against less
//! than 2× for both distributed algorithms.

use wsn_bench::paper::{centralized, global_knn, global_nn, PAPER_N};
use wsn_bench::report::FigureReport;
use wsn_bench::runner::{emit, TableStyle};
use wsn_bench::sweep::run_averaged;
use wsn_bench::{PaperScenario, SeriesRow};

fn main() {
    let scenario = PaperScenario::from_args();
    let windows: Vec<u64> = match scenario {
        PaperScenario::Full => vec![10, 20, 40],
        PaperScenario::Quick => vec![10, 40],
    };
    let mut report = FigureReport::new(
        "Figure 6: normalized per-node energy spread",
        "53-sensor lab deployment, n=4, k=4; values normalized by each algorithm's average",
        "w",
    );
    for &w in &windows {
        for algorithm in [centralized(), global_nn(), global_knn()] {
            let config = scenario.config(algorithm, w, PAPER_N);
            let outcome = run_averaged(&config, scenario.seeds()).expect("figure 6 run failed");
            eprintln!(
                "  [Figure 6] {} w={w}: max/avg = {:.2}",
                outcome.label,
                outcome.normalized_energy().max
            );
            report.push(SeriesRow::from_outcome(w as f64, &outcome));
        }
    }
    emit(&report, "fig6_normalized_energy", TableStyle::Normalized);
}
