//! Detection-accuracy table (§7.2's text-only claim).
//!
//! The paper states: "We observed both the global and semi-global outlier
//! detection algorithms to be highly accurate as nodes converged upon the
//! correct results approximately 99% of the time. We attribute any detection
//! error to dropped packets."
//!
//! This harness reproduces that claim by measuring, for every algorithm, the
//! fraction of nodes whose final estimate exactly equals the correct answer,
//! at increasing packet-drop probabilities (0%, 1%, 5%, 10%).

use wsn_bench::paper::{global_knn, global_nn, semi_global_knn, semi_global_nn, PAPER_N};
use wsn_bench::sweep::run_averaged;
use wsn_bench::PaperScenario;
use wsn_netsim::radio::LossModel;

fn main() {
    let scenario = PaperScenario::from_args();
    let loss_rates = [0.0, 0.01, 0.05, 0.10];
    let algorithms = [global_nn(), global_knn(), semi_global_nn(2), semi_global_knn(2)];

    println!("== Detection accuracy vs packet loss (w=20, n=4, k=4) ==");
    println!("exact = fraction of nodes whose estimate equals O_n exactly;");
    println!("recall = mean fraction of each node's true outliers that appear in its estimate\n");
    println!(
        "{:<34}{:>18}{:>18}{:>18}{:>18}",
        "algorithm", "loss=0%", "loss=1%", "loss=5%", "loss=10%"
    );
    for algorithm in algorithms {
        let mut cells = Vec::new();
        for &p in &loss_rates {
            let mut config = scenario.config(algorithm, 20, PAPER_N);
            config.loss = if p == 0.0 { LossModel::Reliable } else { LossModel::bernoulli(p) };
            let outcome = run_averaged(&config, scenario.seeds()).expect("accuracy run failed");
            eprintln!(
                "  [accuracy] {} loss={p}: exact={:.3} recall={:.3} agreement={:.2} quiescent={:.2}",
                outcome.label,
                outcome.accuracy,
                outcome.mean_recall,
                outcome.agreement_rate,
                outcome.quiescence_rate
            );
            cells.push((outcome.accuracy, outcome.mean_recall));
        }
        let label = format!("{} [{}]", algorithm.label(), algorithm.ranking().label());
        print!("{label:<34}");
        for (exact, recall) in cells {
            print!("{:>18}", format!("{exact:.2} / {recall:.2}"));
        }
        println!();
    }
    println!(
        "\nPaper: ≈99% of nodes converge on the correct result; errors are attributed to dropped packets."
    );
}
