//! Traffic-imbalance table (§8).
//!
//! The conclusion argues that centralizing the data makes the sink's
//! neighbourhood a bottleneck: "the traffic in the area of the collecting
//! node was about 50 times more dense than in the other parts of the
//! network", and at `w = 10` "the most energy consuming node consumed nearly
//! three times more energy than the average node in a centralized algorithm
//! and less than twice the energy of the average node in both distributed
//! algorithms."
//!
//! This harness prints, for each algorithm at `w = 10`, the max/avg radio
//! activity ratio and the max/avg per-node energy ratio.

use wsn_bench::paper::{centralized, global_knn, global_nn, PAPER_N};
use wsn_bench::sweep::run_averaged;
use wsn_bench::PaperScenario;

fn main() {
    let scenario = PaperScenario::from_args();
    let w = 10;
    println!("== Traffic and energy imbalance at w=10 (n=4, k=4) ==");
    println!(
        "{:<26}{:>22}{:>22}{:>16}",
        "algorithm", "radio max/avg", "energy max/avg", "energy min/avg"
    );
    for algorithm in [centralized(), global_nn(), global_knn()] {
        let config = scenario.config(algorithm, w, PAPER_N);
        let outcome = run_averaged(&config, scenario.seeds()).expect("imbalance run failed");
        let normalized = outcome.normalized_energy();
        println!(
            "{:<26}{:>22.2}{:>22.2}{:>16.2}",
            outcome.label, outcome.avg_traffic_imbalance, normalized.max, normalized.min
        );
    }
    println!(
        "\nPaper: the centralized max/avg energy ratio approaches 3x at w=10, \
         against <2x for both distributed algorithms; traffic near the sink is \
         far denser than anywhere else in the network."
    );
}
