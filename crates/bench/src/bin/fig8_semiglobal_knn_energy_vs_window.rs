//! Figure 8: average TX and RX energy per node per sampling round versus the
//! sliding-window size `w`, for semi-global (hop-limited) detection with the
//! k-nearest-neighbour ranking function (`n = 4`, `k = 4`).
//!
//! Series: Centralized, Semi-global ε = 1, 2, 3.

use wsn_bench::paper::{centralized, semi_global_knn, PAPER_N};
use wsn_bench::runner::{emit, window_sweep_report, TableStyle};
use wsn_bench::PaperScenario;

fn main() {
    let scenario = PaperScenario::from_args();
    let report = window_sweep_report(
        scenario,
        "Figure 8: semi-global KNN detection energy vs sliding window size",
        "53-sensor lab deployment, n=4, k=4, series: Centralized / Semi-global epsilon=1,2,3",
        &[centralized(), semi_global_knn(1), semi_global_knn(2), semi_global_knn(3)],
        PAPER_N,
    )
    .expect("figure 8 sweep failed");
    emit(&report, "fig8_semiglobal_knn_energy_vs_window", TableStyle::Energy);
}
