//! CI helper: validates that a figure or benchmark JSON file is well-formed.
//!
//! Parses the file with the in-repo JSON parser (`wsn_bench::json`) and
//! requires the document to be an object carrying a non-empty `rows` (figure
//! reports) or `results` (benchmark suites) array. Benchmark entries are
//! additionally required to carry a non-empty `group` and a finite, positive
//! `median_ns` — a bench run that produced NaN/infinite timings or lost its
//! group labels is as useless as an empty one. Exits non-zero on any
//! violation, so `ci.sh` can gate on the figure and benchmark binaries
//! actually producing usable output rather than just exiting zero.

use std::process::ExitCode;

use wsn_bench::json::JsonValue;

fn check(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let value = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(format!("{path}: top-level value is not an object"));
    }
    let data = value
        .get("rows")
        .or_else(|| value.get("results"))
        .ok_or_else(|| format!("{path}: object has neither a \"rows\" nor a \"results\" key"))?;
    let entries =
        data.as_array().ok_or_else(|| format!("{path}: \"rows\"/\"results\" is not an array"))?;
    if entries.is_empty() {
        return Err(format!("{path}: \"rows\"/\"results\" array is empty"));
    }
    // Benchmark-suite entries (the `results` shape) carry group labels and
    // median timings; validate both.
    if value.get("results").is_some() {
        for (index, entry) in entries.iter().enumerate() {
            let group = entry.get("group").and_then(|g| g.as_str()).unwrap_or("");
            if group.is_empty() {
                return Err(format!("{path}: results[{index}] has an empty or missing group"));
            }
            let median = entry
                .get("median_ns")
                .and_then(|m| m.as_f64())
                .ok_or_else(|| format!("{path}: results[{index}] has no median_ns"))?;
            if !median.is_finite() || median <= 0.0 {
                return Err(format!(
                    "{path}: results[{index}] ({group}) has a non-finite or non-positive \
                     median_ns ({median})"
                ));
            }
        }
    }
    Ok(format!("{path}: valid JSON, {} entries, {} bytes", entries.len(), text.len()))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_check <file.json> [more.json ...]");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        match check(path) {
            Ok(message) => println!("{message}"),
            Err(message) => {
                eprintln!("json_check: {message}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
