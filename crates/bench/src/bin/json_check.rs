//! CI helper: validates that a figure, benchmark or telemetry JSON file is
//! well-formed.
//!
//! All the actual validation lives in `wsn_bench::check`, which dispatches
//! on the document's shape: a `kind: "telemetry"` discriminator selects the
//! telemetry-sidecar schema (non-empty registries, finite non-negative
//! values, strictly increasing histogram bounds), a `rows` key the figure
//! schema, a `results` key the benchmark schema (non-empty groups, finite
//! positive medians). Exits non-zero on any violation, so `ci.sh` can gate
//! on the binaries actually producing usable output rather than just
//! exiting zero.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_check <file.json> [more.json ...]");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        match wsn_bench::check::check_file(path) {
            Ok(message) => println!("{message}"),
            Err(message) => {
                eprintln!("json_check: {message}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
