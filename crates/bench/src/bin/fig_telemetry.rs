//! `fig_telemetry`: the per-stage cost profile of the 2 000-sensor city
//! streaming run, derived from `wsn-obs` telemetry.
//!
//! Runs the same configuration as the `scaling/partitioned/2000` benchmark
//! (semi-global NN detector at ε = 1, streaming two window slides on the
//! spatially partitioned backend), with telemetry collection enabled, and
//! prints:
//!
//! * the span table — where each slide's wall clock goes (`slide/sim`,
//!   `slide/collect`, `slide/evaluate`, and the detector / fixed-point time
//!   nested under the simulation), plus the quiescence tail;
//! * the counter table — fixed-point cache behaviour, desync re-scans,
//!   broadcast volume, simulator load.
//!
//! The binary hard-fails (exit 1) if the per-slide stage breakdown does not
//! account for its parent within 10% — the overhead contract of `wsn-obs`
//! says the spans must measure the run, not distort it. The full report is
//! also written to `TELEMETRY_fig_telemetry.json` (override with
//! `WSN_TELEMETRY_OUT`), in the schema `json_check` validates.
//!
//! Without the `telemetry` cargo feature the instrumentation is compiled
//! out; the binary then explains how to rebuild and exits 0, so accidental
//! default-feature invocations do not fail CI.

use std::process::ExitCode;
use std::time::Instant;

use wsn_core::experiment::{AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_core::streaming::StreamingExperiment;
use wsn_data::lab::LabDeployment;
use wsn_data::synth::SyntheticTraceConfig;
use wsn_netsim::region::SimBackend;
use wsn_obs::TelemetryReport;
use wsn_workload::FaultProfile;

const SENSORS: usize = 2_000;
const REGIONS: usize = 4;

/// Light churn plus duty-cycling, so the fault-model counters
/// (`sim.node_deaths`, `sim.node_joins`, `sim.dropped_asleep`,
/// `detector.stale_neighbors_pruned`) show up in the table with live values:
/// 1% of the city dies mid-run, half of those rejoin, and every radio sleeps
/// 10% of each 2 s cycle.
const FAULTS: FaultProfile =
    FaultProfile { death_fraction: 0.01, rejoin_fraction: 0.5, duty_cycle: Some((2.0, 0.9)) };

fn main() -> ExitCode {
    if !wsn_obs::compiled() {
        println!(
            "fig_telemetry: built without the `telemetry` feature; the instrumentation is \
             compiled out.\nRebuild with:\n  cargo run --release --features telemetry -p \
             wsn-bench --bin fig_telemetry"
        );
        return ExitCode::SUCCESS;
    }
    wsn_obs::set_enabled(true);
    wsn_obs::reset();

    let deployment = LabDeployment::city(SENSORS, 1).expect("city deployment builds");
    let trace_config = SyntheticTraceConfig { rounds: 2, ..Default::default() };
    let trace = deployment.generate_trace(&trace_config, 7).expect("trace generates");
    let plan = FAULTS.instantiate(
        deployment.sensors(),
        trace_config.sample_interval_secs,
        trace_config.rounds,
        41,
    );
    let config =
        ExperimentConfig { sensor_count: SENSORS, window_samples: 10, n: 4, ..Default::default() }
            .with_algorithm(AlgorithmConfig::SemiGlobal {
                ranking: RankingChoice::Nn,
                hop_diameter: 1,
            })
            .with_backend(SimBackend::Partitioned { regions: REGIONS })
            .with_fault_plan(plan)
            // Short enough that a mid-run death is noticed and pruned by the
            // final sampling round, exercising the stale-neighbour counter.
            .with_liveness_timeout(0.7 * trace_config.sample_interval_secs);
    // Checkpoint every slide so the crash-safety instrumentation
    // (`persist.snapshots_written`, `persist.snapshot_bytes`, the
    // `slide/checkpoint` span) carries live city-scale values in the tables.
    let checkpoint_dir =
        std::env::temp_dir().join(format!("fig_telemetry_ckpt_{}", std::process::id()));
    let experiment = StreamingExperiment::new(config).checkpoint_every_slides(1, &checkpoint_dir);

    println!(
        "fig_telemetry: streaming {SENSORS} city sensors ({REGIONS} regions), semi-global NN \
         eps=1, {} slides...",
        trace_config.rounds
    );
    let started = Instant::now();
    let outcome = experiment.run_on_trace(&trace).expect("streaming run failed");
    let wall_ns = started.elapsed().as_nanos() as u64;
    let _ = std::fs::remove_dir_all(&checkpoint_dir);

    // A tiny sweep journaled twice — the second pass skips every completed
    // cell — so the resumable-sweep counters (`persist.journal_rows`,
    // `persist.cells_skipped_on_resume`) also show live values below.
    let journal_path =
        std::env::temp_dir().join(format!("fig_telemetry_journal_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let mut tiny = ExperimentConfig::small();
    tiny.trace.rounds = 2;
    for _ in 0..2 {
        wsn_bench::journal::SweepJournal::open(&journal_path)
            .expect("sweep journal opens")
            .run_averaged(&tiny, 2)
            .expect("journaled sweep runs");
    }
    let _ = std::fs::remove_file(&journal_path);

    let report = wsn_obs::report();

    println!(
        "run complete: {} slides, {} packets, wall {}",
        outcome.slides.len(),
        outcome.final_stats.total_packets_sent(),
        fmt_ns(wall_ns as f64),
    );

    print_span_table(&report, wall_ns);
    print_counter_table(&report);

    match wsn_bench::telemetry::write_sidecar("fig_telemetry", &report, wall_ns) {
        Ok(path) => println!("\ntelemetry report -> {path}"),
        Err(e) => {
            eprintln!("fig_telemetry: failed to write telemetry report: {e}");
            return ExitCode::FAILURE;
        }
    }

    check_breakdown(&report)
}

/// The span table: every recorded path with its count, total, and mean, plus
/// its share of the measured wall clock.
fn print_span_table(report: &TelemetryReport, wall_ns: u64) {
    println!("\n{:<28} {:>10} {:>12} {:>12} {:>8}", "span", "count", "total", "mean", "% wall");
    for span in &report.spans {
        let mean = span.total_ns as f64 / span.count as f64;
        println!(
            "{:<28} {:>10} {:>12} {:>12} {:>7.1}%",
            span.path,
            span.count,
            fmt_ns(span.total_ns as f64),
            fmt_ns(mean),
            span.total_ns as f64 * 100.0 / wall_ns as f64,
        );
    }
}

/// The counter table, grouped by prefix (engine, detector, ledger, sim,
/// region) as the registration names already encode.
fn print_counter_table(report: &TelemetryReport) {
    println!("\n{:<40} {:>16}", "counter", "value");
    for (name, value) in &report.counters {
        println!("{:<40} {:>16}", name, value);
    }
}

/// The acceptance gate: the `slide` span's direct children (`sim`,
/// `collect`, `evaluate`) cover its whole body by construction, so their
/// totals must sum to within 10% of the `slide` total — otherwise the
/// breakdown is lying about where the per-slide time went. (Deeper spans
/// like `slide/sim/detect` deliberately cover only part of their parent and
/// are not reconciled.)
fn check_breakdown(report: &TelemetryReport) -> ExitCode {
    let Some(slide) = report.span("slide") else {
        eprintln!("fig_telemetry: no `slide` span was recorded");
        return ExitCode::FAILURE;
    };
    let child_total: u64 = report
        .spans
        .iter()
        .filter(|s| s.path.strip_prefix("slide/").is_some_and(|rest| !rest.contains('/')))
        .map(|s| s.total_ns)
        .sum();
    let slide_total = slide.total_ns.max(1);
    let deviation = child_total.abs_diff(slide_total) as f64 / slide_total as f64;
    println!(
        "\nper-slide breakdown: stages {} / slide {} ({:.1}% deviation)",
        fmt_ns(child_total as f64),
        fmt_ns(slide_total as f64),
        deviation * 100.0,
    );
    if deviation > 0.10 {
        eprintln!(
            "fig_telemetry: per-slide stage breakdown deviates {:.1}% from the slide total \
             (limit 10%)",
            deviation * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("stage breakdown reconciles within 10%");
        ExitCode::SUCCESS
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
