//! `crash_resume`: the kill-and-resume acceptance harness, runnable end to
//! end as a CI smoke.
//!
//! Three checks, each fatal on failure:
//!
//! 1. **Checkpoint/resume** — a faulted streaming run (node deaths, rejoins,
//!    duty-cycled radios, partitioned backend) is killed by an injected
//!    crash right after a mid-run checkpoint, then resumed from the on-disk
//!    snapshot; the resumed [`StreamingOutcome`] must equal the run that was
//!    never stopped, field for field.
//! 2. **Journaled sweep** — a seed sweep is journaled to JSONL, then re-run
//!    against the same journal; the second pass must skip every completed
//!    cell and reproduce the identical averaged outcome, which must in turn
//!    be bit-identical to the live (non-journaled) sweep path.
//! 3. **Artifact** — the journal is left behind (default
//!    `target/crash_resume_journal.jsonl`, override with
//!    `WSN_CRASH_RESUME_OUT`) for `json_check` to validate downstream.
//!
//! The injected kill is a real panic through the `wsn_core::persist` crash
//! points — the same mechanism the `property_persist` suite sweeps over
//! every checkpoint boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use wsn_core::experiment::{AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_core::persist::{arm_crash_point, disarm_crash_points, CRASH_MARKER};
use wsn_core::streaming::{StreamingExperiment, StreamingOutcome};
use wsn_data::lab::LabDeployment;
use wsn_workload::FaultProfile;

/// Slides in the streaming run; checkpoints land every [`EVERY`] slides and
/// the kill strikes at the second one (slide 4 of 6).
const ROUNDS: usize = 6;
const EVERY: usize = 2;
const KILL_AT_CHECKPOINT: u32 = 2;

/// Churn plus duty-cycling, so the checkpoint carries presumed-dead
/// neighbour state, pending rejoins and sleeping radios across the kill.
const FAULTS: FaultProfile =
    FaultProfile { death_fraction: 0.25, rejoin_fraction: 0.5, duty_cycle: Some((2.0, 0.75)) };

fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::small()
        .with_algorithm(AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: 2 })
        .with_backend(wsn_netsim::region::SimBackend::Partitioned { regions: 2 });
    config.trace.rounds = ROUNDS;
    let deployment = LabDeployment::with_sensor_count(config.sensor_count, config.deployment_seed)
        .expect("deployment builds");
    let plan = FAULTS.instantiate(
        deployment.sensors(),
        config.trace.sample_interval_secs,
        config.trace.rounds,
        config.sim_seed,
    );
    let liveness = 2.0 * config.trace.sample_interval_secs;
    config.with_fault_plan(plan).with_liveness_timeout(liveness)
}

/// Runs the checkpointing experiment until the armed crash point kills it,
/// verifying the panic really came from the injection harness.
fn kill_mid_run(config: &ExperimentConfig, dir: &std::path::Path) {
    arm_crash_point("persist.after_checkpoint", KILL_AT_CHECKPOINT);
    // The injected panic is expected; keep its backtrace out of the log.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let killed: Result<StreamingOutcome, _> = catch_unwind(AssertUnwindSafe(|| {
        StreamingExperiment::new(config.clone())
            .checkpoint_every_slides(EVERY, dir)
            .run()
            .expect("checkpointed run failed before the injected kill")
    }));
    std::panic::set_hook(default_hook);
    disarm_crash_points();
    let payload = killed.expect_err("the armed crash point must kill the run");
    let message = payload.downcast::<String>().expect("crash panics carry a String");
    assert!(message.contains(CRASH_MARKER), "unexpected panic: {message:?}");
}

fn main() -> ExitCode {
    let config = config();

    println!(
        "crash_resume: streaming {} sensors, semi-global NN d=2, {ROUNDS} slides, \
         faulted + partitioned...",
        config.sensor_count
    );
    let baseline =
        StreamingExperiment::new(config.clone()).run().expect("uninterrupted run failed");

    let dir = std::env::temp_dir().join(format!("crash_resume_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    kill_mid_run(&config, &dir);
    println!(
        "killed by injected crash at checkpoint {KILL_AT_CHECKPOINT} (slide {})",
        KILL_AT_CHECKPOINT as usize * EVERY
    );

    let resumed = StreamingExperiment::new(config.clone())
        .resume_from(&dir)
        .run()
        .expect("resume from the checkpoint failed");
    let _ = std::fs::remove_dir_all(&dir);
    if resumed != baseline {
        eprintln!("crash_resume: resumed outcome diverges from the uninterrupted run");
        return ExitCode::FAILURE;
    }
    println!(
        "resume == never-stopped: {} slides, {} packets, quiescent={}",
        resumed.slides.len(),
        resumed.final_stats.total_packets_sent(),
        resumed.quiescent_tail,
    );

    // The journaled sweep: run, re-run (all cells skipped), and cross-check
    // against the live path.
    let journal_path = std::env::var("WSN_CRASH_RESUME_OUT")
        .unwrap_or_else(|_| "target/crash_resume_journal.jsonl".into());
    let _ = std::fs::remove_file(&journal_path);
    let mut sweep_config = ExperimentConfig::small();
    sweep_config.trace.rounds = 2;
    let seeds = 3u64;

    let mut journal = wsn_bench::SweepJournal::open(&journal_path).expect("sweep journal opens");
    let first = journal.run_averaged(&sweep_config, seeds).expect("journaled sweep runs");
    let rows_after_first = journal.rows().len();

    let mut reopened = wsn_bench::SweepJournal::open(&journal_path).expect("journal reopens");
    let second = reopened.run_averaged(&sweep_config, seeds).expect("journaled re-run runs");
    if reopened.rows().len() != rows_after_first {
        eprintln!(
            "crash_resume: the re-run appended rows ({} -> {}) instead of skipping",
            rows_after_first,
            reopened.rows().len()
        );
        return ExitCode::FAILURE;
    }
    if second != first {
        eprintln!("crash_resume: the journaled re-run does not reproduce the first sweep");
        return ExitCode::FAILURE;
    }
    let live = wsn_bench::run_averaged(&sweep_config, seeds).expect("live sweep runs");
    if first != live {
        eprintln!("crash_resume: the journaled aggregate diverges from the live sweep path");
        return ExitCode::FAILURE;
    }
    println!(
        "journaled sweep: {rows_after_first} rows, re-run skipped all cells, \
         aggregate == live sweep"
    );
    println!("journal -> {journal_path}");
    ExitCode::SUCCESS
}
