//! Shared driver used by every figure-reproduction binary.
//!
//! A figure binary is a one-liner around [`window_sweep_report`] or
//! [`n_sweep_report`] followed by [`emit`]: run every (algorithm, swept
//! value) pair of the figure, averaged over the scenario's seeds, collect the
//! rows, print the table, and persist the JSON next to it under `results/`.
//!
//! Both sweeps submit **every** `(algorithm, swept value, seed)` cell to the
//! shared worker pool ([`crate::pool::global`]) before collecting the first
//! result, so the whole grid shards across the machine at a bounded
//! concurrency; the rows are still collected (and printed) in sweep order,
//! which keeps the emitted report deterministic.
//!
//! Error semantics: configurations are validated cheaply up front (so a
//! typo'd sweep fails before any simulation starts), but a cell that fails
//! *at run time* only surfaces when its turn comes in collection order —
//! and cells already submitted behind it still run to completion on the
//! shared pool after the error is returned. The figure binaries `expect()`
//! the report and exit, so this only matters to library callers that keep
//! the process alive.

use std::path::PathBuf;

use crate::paper::PaperScenario;
use crate::report::{FigureReport, SeriesRow};
use crate::sweep::{submit_averaged, PendingAverage};
use crate::{pool, AveragedOutcome};
use wsn_core::experiment::AlgorithmConfig;
use wsn_core::CoreError;

/// How a report should be rendered by [`emit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableStyle {
    /// The per-round TX/RX energy tables of Figures 4, 7, 8 and 9.
    Energy,
    /// The min/avg/max per-node energy table of Figure 5.
    Range,
    /// The normalised energy spread of Figure 6.
    Normalized,
}

/// Runs a sliding-window sweep (Figures 4–8): every algorithm at every `w` of
/// the scenario, with `n` held fixed.
///
/// # Errors
///
/// Propagates the first experiment error encountered.
pub fn window_sweep_report(
    scenario: PaperScenario,
    figure: &str,
    configuration: &str,
    algorithms: &[AlgorithmConfig],
    n: usize,
) -> Result<FigureReport, CoreError> {
    let mut report = FigureReport::new(figure, configuration, "w");
    let grid = sweep_grid(&scenario, &scenario.window_sweep(), algorithms, |algorithm, w| {
        scenario.config(algorithm, w, n)
    })?;
    for (w, pending) in grid {
        let outcome = pending.collect()?;
        log_outcome(figure, "w", w, &outcome);
        report.push(SeriesRow::from_outcome(w as f64, &outcome));
    }
    Ok(report)
}

/// Runs an outlier-count sweep (Figure 9): every algorithm at every `n` of
/// the scenario, with `w` held fixed.
///
/// # Errors
///
/// Propagates the first experiment error encountered.
pub fn n_sweep_report(
    scenario: PaperScenario,
    figure: &str,
    configuration: &str,
    algorithms: &[AlgorithmConfig],
    w: u64,
) -> Result<FigureReport, CoreError> {
    let mut report = FigureReport::new(figure, configuration, "n");
    let grid = sweep_grid(&scenario, &scenario.n_sweep(), algorithms, |algorithm, n| {
        scenario.config(algorithm, w, n)
    })?;
    for (n, pending) in grid {
        let outcome = pending.collect()?;
        log_outcome(figure, "n", n, &outcome);
        report.push(SeriesRow::from_outcome(n as f64, &outcome));
    }
    Ok(report)
}

/// Submits every `(swept value, algorithm)` cell of a sweep to the shared
/// pool up front, returning the pending cells in sweep order. Every
/// configuration is validated before the first cell is submitted, so an
/// invalid sweep fails without queuing any simulation.
fn sweep_grid<V: Copy + std::fmt::Display>(
    scenario: &PaperScenario,
    values: &[V],
    algorithms: &[AlgorithmConfig],
    config_for: impl Fn(AlgorithmConfig, V) -> wsn_core::experiment::ExperimentConfig,
) -> Result<Vec<(V, PendingAverage)>, CoreError> {
    let pool = pool::global();
    let mut configs: Vec<(V, wsn_core::experiment::ExperimentConfig)> =
        Vec::with_capacity(values.len() * algorithms.len());
    for &value in values {
        for &algorithm in algorithms {
            let config = config_for(algorithm, value);
            config.validate()?;
            configs.push((value, config));
        }
    }
    Ok(configs
        .into_iter()
        .map(|(value, config)| (value, submit_averaged(pool, &config, scenario.seeds())))
        .collect())
}

fn log_outcome(figure: &str, axis: &str, value: impl std::fmt::Display, out: &AveragedOutcome) {
    eprintln!(
        "  [{figure}] {} {axis}={value}: tx/round={:.4} J rx/round={:.4} J accuracy={:.3}",
        out.label, out.avg_tx_per_node_per_round, out.avg_rx_per_node_per_round, out.accuracy
    );
}

/// Prints the report in the requested style and writes its JSON form to
/// `results/<stem>.json` (best effort — a read-only filesystem only loses the
/// JSON copy, not the printed table).
pub fn emit(report: &FigureReport, stem: &str, style: TableStyle) {
    let table = match style {
        TableStyle::Energy => report.to_table(),
        TableStyle::Range => report.to_range_table(),
        TableStyle::Normalized => report.to_normalized_table(),
    };
    println!("{table}");
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{stem}.json"));
        match report.write_json(&path) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{centralized, global_nn};
    use crate::sweep::run_averaged;

    /// A miniature end-to-end sweep: one window value, two algorithms, a
    /// scenario shrunk far below even `Quick` so the test stays fast.
    #[test]
    fn window_sweep_produces_one_row_per_algorithm_and_value() {
        let scenario = PaperScenario::Quick;
        // Shrink further: only the smallest window value, by slicing the
        // sweep down through a custom loop.
        let mut report = FigureReport::new("test", "cfg", "w");
        let algorithms = [global_nn(), centralized()];
        let w = 10;
        for &algorithm in &algorithms {
            let mut config = scenario.config(algorithm, w, 2);
            config.sensor_count = 9;
            config.transmission_range_m = 20.0;
            config.trace.rounds = 4;
            let outcome = run_averaged(&config, 1).unwrap();
            report.push(SeriesRow::from_outcome(w as f64, &outcome));
        }
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.labels(), vec!["Global-NN", "Centralized"]);
        assert!(report.to_table().contains("Global-NN"));
        assert!(report.to_range_table().contains("Maximum total energy"));
        assert!(report.to_normalized_table().contains("w = 10"));
    }
}
