//! Plain-text tables and JSON output for the figure-reproduction binaries.
//!
//! Each figure binary produces a [`FigureReport`]: one row per swept
//! parameter value and algorithm, carrying the metrics the paper plots. The
//! report prints as an aligned text table (the "series" of the original
//! figures) and can be written as JSON next to the human-readable output so
//! EXPERIMENTS.md can be regenerated mechanically.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::{JsonError, JsonValue};
use crate::sweep::AveragedOutcome;

/// One data point of a figure: a swept parameter value, an algorithm label,
/// and the measured metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// The swept parameter ("w" or "n") value of this row.
    pub x: f64,
    /// The algorithm label ("Centralized", "Global-NN", …).
    pub label: String,
    /// Average TX energy per node per sampling round (J).
    pub avg_tx_per_round: f64,
    /// Average RX energy per node per sampling round (J).
    pub avg_rx_per_round: f64,
    /// Minimum total energy consumed by any node over the run (J).
    pub min_total_energy: f64,
    /// Average total energy consumed by a node over the run (J).
    pub avg_total_energy: f64,
    /// Maximum total energy consumed by any node over the run (J).
    pub max_total_energy: f64,
    /// Detection accuracy (fraction of nodes exactly correct).
    pub accuracy: f64,
    /// Mean per-node recall of the true outliers.
    pub mean_recall: f64,
    /// Max-over-average radio-activity imbalance (§8).
    pub traffic_imbalance: f64,
    /// Protocol data points broadcast (distributed algorithms only).
    pub data_points_sent: f64,
}

impl SeriesRow {
    /// Builds a row from an averaged outcome at sweep position `x`.
    pub fn from_outcome(x: f64, outcome: &AveragedOutcome) -> Self {
        SeriesRow {
            x,
            label: outcome.label.clone(),
            avg_tx_per_round: outcome.avg_tx_per_node_per_round,
            avg_rx_per_round: outcome.avg_rx_per_node_per_round,
            min_total_energy: outcome.total_energy.min,
            avg_total_energy: outcome.total_energy.avg,
            max_total_energy: outcome.total_energy.max,
            accuracy: outcome.accuracy,
            mean_recall: outcome.mean_recall,
            traffic_imbalance: outcome.avg_traffic_imbalance,
            data_points_sent: outcome.avg_data_points_sent,
        }
    }
}

/// A reproduced figure: its identity, the swept parameter, and its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Which figure of the paper this reproduces ("Figure 4", …).
    pub figure: String,
    /// Free-text description of the configuration (fixed parameters).
    pub configuration: String,
    /// Name of the swept parameter ("w", "n").
    pub x_name: String,
    /// The measured rows, grouped by series label in sweep order.
    pub rows: Vec<SeriesRow>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        figure: impl Into<String>,
        configuration: impl Into<String>,
        x_name: impl Into<String>,
    ) -> Self {
        FigureReport {
            figure: figure.into(),
            configuration: configuration.into(),
            x_name: x_name.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a data point.
    pub fn push(&mut self, row: SeriesRow) {
        self.rows.push(row);
    }

    /// The distinct series labels, in first-appearance order.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for row in &self.rows {
            if !labels.contains(&row.label) {
                labels.push(row.label.clone());
            }
        }
        labels
    }

    /// The rows of one series, in sweep order.
    pub fn series(&self, label: &str) -> Vec<&SeriesRow> {
        self.rows.iter().filter(|r| r.label == label).collect()
    }

    /// Renders the energy table the paper plots: one block per metric, one
    /// line per series, one column per swept value.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.figure);
        let _ = writeln!(out, "{}", self.configuration);
        let metrics: [MetricColumn; 5] = [
            ("Avg TX energy per node per round (J)", |r| r.avg_tx_per_round),
            ("Avg RX energy per node per round (J)", |r| r.avg_rx_per_round),
            ("Avg total energy per node (J)", |r| r.avg_total_energy),
            ("Detection accuracy (exact O_n match)", |r| r.accuracy),
            ("Mean per-node outlier recall", |r| r.mean_recall),
        ];
        for (name, metric) in metrics {
            let _ = writeln!(out, "\n{name}");
            let mut header = format!("{:<26}", self.x_name);
            if let Some(first) = self.labels().first() {
                for row in self.series(first) {
                    let _ = write!(header, "{:>12}", format_x(row.x));
                }
            }
            let _ = writeln!(out, "{header}");
            for label in self.labels() {
                let mut line = format!("{label:<26}");
                for row in self.series(&label) {
                    let _ = write!(line, "{:>12}", format_value(metric(row)));
                }
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }

    /// Renders the min / average / maximum per-node total-energy table of
    /// Figure 5.
    pub fn to_range_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.figure);
        let _ = writeln!(out, "{}", self.configuration);
        let metrics: [MetricColumn; 3] = [
            ("Minimum total energy consumed by a node (J)", |r| r.min_total_energy),
            ("Average total energy consumed by a node (J)", |r| r.avg_total_energy),
            ("Maximum total energy consumed by a node (J)", |r| r.max_total_energy),
        ];
        for (name, metric) in metrics {
            let _ = writeln!(out, "\n{name}");
            let mut header = format!("{:<26}", self.x_name);
            if let Some(first) = self.labels().first() {
                for row in self.series(first) {
                    let _ = write!(header, "{:>12}", format_x(row.x));
                }
            }
            let _ = writeln!(out, "{header}");
            for label in self.labels() {
                let mut line = format!("{label:<26}");
                for row in self.series(&label) {
                    let _ = write!(line, "{:>12}", format_value(metric(row)));
                }
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }

    /// Renders the normalised (divided by the per-series average) energy
    /// spread of Figure 6, one block per swept value.
    pub fn to_normalized_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.figure);
        let _ = writeln!(out, "{}", self.configuration);
        let xs: Vec<f64> = {
            let mut xs: Vec<f64> = self.rows.iter().map(|r| r.x).collect();
            xs.dedup();
            xs
        };
        for x in xs {
            let _ = writeln!(out, "\n{} = {}", self.x_name, format_x(x));
            let _ = writeln!(out, "{:<26}{:>12}{:>12}{:>12}", "algorithm", "min", "avg", "max");
            for label in self.labels() {
                if let Some(row) =
                    self.rows.iter().find(|r| r.label == label && (r.x - x).abs() < 1e-9)
                {
                    let avg = row.avg_total_energy;
                    let (min_n, max_n) = if avg == 0.0 {
                        (0.0, 0.0)
                    } else {
                        (row.min_total_energy / avg, row.max_total_energy / avg)
                    };
                    let _ = writeln!(
                        out,
                        "{label:<26}{:>12}{:>12}{:>12}",
                        format_value(min_n),
                        format_value(1.0),
                        format_value(max_n)
                    );
                }
            }
        }
        out
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let rows = self.rows.iter().map(SeriesRow::to_json_value).collect();
        JsonValue::object([
            ("figure", JsonValue::from(self.figure.clone())),
            ("configuration", JsonValue::from(self.configuration.clone())),
            ("x_name", JsonValue::from(self.x_name.clone())),
            ("rows", JsonValue::Array(rows)),
        ])
        .to_pretty_string()
    }

    /// Parses a report previously produced by [`FigureReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON or a document that does not
    /// have the report's shape.
    pub fn from_json(text: &str) -> Result<FigureReport, JsonError> {
        let value = JsonValue::parse(text)?;
        let field = |key: &str| -> Result<String, JsonError> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| shape_error(format!("missing string field {key:?}")))
        };
        let rows = value
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| shape_error("missing array field \"rows\""))?
            .iter()
            .map(SeriesRow::from_json_value)
            .collect::<Result<Vec<SeriesRow>, JsonError>>()?;
        Ok(FigureReport {
            figure: field("figure")?,
            configuration: field("configuration")?,
            x_name: field("x_name")?,
            rows,
        })
    }

    /// Writes the JSON form of the report to `path` (for EXPERIMENTS.md and
    /// regression comparisons).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from writing the file.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn shape_error(message: impl Into<String>) -> JsonError {
    JsonError { offset: 0, message: message.into() }
}

/// A named metric column: its table heading and its row accessor.
type MetricColumn = (&'static str, fn(&SeriesRow) -> f64);

impl SeriesRow {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("x", JsonValue::from(self.x)),
            ("label", JsonValue::from(self.label.clone())),
            ("avg_tx_per_round", JsonValue::from(self.avg_tx_per_round)),
            ("avg_rx_per_round", JsonValue::from(self.avg_rx_per_round)),
            ("min_total_energy", JsonValue::from(self.min_total_energy)),
            ("avg_total_energy", JsonValue::from(self.avg_total_energy)),
            ("max_total_energy", JsonValue::from(self.max_total_energy)),
            ("accuracy", JsonValue::from(self.accuracy)),
            ("mean_recall", JsonValue::from(self.mean_recall)),
            ("traffic_imbalance", JsonValue::from(self.traffic_imbalance)),
            ("data_points_sent", JsonValue::from(self.data_points_sent)),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<SeriesRow, JsonError> {
        let num = |key: &str| -> Result<f64, JsonError> {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| shape_error(format!("missing numeric field {key:?}")))
        };
        Ok(SeriesRow {
            x: num("x")?,
            label: value
                .get("label")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| shape_error("missing string field \"label\""))?,
            avg_tx_per_round: num("avg_tx_per_round")?,
            avg_rx_per_round: num("avg_rx_per_round")?,
            min_total_energy: num("min_total_energy")?,
            avg_total_energy: num("avg_total_energy")?,
            max_total_energy: num("max_total_energy")?,
            accuracy: num("accuracy")?,
            mean_recall: num("mean_recall")?,
            traffic_imbalance: num("traffic_imbalance")?,
            data_points_sent: num("data_points_sent")?,
        })
    }
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(x: f64, label: &str, tx: f64) -> SeriesRow {
        SeriesRow {
            x,
            label: label.to_string(),
            avg_tx_per_round: tx,
            avg_rx_per_round: tx * 2.0,
            min_total_energy: 0.1,
            avg_total_energy: 0.5,
            max_total_energy: 1.0,
            accuracy: 0.99,
            mean_recall: 0.995,
            traffic_imbalance: 2.0,
            data_points_sent: 10.0,
        }
    }

    #[test]
    fn labels_and_series_group_rows() {
        let mut report = FigureReport::new("Figure 4", "n=4, k=4", "w");
        report.push(row(10.0, "Centralized", 1.0));
        report.push(row(10.0, "Global-NN", 0.1));
        report.push(row(20.0, "Centralized", 2.0));
        report.push(row(20.0, "Global-NN", 0.05));
        assert_eq!(report.labels(), vec!["Centralized", "Global-NN"]);
        assert_eq!(report.series("Centralized").len(), 2);
        assert_eq!(report.series("Global-NN")[1].x, 20.0);
        assert!(report.series("Nope").is_empty());
    }

    #[test]
    fn table_contains_every_series_and_value() {
        let mut report = FigureReport::new("Figure 4", "n=4, k=4", "w");
        report.push(row(10.0, "Centralized", 1.5));
        report.push(row(40.0, "Centralized", 3.25));
        let table = report.to_table();
        assert!(table.contains("Figure 4"));
        assert!(table.contains("Centralized"));
        assert!(table.contains("1.5000"));
        assert!(table.contains("3.2500"));
        assert!(table.contains("Avg RX energy"));
    }

    #[test]
    fn json_round_trips() {
        let mut report = FigureReport::new("Figure 9", "w=20, k=4", "n");
        report.push(row(1.0, "Semi-global, epsilon=1", 0.01));
        report.push(row(4.0, "Global-NN \"quoted\"", 1.0 / 3.0));
        let json = report.to_json();
        let back = FigureReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_report_json_is_rejected() {
        assert!(FigureReport::from_json("not json").is_err());
        assert!(FigureReport::from_json("{\"figure\": \"F\"}").is_err());
        let missing_metric =
            "{\"figure\":\"F\",\"configuration\":\"c\",\"x_name\":\"w\",\"rows\":[{\"x\":1}]}";
        assert!(FigureReport::from_json(missing_metric).is_err());
    }

    #[test]
    fn value_formatting_keeps_magnitudes_readable() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(123.456), "123.5");
        assert_eq!(format_value(0.1234), "0.1234");
        assert!(format_value(0.000123).contains('e'));
        assert_eq!(format_x(10.0), "10");
        assert_eq!(format_x(2.5), "2.50");
    }
}
