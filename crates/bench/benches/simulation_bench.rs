//! Criterion end-to-end simulation benchmarks: one reduced data point per
//! figure of the evaluation, so `cargo bench` exercises every figure's code
//! path (workload generation, simulation, energy accounting, metrics) and
//! tracks its wall-clock cost over time. The full-scale sweeps that print the
//! actual figures live in the `fig*` binaries of this crate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wsn_core::experiment::{run_experiment, AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_data::synth::SyntheticTraceConfig;

/// A reduced experiment: 12 sensors, 5 rounds, widened radio range so the
/// sparse layout stays connected. Small enough for Criterion, large enough to
/// exercise multi-hop behaviour.
fn reduced(algorithm: AlgorithmConfig, w: u64, n: usize) -> ExperimentConfig {
    ExperimentConfig {
        sensor_count: 12,
        trace: SyntheticTraceConfig { rounds: 5, ..Default::default() },
        window_samples: w,
        n,
        transmission_range_m: 18.0,
        ..Default::default()
    }
    .with_algorithm(algorithm)
}

fn bench_fig4_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_global_vs_centralized");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    let configs = [
        ("centralized", AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }),
        ("global_nn", AlgorithmConfig::Global { ranking: RankingChoice::Nn }),
        ("global_knn", AlgorithmConfig::Global { ranking: RankingChoice::KnnAverage { k: 4 } }),
    ];
    for (name, algorithm) in configs {
        let config = reduced(algorithm, 10, 4);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run_experiment(config).expect("benchmark experiment failed"))
        });
    }
    group.finish();
}

fn bench_fig5_window_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_window_scaling_global_nn");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    for &w in &[10u64, 20, 40] {
        let config = reduced(AlgorithmConfig::Global { ranking: RankingChoice::Nn }, w, 4);
        group.bench_with_input(BenchmarkId::from_parameter(w), &config, |b, config| {
            b.iter(|| run_experiment(config).expect("benchmark experiment failed"))
        });
    }
    group.finish();
}

fn bench_fig7_8_semiglobal_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_semiglobal_epsilon");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    for &epsilon in &[1u16, 2, 3] {
        let nn = reduced(
            AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: epsilon },
            10,
            4,
        );
        group.bench_with_input(BenchmarkId::new("nn", epsilon), &nn, |b, config| {
            b.iter(|| run_experiment(config).expect("benchmark experiment failed"))
        });
        let knn = reduced(
            AlgorithmConfig::SemiGlobal {
                ranking: RankingChoice::KnnAverage { k: 4 },
                hop_diameter: epsilon,
            },
            10,
            4,
        );
        group.bench_with_input(BenchmarkId::new("knn4", epsilon), &knn, |b, config| {
            b.iter(|| run_experiment(config).expect("benchmark experiment failed"))
        });
    }
    group.finish();
}

fn bench_fig9_n_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_n_scaling_semiglobal_knn");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    for &n in &[1usize, 4, 8] {
        let config = reduced(
            AlgorithmConfig::SemiGlobal {
                ranking: RankingChoice::KnnAverage { k: 4 },
                hop_diameter: 2,
            },
            20,
            n,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| run_experiment(config).expect("benchmark experiment failed"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_point,
    bench_fig5_window_scaling,
    bench_fig7_8_semiglobal_epsilon,
    bench_fig9_n_scaling
);
criterion_main!(benches);
