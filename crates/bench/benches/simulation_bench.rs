//! End-to-end simulation benchmarks: one reduced data point per figure of
//! the evaluation, so `cargo bench` exercises every figure's code path
//! (workload generation, simulation, energy accounting, metrics) and tracks
//! its wall-clock cost over time. The full-scale sweeps that print the actual
//! figures live in the `fig*` binaries of this crate. Runs on the std-only
//! harness in `wsn_bench::harness` and writes `BENCH_simulation_bench.json`.
//!
//! Besides the per-figure groups, the `scaling` group runs full-size
//! deployments — the paper's 53 sensors and a 200-sensor stretch of the same
//! lab terrain — through short end-to-end experiments: the centralized
//! baseline at both sizes (the netsim event loop, AODV routing funnel and
//! the sink's incrementally maintained union are the hot paths there), plus
//! one 53-sensor run of the distributed Global-NN detector, the cost that
//! dominates the full figure sweeps. The `scaling/partitioned/*` entries pit
//! the spatially partitioned parallel backend against the sequential oracle
//! on constant-density city deployments up to 10 000 sensors.

use std::hint::black_box;

use wsn_bench::harness::Harness;
use wsn_core::experiment::{run_experiment, AlgorithmConfig, ExperimentConfig, RankingChoice};
use wsn_core::streaming::StreamingExperiment;
use wsn_data::lab::LabDeployment;
use wsn_data::synth::SyntheticTraceConfig;
use wsn_netsim::region::SimBackend;
use wsn_workload::Scenario;

/// A reduced experiment: 12 sensors, 5 rounds, widened radio range so the
/// sparse layout stays connected. Small enough for a quick bench run, large
/// enough to exercise multi-hop behaviour.
fn reduced(algorithm: AlgorithmConfig, w: u64, n: usize) -> ExperimentConfig {
    ExperimentConfig {
        sensor_count: 12,
        trace: SyntheticTraceConfig { rounds: 5, ..Default::default() },
        window_samples: w,
        n,
        transmission_range_m: 18.0,
        ..Default::default()
    }
    .with_algorithm(algorithm)
}

fn bench_fig4_point(h: &mut Harness) {
    let configs = [
        ("centralized", AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }),
        ("global_nn", AlgorithmConfig::Global { ranking: RankingChoice::Nn }),
        ("global_knn", AlgorithmConfig::Global { ranking: RankingChoice::KnnAverage { k: 4 } }),
    ];
    for (name, algorithm) in configs {
        let config = reduced(algorithm, 10, 4);
        h.bench("fig4_global_vs_centralized", name, || {
            black_box(run_experiment(black_box(&config)).expect("benchmark experiment failed"));
        });
    }
}

fn bench_fig5_window_scaling(h: &mut Harness) {
    for &w in &[10u64, 20, 40] {
        let config = reduced(AlgorithmConfig::Global { ranking: RankingChoice::Nn }, w, 4);
        h.bench("fig5_window_scaling_global_nn", &w.to_string(), || {
            black_box(run_experiment(black_box(&config)).expect("benchmark experiment failed"));
        });
    }
}

fn bench_fig7_8_semiglobal_epsilon(h: &mut Harness) {
    for &epsilon in &[1u16, 2, 3] {
        let nn = reduced(
            AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: epsilon },
            10,
            4,
        );
        h.bench("fig7_8_semiglobal_epsilon", &format!("nn/{epsilon}"), || {
            black_box(run_experiment(black_box(&nn)).expect("benchmark experiment failed"));
        });
        let knn = reduced(
            AlgorithmConfig::SemiGlobal {
                ranking: RankingChoice::KnnAverage { k: 4 },
                hop_diameter: epsilon,
            },
            10,
            4,
        );
        h.bench("fig7_8_semiglobal_epsilon", &format!("knn4/{epsilon}"), || {
            black_box(run_experiment(black_box(&knn)).expect("benchmark experiment failed"));
        });
    }
}

fn bench_fig9_n_scaling(h: &mut Harness) {
    for &n in &[1usize, 4, 8] {
        let config = reduced(
            AlgorithmConfig::SemiGlobal {
                ranking: RankingChoice::KnnAverage { k: 4 },
                hop_diameter: 2,
            },
            20,
            n,
        );
        h.bench("fig9_n_scaling_semiglobal_knn", &n.to_string(), || {
            black_box(run_experiment(black_box(&config)).expect("benchmark experiment failed"));
        });
    }
}

/// A full-size experiment on the paper's lab terrain at its 6.77 m radio
/// range: `count` sensors, a short trace so one iteration stays benchable.
fn full_scale(algorithm: AlgorithmConfig, count: usize, rounds: usize) -> ExperimentConfig {
    ExperimentConfig {
        sensor_count: count,
        trace: SyntheticTraceConfig { rounds, ..Default::default() },
        window_samples: 10,
        n: 4,
        ..Default::default()
    }
    .with_algorithm(algorithm)
}

fn bench_scaling(h: &mut Harness) {
    for &count in &[53usize, 200] {
        let config =
            full_scale(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }, count, 3);
        h.bench("scaling", &format!("centralized/{count}"), || {
            black_box(run_experiment(black_box(&config)).expect("benchmark experiment failed"));
        });
    }
    // The distributed detector at full scale: 53 sensors (the paper's
    // deployment) and the 200-sensor stretch, the regime where the
    // pre-incremental fixed point went super-linear.
    for &count in &[53usize, 200] {
        let config = full_scale(AlgorithmConfig::Global { ranking: RankingChoice::Nn }, count, 2);
        h.bench("scaling", &format!("global_nn/{count}"), || {
            black_box(run_experiment(black_box(&config)).expect("benchmark experiment failed"));
        });
    }
}

/// The spatially partitioned backend against the sequential oracle on
/// city-scale deployments: the constant-density city grid at 53, 200, 2 000
/// and 10 000 sensors, streaming the semi-global (ε = 1) detector for a
/// couple of rounds, once per backend. The two runs produce bit-identical
/// outcomes (enforced by `tests/property_partitioned_sim.rs`), so the pair
/// measures exactly the wall-clock effect of region parallelism.
fn bench_partitioned_scaling(h: &mut Harness) {
    for &(count, regions) in &[(53usize, 2usize), (200, 4), (2_000, 4), (10_000, 4)] {
        let deployment = LabDeployment::city(count, 1).expect("city deployment builds");
        let trace_config = SyntheticTraceConfig { rounds: 2, ..Default::default() };
        let trace = deployment.generate_trace(&trace_config, 7).expect("trace generates");
        let base = ExperimentConfig {
            sensor_count: count,
            window_samples: 10,
            n: 4,
            ..Default::default()
        }
        .with_algorithm(AlgorithmConfig::SemiGlobal {
            ranking: RankingChoice::Nn,
            hop_diameter: 1,
        });
        for (backend_name, backend) in
            [("seq", SimBackend::Sequential), ("par", SimBackend::Partitioned { regions })]
        {
            let experiment = StreamingExperiment::new(base.clone().with_backend(backend));
            h.bench("scaling", &format!("partitioned/{count}/{backend_name}"), || {
                black_box(
                    experiment
                        .run_on_trace(black_box(&trace))
                        .expect("benchmark streaming run failed"),
                );
            });
        }
    }
}

/// The streaming window-slide driver over workload scenarios: a reduced
/// 12-sensor deployment, one labelled scenario trace per taxonomy case of
/// interest, evaluated at every slide. This is the hot path of the
/// `fig_scenarios` sweep (per-slide ground truth + label grading on top of
/// the simulation itself).
fn bench_scenarios(h: &mut Harness) {
    let deployment = LabDeployment::with_sensor_count(12, 1).expect("deployment builds");
    let config = ExperimentConfig {
        sensor_count: 12,
        window_samples: 10,
        n: 4,
        transmission_range_m: 18.0,
        ..Default::default()
    }
    .with_algorithm(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
    let wanted = ["point_spikes", "correlated_burst", "adversarial_inside"];
    for scenario in Scenario::catalog(5) {
        if !wanted.contains(&scenario.name.as_str()) {
            continue;
        }
        // Seed 41 injects labels for every benched scenario at this scale.
        let trace = scenario.generate(deployment.sensors(), 41).expect("scenario generates");
        let experiment = StreamingExperiment::new(config.clone());
        h.bench("scenario", &scenario.name, || {
            black_box(
                experiment.run_on_trace(black_box(&trace)).expect("benchmark streaming run failed"),
            );
        });
    }
}

fn main() {
    let mut h = Harness::from_args("simulation_bench");
    bench_fig4_point(&mut h);
    bench_fig5_window_scaling(&mut h);
    bench_fig7_8_semiglobal_epsilon(&mut h);
    bench_fig9_n_scaling(&mut h);
    bench_scaling(&mut h);
    bench_partitioned_scaling(&mut h);
    bench_scenarios(&mut h);
    h.finish();
}
