//! Criterion micro-benchmarks of the pure-algorithm building blocks:
//! ranking, top-n selection, support sets, sufficient sets, and per-event
//! node processing. These are the per-event costs a real mote's CPU would
//! pay, independent of the radio.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wsn_core::detector::OutlierDetector;
use wsn_core::global::GlobalNode;
use wsn_core::semiglobal::SemiGlobalNode;
use wsn_core::sufficient::sufficient_set;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, Epoch, PointSet, SensorId, Timestamp};
use wsn_ranking::function::support_of_set;
use wsn_ranking::{top_n_outliers, KnnAverageDistance, NnDistance, RankingFunction};

/// Builds a clustered dataset of `size` points with a handful of outliers,
/// mimicking one sensor neighbourhood's [temperature, x, y] feature vectors.
fn dataset(size: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..size)
        .map(|i| {
            let outlier = i % 97 == 0;
            let temp = if outlier { 100.0 + rng.gen_range(0.0..10.0) } else { 21.0 + rng.gen_range(-1.0..1.0) };
            let x = rng.gen_range(0.0..50.0);
            let y = rng.gen_range(0.0..50.0);
            DataPoint::new(
                SensorId((i % 53) as u32),
                Epoch(i as u64),
                Timestamp::from_secs(i as u64),
                vec![temp, x, y],
            )
            .unwrap()
        })
        .collect()
}

fn bench_top_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_n_outliers");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for &size in &[64usize, 256, 1024] {
        let data = dataset(size, 1);
        group.bench_with_input(BenchmarkId::new("nn", size), &data, |b, data| {
            b.iter(|| top_n_outliers(&NnDistance, black_box(4), data))
        });
        group.bench_with_input(BenchmarkId::new("knn4", size), &data, |b, data| {
            b.iter(|| top_n_outliers(&KnnAverageDistance::new(4), black_box(4), data))
        });
    }
    group.finish();
}

fn bench_support_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_of_set");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for &size in &[64usize, 256, 1024] {
        let data = dataset(size, 2);
        let query = top_n_outliers(&NnDistance, 4, &data).to_point_set();
        group.bench_with_input(BenchmarkId::new("nn", size), &size, |b, _| {
            b.iter(|| support_of_set(&NnDistance, &data, &query))
        });
        group.bench_with_input(BenchmarkId::new("knn4", size), &size, |b, _| {
            b.iter(|| support_of_set(&KnnAverageDistance::new(4), &data, &query))
        });
    }
    group.finish();
}

fn bench_sufficient_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("sufficient_set");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for &size in &[64usize, 256, 1024] {
        let pi = dataset(size, 3);
        // The neighbour already shares roughly half of P_i.
        let known: PointSet = pi.iter().take(size / 2).cloned().collect();
        group.bench_with_input(BenchmarkId::new("nn_empty_known", size), &size, |b, _| {
            b.iter(|| sufficient_set(&NnDistance, 4, &pi, &PointSet::new()))
        });
        group.bench_with_input(BenchmarkId::new("nn_half_known", size), &size, |b, _| {
            b.iter(|| sufficient_set(&NnDistance, 4, &pi, &known))
        });
        group.bench_with_input(BenchmarkId::new("knn4_half_known", size), &size, |b, _| {
            b.iter(|| sufficient_set(&KnnAverageDistance::new(4), 4, &pi, &known))
        });
    }
    group.finish();
}

fn bench_ranking_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_single_point");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let data = dataset(512, 4);
    let x = data.iter().next().unwrap().clone();
    group.bench_function("nn", |b| b.iter(|| NnDistance.rank(black_box(&x), &data)));
    group.bench_function("knn4", |b| {
        b.iter(|| KnnAverageDistance::new(4).rank(black_box(&x), &data))
    });
    group.finish();
}

fn bench_node_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_process_event");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let window = WindowConfig::from_secs(1_000_000).unwrap();
    for &size in &[64usize, 256] {
        let points: Vec<DataPoint> = dataset(size, 5).to_vec();
        group.bench_with_input(BenchmarkId::new("global_nn", size), &size, |b, _| {
            b.iter_batched(
                || {
                    let mut node = GlobalNode::new(SensorId(0), NnDistance, 4, window);
                    node.add_local_points(points.clone());
                    node
                },
                |mut node| node.process(&[SensorId(1), SensorId(2), SensorId(3)]),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("semiglobal_nn_d2", size), &size, |b, _| {
            b.iter_batched(
                || {
                    let mut node = SemiGlobalNode::new(SensorId(0), NnDistance, 4, 2, window);
                    node.add_local_points(points.clone());
                    node
                },
                |mut node| node.process(&[SensorId(1), SensorId(2), SensorId(3)]),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_top_n,
    bench_support_sets,
    bench_sufficient_set,
    bench_ranking_functions,
    bench_node_processing
);
criterion_main!(benches);
