//! Micro-benchmarks of the pure-algorithm building blocks: ranking, top-n
//! selection, support sets, sufficient sets, and per-event node processing.
//! These are the per-event costs a real mote's CPU would pay, independent of
//! the radio. Runs on the std-only harness in `wsn_bench::harness` and writes
//! `BENCH_algo_microbench.json`.

use std::hint::black_box;

use wsn_bench::harness::Harness;
use wsn_core::detector::OutlierDetector;
use wsn_core::global::GlobalNode;
use wsn_core::semiglobal::SemiGlobalNode;
use wsn_core::sufficient::{
    sufficient_set, sufficient_set_indexed, sufficient_set_rebuild_reference, FixedPointEngine,
};
use wsn_data::rng::SeededRng;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, Epoch, PointSet, SensorId, Timestamp};
use wsn_ranking::function::support_of_set;
use wsn_ranking::index::{AnyIndex, IndexStrategy, NeighborIndex};
use wsn_ranking::{
    top_n_outliers, top_n_outliers_indexed, KnnAverageDistance, NnDistance, RankingFunction,
};

/// Builds a clustered dataset of `size` points with a handful of outliers,
/// mimicking one sensor neighbourhood's [temperature, x, y] feature vectors.
fn dataset(size: usize, seed: u64) -> PointSet {
    let mut rng = SeededRng::seed_from_u64(seed);
    (0..size)
        .map(|i| {
            let outlier = i % 97 == 0;
            let temp = if outlier {
                100.0 + rng.gen_range(0.0..10.0)
            } else {
                21.0 + rng.gen_range(-1.0..1.0)
            };
            let x = rng.gen_range(0.0..50.0);
            let y = rng.gen_range(0.0..50.0);
            DataPoint::new(
                SensorId((i % 53) as u32),
                Epoch(i as u64),
                Timestamp::from_secs(i as u64),
                vec![temp, x, y],
            )
            .unwrap()
        })
        .collect()
}

fn bench_top_n(h: &mut Harness) {
    for &size in &[64usize, 256, 1024] {
        let data = dataset(size, 1);
        h.bench("top_n_outliers", &format!("nn/{size}"), || {
            black_box(top_n_outliers(&NnDistance, black_box(4), &data));
        });
        h.bench("top_n_outliers", &format!("knn4/{size}"), || {
            black_box(top_n_outliers(&KnnAverageDistance::new(4), black_box(4), &data));
        });
    }
}

fn bench_support_sets(h: &mut Harness) {
    for &size in &[64usize, 256, 1024] {
        let data = dataset(size, 2);
        let query = top_n_outliers(&NnDistance, 4, &data).to_point_set();
        h.bench("support_of_set", &format!("nn/{size}"), || {
            black_box(support_of_set(&NnDistance, &data, &query));
        });
        h.bench("support_of_set", &format!("knn4/{size}"), || {
            black_box(support_of_set(&KnnAverageDistance::new(4), &data, &query));
        });
    }
}

fn bench_sufficient_set(h: &mut Harness) {
    for &size in &[64usize, 256, 1024] {
        let pi = dataset(size, 3);
        // The neighbour already shares roughly half of P_i.
        let known: PointSet = pi.iter().take(size / 2).cloned().collect();
        h.bench("sufficient_set", &format!("nn_empty_known/{size}"), || {
            black_box(sufficient_set(&NnDistance, 4, &pi, &PointSet::new()));
        });
        h.bench("sufficient_set", &format!("nn_half_known/{size}"), || {
            black_box(sufficient_set(&NnDistance, 4, &pi, &known));
        });
        h.bench("sufficient_set", &format!("knn4_half_known/{size}"), || {
            black_box(sufficient_set(&KnnAverageDistance::new(4), 4, &pi, &known));
        });
    }
}

/// Head-to-head comparison of the three index strategies on the hot-path
/// kernels, at the window sizes of the figure sweeps. `nn_brute` is the
/// pre-index baseline (the original per-query full sort); the auto strategy
/// used by the public entry points picks `kd` at these sizes.
fn bench_index_strategies(h: &mut Harness) {
    let strategies = [
        ("brute", IndexStrategy::Brute),
        ("grid", IndexStrategy::Grid),
        ("kd", IndexStrategy::KdTree),
    ];
    for &size in &[64usize, 256, 1024] {
        let pi = dataset(size, 6);
        for (label, strategy) in strategies {
            h.bench("index_build", &format!("{label}/{size}"), || {
                black_box(AnyIndex::build(strategy, &pi));
            });
            let index = AnyIndex::build(strategy, &pi);
            h.bench("index_knn_query", &format!("{label}/{size}"), || {
                for x in pi.iter().take(16) {
                    black_box(index.k_nearest(black_box(x), 4));
                }
            });
            h.bench("top_n_strategy", &format!("knn4_{label}/{size}"), || {
                black_box(top_n_outliers_indexed(&KnnAverageDistance::new(4), 4, &pi, &index));
            });
            h.bench("sufficient_set_strategy", &format!("nn_{label}/{size}"), || {
                black_box(sufficient_set_indexed(&NnDistance, 4, &pi, &index, &PointSet::new()));
            });
        }
    }
}

/// The equation (2) fixed point head-to-head: the incremental
/// [`FixedPointEngine`] (one dynamic index seeded per call, zero throwaway
/// builds) against the rebuild-per-iteration reference it replaced, at the
/// figure sweeps' window sizes and three shared-knowledge regimes — the
/// neighbour knows nothing, a quarter of `P_i`, or all of it (`|known| ∈
/// {0, w/4, w}`). `engine_cold` pays the per-revision seed/support caching
/// on every call; `engine_warm` reuses one engine at a fixed revision, the
/// way the detectors call it for every neighbour after the first.
fn bench_fixed_point(h: &mut Harness) {
    for &size in &[64usize, 256, 1024] {
        let pi = dataset(size, 7);
        let index = AnyIndex::build(IndexStrategy::Auto, &pi);
        for (label, count) in [("none", 0usize), ("quarter", size / 4), ("all", size)] {
            let known: PointSet = pi.iter().take(count).cloned().collect();
            h.bench("fixed_point", &format!("reference_nn_{label}/{size}"), || {
                black_box(sufficient_set_rebuild_reference(
                    &NnDistance,
                    4,
                    &pi,
                    &index,
                    black_box(&known),
                ));
            });
            h.bench("fixed_point", &format!("engine_cold_nn_{label}/{size}"), || {
                let mut engine = FixedPointEngine::new();
                black_box(engine.sufficient_set(
                    &NnDistance,
                    4,
                    &pi,
                    Some(&index),
                    SensorId(1),
                    black_box(&known),
                    (0, 0),
                ));
            });
            let mut warm = FixedPointEngine::new();
            h.bench("fixed_point", &format!("engine_warm_nn_{label}/{size}"), || {
                black_box(warm.sufficient_set(
                    &NnDistance,
                    4,
                    &pi,
                    Some(&index),
                    SensorId(1),
                    black_box(&known),
                    (0, 0),
                ));
            });
        }
    }
}

fn bench_ranking_functions(h: &mut Harness) {
    let data = dataset(512, 4);
    let x = data.iter().next().unwrap().clone();
    h.bench("rank_single_point", "nn", || {
        black_box(NnDistance.rank(black_box(&x), &data));
    });
    h.bench("rank_single_point", "knn4", || {
        black_box(KnnAverageDistance::new(4).rank(black_box(&x), &data));
    });
}

fn bench_node_processing(h: &mut Harness) {
    let window = WindowConfig::from_secs(1_000_000).unwrap();
    for &size in &[64usize, 256] {
        let points: Vec<DataPoint> = dataset(size, 5).to_vec();
        h.bench_with_setup(
            "node_process_event",
            &format!("global_nn/{size}"),
            || {
                let mut node = GlobalNode::new(SensorId(0), NnDistance, 4, window);
                node.add_local_points(points.clone());
                node
            },
            |mut node| {
                black_box(node.process(&[SensorId(1), SensorId(2), SensorId(3)]));
            },
        );
        h.bench_with_setup(
            "node_process_event",
            &format!("semiglobal_nn_d2/{size}"),
            || {
                let mut node = SemiGlobalNode::new(SensorId(0), NnDistance, 4, 2, window);
                node.add_local_points(points.clone());
                node
            },
            |mut node| {
                black_box(node.process(&[SensorId(1), SensorId(2), SensorId(3)]));
            },
        );
    }
}

fn main() {
    let mut h = Harness::from_args("algo_microbench");
    bench_top_n(&mut h);
    bench_support_sets(&mut h);
    bench_sufficient_set(&mut h);
    bench_index_strategies(&mut h);
    bench_fixed_point(&mut h);
    bench_ranking_functions(&mut h);
    bench_node_processing(&mut h);
    h.finish();
}
