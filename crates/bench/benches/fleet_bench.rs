//! The `fleet` bench group: steady-state throughput of the multi-tenant
//! detection service ([`wsn_fleet::DetectorFleet`]) on the shared worker
//! pool.
//!
//! Each iteration of an `epoch_step/*` case ingests one epoch's readings for
//! every tenant and executes one fleet step — `tenants` tenant-slides per
//! iteration — so tenant-slides/sec is `tenants / (median_ns × 1e-9)`. The
//! checkpointed variant snapshots **every tenant on every epoch**
//! (`checkpoint_every_epochs(1, ..)`), the worst-case persistence overhead;
//! `fig_fleet` reports the same metric at the paper-repro cadence (every 4).
//! Runs on the std-only harness and writes `BENCH_fleet.json`.

use wsn_bench::fleetload;
use wsn_bench::harness::Harness;
use wsn_fleet::DetectorFleet;

/// One steady-state case: a pre-populated fleet advanced one epoch per
/// iteration. The fleet persists across iterations, so windows fill and the
/// measured cost is the serving-path steady state, not cold-start.
fn bench_epoch_step(h: &mut Harness, tenants: u64, checkpoint_dir: Option<std::path::PathBuf>) {
    let mut fleet = DetectorFleet::new(fleetload::SHARDS);
    fleetload::populate(&mut fleet, tenants);
    let name = match &checkpoint_dir {
        Some(dir) => {
            fleet.checkpoint_every_epochs(1, dir);
            format!("{tenants}_tenants_ckpt_on")
        }
        None => format!("{tenants}_tenants_ckpt_off"),
    };
    let mut epoch = 0u64;
    h.bench("fleet", &format!("epoch_step/{name}"), move || {
        let slides = fleetload::run_epoch(&mut fleet, tenants, epoch);
        assert_eq!(slides, tenants, "every tenant slides exactly once per epoch");
        epoch += 1;
    });
}

fn main() {
    let mut h = Harness::from_args("fleet");
    let dir = std::env::temp_dir().join(format!("fleet_bench_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    bench_epoch_step(&mut h, 100, None);
    bench_epoch_step(&mut h, 1000, None);
    bench_epoch_step(&mut h, 1000, Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    h.finish();
}
