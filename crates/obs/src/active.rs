//! The real telemetry machinery, compiled only with the `telemetry` feature.
//!
//! Everything is gated at runtime by one process-wide [`AtomicBool`]: a
//! disabled metric touch is a relaxed load plus a predictable branch, and a
//! disabled [`span`] returns an inert guard without reading the clock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{HistogramSnapshot, SpanStat, TelemetryReport};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry currently recording?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// What a metric static registers itself as.
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Every metric that has ever been touched while enabled. Metrics lazily
/// self-register on first touch, so there is no central list to maintain.
static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Add `n`; a no-op unless telemetry is enabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            register(self.name, &self.registered, MetricRef::Counter(self));
        }
    }

    /// Current value (0 until first enabled touch).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value (stored as bits in an atomic).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, bits: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Set the value; a no-op unless telemetry is enabled.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            register(self.name, &self.registered, MetricRef::Gauge(self));
        }
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

const BUCKETS: usize = 64;

/// A fixed power-of-two-bucket histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, counts). Bucket `i` holds values whose bit
/// length is `i`, i.e. `v == 0` lands in bucket 0 and otherwise
/// `2^(i-1) <= v < 2^i`; the top bucket absorbs everything else.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        // An array-repeat of a const item is the pre-1.79 way to initialise
        // an array of non-Copy atomics in a const fn. The interior
        // mutability is the point: each array slot gets its own fresh
        // atomic, the named const itself is never shared.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample; a no-op unless telemetry is enabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = (u64::BITS - v.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            register(self.name, &self.registered, MetricRef::Histogram(self));
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while counts.len() > 1 && *counts.last().unwrap() == 0 {
            counts.pop();
        }
        // Upper bound of bucket i: the largest value with bit length i.
        let bounds: Vec<u64> = (0..counts.len())
            .map(|i| if i >= BUCKETS - 1 { u64::MAX } else { (1u64 << i) - 1 })
            .collect();
        HistogramSnapshot {
            name: self.name.to_string(),
            count: counts.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            bounds,
            counts,
        }
    }

    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// One-time registration, off the hot path. The `swap` makes exactly one
/// thread win the race to push.
#[cold]
fn register(_name: &'static str, flag: &AtomicBool, entry: MetricRef) {
    if !flag.swap(true, Ordering::SeqCst) {
        REGISTRY.lock().unwrap().push(entry);
    }
}

#[derive(Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanAgg {
    const EMPTY: SpanAgg = SpanAgg { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 };

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

type Sink = Arc<Mutex<BTreeMap<String, SpanAgg>>>;

/// Every thread that ever opened a span parks its sink here so [`report`]
/// (crate root) can merge buffers from worker-pool threads too.
static SINKS: Mutex<Vec<Sink>> = Mutex::new(Vec::new());

struct Tls {
    /// Names of the currently open spans on this thread, outermost first.
    stack: Vec<&'static str>,
    sink: Sink,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// Time a named scope until the returned guard drops. Nested spans report
/// under their `/`-joined ancestor path ("slide/sim"). Inert when telemetry
/// is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let state = tls.get_or_insert_with(|| {
            let sink: Sink = Arc::new(Mutex::new(BTreeMap::new()));
            SINKS.lock().unwrap().push(sink.clone());
            Tls { stack: Vec::new(), sink }
        });
        state.stack.push(name);
    });
    SpanGuard { start: Some(Instant::now()) }
}

/// Guard returned by [`span`]; records the elapsed time on drop.
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        // try_with: a guard may drop during thread teardown after the TLS
        // slot is gone; losing that sample beats aborting the process.
        let _ = TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(state) = tls.as_mut() {
                let path = state.stack.join("/");
                state.stack.pop();
                state.sink.lock().unwrap().entry(path).or_insert(SpanAgg::EMPTY).record(ns);
            }
        });
    }
}

/// Zero every registered metric and clear every thread's span buffer.
/// Registration survives, so a metric touched before a reset still appears
/// (with value 0) in later reports.
pub fn reset() {
    for m in REGISTRY.lock().unwrap().iter() {
        match m {
            MetricRef::Counter(c) => c.value.store(0, Ordering::Relaxed),
            MetricRef::Gauge(g) => g.bits.store(0, Ordering::Relaxed),
            MetricRef::Histogram(h) => h.clear(),
        }
    }
    for sink in SINKS.lock().unwrap().iter() {
        sink.lock().unwrap().clear();
    }
}

pub(crate) fn build_report() -> TelemetryReport {
    let mut report = TelemetryReport::default();
    for m in REGISTRY.lock().unwrap().iter() {
        match m {
            MetricRef::Counter(c) => {
                report.counters.insert(c.name.to_string(), c.value());
            }
            MetricRef::Gauge(g) => {
                report.gauges.insert(g.name.to_string(), g.value());
            }
            MetricRef::Histogram(h) => report.histograms.push(h.snapshot()),
        }
    }
    report.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut merged: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for sink in SINKS.lock().unwrap().iter() {
        for (path, agg) in sink.lock().unwrap().iter() {
            merged.entry(path.clone()).or_insert(SpanAgg::EMPTY).merge(agg);
        }
    }
    report.spans = merged
        .into_iter()
        .map(|(path, agg)| SpanStat {
            path,
            count: agg.count,
            total_ns: agg.total_ns,
            min_ns: agg.min_ns,
            max_ns: agg.max_ns,
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-wide; serialize the tests that mutate it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    static TEST_COUNTER: Counter = Counter::new("test.counter");
    static TEST_GAUGE: Gauge = Gauge::new("test.gauge");
    static TEST_HIST: Histogram = Histogram::new("test.hist");

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_touches_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        TEST_COUNTER.add(7);
        TEST_HIST.record(9);
        let _span = span("ghost");
        drop(_span);
        let report = build_report();
        assert_eq!(report.counter("test.counter"), 0);
        assert!(report.span("ghost").is_none());
    }

    #[test]
    fn counters_gauges_histograms_register_and_reset() {
        with_telemetry(|| {
            TEST_COUNTER.add(2);
            TEST_COUNTER.add(3);
            TEST_GAUGE.set(1.5);
            TEST_HIST.record(0);
            TEST_HIST.record(1);
            TEST_HIST.record(1000);
            let report = build_report();
            assert_eq!(report.counter("test.counter"), 5);
            assert_eq!(report.gauges.get("test.gauge"), Some(&1.5));
            let hist =
                report.histograms.iter().find(|h| h.name == "test.hist").expect("hist registered");
            assert_eq!(hist.count, 3);
            assert_eq!(hist.sum, 1001);
            assert!(hist.bounds.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(hist.counts.iter().sum::<u64>(), 3);
            reset();
            let report = build_report();
            assert_eq!(report.counter("test.counter"), 0);
        });
    }

    #[test]
    fn nested_spans_report_joined_paths() {
        with_telemetry(|| {
            for _ in 0..3 {
                let _outer = span("outer");
                let _inner = span("inner");
            }
            let report = build_report();
            let outer = report.span("outer").expect("outer recorded");
            let inner = report.span("outer/inner").expect("inner nested");
            assert_eq!(outer.count, 3);
            assert_eq!(inner.count, 3);
            assert!(outer.min_ns <= outer.max_ns);
            assert!(outer.total_ns >= inner.total_ns.saturating_sub(outer.count));
        });
    }

    #[test]
    fn spans_merge_across_threads() {
        with_telemetry(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..5 {
                            let _s = span("worker");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let report = build_report();
            assert_eq!(report.span("worker").expect("merged").count, 20);
        });
    }
}
