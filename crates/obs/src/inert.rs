//! Zero-sized no-op stand-ins used when the `telemetry` feature is off.
//!
//! Every item mirrors the `active` module's public surface so instrumented
//! code compiles identically in both modes; here each body is empty and
//! [`enabled`] is a constant `false`, so the optimizer erases every call
//! site outright.

/// Always `false` in a build without the `telemetry` feature; guarded
/// blocks (`if wsn_obs::enabled() { ... }`) are removed as dead code.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op: there is nothing to enable in this build.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// No-op: there is no state to reset in this build.
#[inline(always)]
pub fn reset() {}

/// A zero-sized counter; [`Counter::add`] compiles to nothing.
pub struct Counter {
    _priv: (),
}

impl Counter {
    pub const fn new(_name: &'static str) -> Self {
        Counter { _priv: () }
    }

    #[inline(always)]
    pub fn add(&'static self, _n: u64) {}

    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A zero-sized gauge; [`Gauge::set`] compiles to nothing.
pub struct Gauge {
    _priv: (),
}

impl Gauge {
    pub const fn new(_name: &'static str) -> Self {
        Gauge { _priv: () }
    }

    #[inline(always)]
    pub fn set(&'static self, _v: f64) {}

    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// A zero-sized histogram; [`Histogram::record`] compiles to nothing.
pub struct Histogram {
    _priv: (),
}

impl Histogram {
    pub const fn new(_name: &'static str) -> Self {
        Histogram { _priv: () }
    }

    #[inline(always)]
    pub fn record(&'static self, _v: u64) {}
}

/// A zero-sized guard; creating and dropping it compiles to nothing. The
/// explicit empty `Drop` keeps the guard's semantics (and lints like
/// `drop_non_drop`) identical to the active build, where dropping records
/// the span.
pub struct SpanGuard {
    _priv: (),
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {}
}

/// No-op span: never reads the clock, never touches thread-local state.
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard { _priv: () }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new("inert.counter");
    static H: Histogram = Histogram::new("inert.hist");

    #[test]
    fn inert_surface_is_callable_and_empty() {
        set_enabled(true);
        assert!(!enabled());
        C.add(5);
        H.record(5);
        let _s = span("nothing");
        reset();
        assert_eq!(C.value(), 0);
        let report = crate::report();
        assert!(report.is_empty());
        assert_eq!(report.counter("inert.counter"), 0);
    }
}
