//! # `wsn-obs` — zero-cost observability for the WSN workspace
//!
//! A std-only, dependency-free metrics registry and span tracer shared by the
//! simulator core, the detectors, the streaming driver, and the bench
//! harness.
//!
//! ## Feature flags
//!
//! The whole subsystem sits behind the `telemetry` cargo feature:
//!
//! * **`telemetry` off (the default):** every public type still exists, but
//!   [`Counter`], [`Gauge`], [`Histogram`] and [`SpanGuard`] are zero-sized,
//!   every method is an `#[inline(always)]` empty body, and [`enabled`]
//!   returns a constant `false`. Call sites like
//!   `if wsn_obs::enabled() { ... }` are dead code the optimizer removes, so
//!   instrumented builds without the feature are bit-identical in behaviour
//!   *and* cost to never-instrumented ones.
//! * **`telemetry` on:** the machinery is compiled in but stays dormant
//!   behind a single process-wide `AtomicBool` until [`set_enabled`]`(true)`
//!   is called. A disabled-at-runtime metric touch is one relaxed atomic
//!   load and a predictable branch.
//!
//! ## Overhead contract
//!
//! Instrumentation must never change results. The rules every call site in
//! the workspace follows:
//!
//! 1. Nothing downstream may branch on a metric value — telemetry is
//!    write-only from the instrumented code's point of view.
//! 2. Any extra computation beyond a plain counter bump (building a
//!    histogram value, reading a clock) is wrapped in
//!    `if wsn_obs::enabled() { ... }` so the compiled-out build erases it.
//! 3. Span timing uses the monotonic [`std::time::Instant`] clock only; the
//!    simulated clock is never consulted, so simulation outcomes cannot
//!    depend on telemetry.
//!
//! Under this contract, runs with telemetry compiled in and enabled are
//! bit-identical to runs with it compiled out (a 256-case property suite in
//! the facade crate enforces this).
//!
//! ## How to add a counter
//!
//! ```ignore
//! static CACHE_MISSES: wsn_obs::Counter = wsn_obs::Counter::new("engine.cache_misses");
//!
//! fn lookup(&mut self) {
//!     if miss {
//!         CACHE_MISSES.add(1);
//!     }
//! }
//! ```
//!
//! Metrics are `static`s that lazily self-register into a process-wide
//! registry on first touch, so there is no init step and no central list to
//! maintain. Names are dot-separated `layer.metric` slugs; keep them unique
//! — the merged report sorts and dedupes by name. [`Gauge`] and
//! [`Histogram`] work the same way ([`Histogram`] has fixed power-of-two
//! buckets; record nanoseconds, bytes, or counts directly).
//!
//! ## Spans
//!
//! ```ignore
//! let _span = wsn_obs::span("slide");
//! {
//!     let _inner = wsn_obs::span("sim");   // reported as "slide/sim"
//!     step();
//! }
//! ```
//!
//! Span guards time a named scope and record it under its `/`-joined
//! ancestor path into a per-thread buffer. [`report`] drains every thread's
//! buffer into one merged, path-sorted [`TelemetryReport`]; the structure
//! and counts of that report are deterministic across worker-pool
//! executions (only the timings vary).

use std::collections::BTreeMap;

#[cfg(feature = "telemetry")]
mod active;
#[cfg(feature = "telemetry")]
pub use active::{enabled, reset, set_enabled, span, Counter, Gauge, Histogram, SpanGuard};

#[cfg(not(feature = "telemetry"))]
mod inert;
#[cfg(not(feature = "telemetry"))]
pub use inert::{enabled, reset, set_enabled, span, Counter, Gauge, Histogram, SpanGuard};

/// `true` when the crate was built with the `telemetry` feature.
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

/// Point-in-time value of one histogram: `counts[i]` values fell in
/// `(bounds[i-1], bounds[i]]` (the first bucket starts at zero). Bounds are
/// strictly increasing; trailing empty buckets are trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

/// Aggregated timings for one span path (`parent/child/...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

/// A deterministic merged snapshot of every registered metric and every
/// thread's span buffer. Maps are keyed (and therefore ordered) by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: Vec<HistogramSnapshot>,
    pub spans: Vec<SpanStat>,
}

impl TelemetryReport {
    /// `true` when no metric or span recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Aggregated stats for one span path, if it was recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Value of one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Snapshot every registered metric and drain-merge every thread's span
/// buffer. Empty when telemetry is compiled out or was never enabled.
pub fn report() -> TelemetryReport {
    #[cfg(feature = "telemetry")]
    {
        active::build_report()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        TelemetryReport::default()
    }
}
