//! Error types for the data layer.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating sensor data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A feature vector had a different dimensionality than the one expected
    /// by the collection it was inserted into.
    DimensionMismatch {
        /// Dimensionality the collection expects.
        expected: usize,
        /// Dimensionality of the offending vector.
        actual: usize,
    },
    /// A feature value was NaN, which would break the total order `≺`.
    NonFiniteFeature {
        /// Index of the offending feature.
        index: usize,
    },
    /// A sliding window was configured with a zero-length duration.
    EmptyWindow,
    /// A trace or stream was asked for a sensor that does not exist.
    UnknownSensor(u32),
    /// A synthetic trace was requested with inconsistent parameters.
    InvalidParameter(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, actual } => {
                write!(f, "feature dimension mismatch: expected {expected}, got {actual}")
            }
            DataError::NonFiniteFeature { index } => {
                write!(f, "non-finite feature value at index {index}")
            }
            DataError::EmptyWindow => write!(f, "sliding window duration must be positive"),
            DataError::UnknownSensor(id) => write!(f, "unknown sensor id {id}"),
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = DataError::DimensionMismatch { expected: 3, actual: 2 };
        assert_eq!(e.to_string(), "feature dimension mismatch: expected 3, got 2");
        let e = DataError::EmptyWindow;
        assert!(e.to_string().starts_with("sliding window"));
        let e = DataError::UnknownSensor(7);
        assert_eq!(e.to_string(), "unknown sensor id 7");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
