//! Sensor streams and whole-deployment traces.
//!
//! The paper's workload is a set of per-sensor data streams: each sensor
//! periodically samples an environmental value (temperature in the
//! experiments), stamped with an epoch number and a timestamp, together with
//! the sensor's location coordinates. Readings may be missing (the original
//! Intel trace lost samples to packet loss); missing readings are represented
//! explicitly and later filled in by [`crate::impute`].

use crate::error::DataError;
use crate::geometry::Position;
use crate::point::{DataPoint, Epoch, PointKey, SensorId, Timestamp};

/// Static description of one deployed sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// The sensor's identifier.
    pub id: SensorId,
    /// Where the sensor sits on the terrain.
    pub position: Position,
}

impl SensorSpec {
    /// Creates a new sensor description.
    pub fn new(id: SensorId, position: Position) -> Self {
        SensorSpec { id, position }
    }
}

/// One periodic reading of a sensor. `value` is `None` when the reading was
/// lost (missing data in the trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Epoch (sequence number) of the reading within the sensor's stream.
    pub epoch: Epoch,
    /// Sampling time.
    pub timestamp: Timestamp,
    /// Measured value, or `None` if the reading is missing.
    pub value: Option<f64>,
    /// Whether the generator injected this reading as a ground-truth anomaly.
    /// Only used for accuracy book-keeping; the detection algorithms never
    /// look at this flag.
    pub injected_anomaly: bool,
}

impl SensorReading {
    /// Creates a present (non-missing) reading.
    pub fn present(epoch: Epoch, timestamp: Timestamp, value: f64) -> Self {
        SensorReading { epoch, timestamp, value: Some(value), injected_anomaly: false }
    }

    /// Creates a missing reading.
    pub fn missing(epoch: Epoch, timestamp: Timestamp) -> Self {
        SensorReading { epoch, timestamp, value: None, injected_anomaly: false }
    }

    /// Marks the reading as an injected ground-truth anomaly.
    pub fn with_anomaly_flag(mut self, flag: bool) -> Self {
        self.injected_anomaly = flag;
        self
    }

    /// Returns `true` if the reading is missing.
    pub fn is_missing(&self) -> bool {
        self.value.is_none()
    }
}

/// The stream of readings produced by one sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorStream {
    /// The sensor that produced the stream.
    pub spec: SensorSpec,
    /// The readings, in epoch order.
    pub readings: Vec<SensorReading>,
}

impl SensorStream {
    /// Creates an empty stream for the given sensor.
    pub fn new(spec: SensorSpec) -> Self {
        SensorStream { spec, readings: Vec::new() }
    }

    /// Number of readings (present or missing).
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Returns `true` if the stream has no readings.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Fraction of readings that are missing.
    pub fn missing_fraction(&self) -> f64 {
        if self.readings.is_empty() {
            return 0.0;
        }
        self.readings.iter().filter(|r| r.is_missing()).count() as f64 / self.readings.len() as f64
    }

    /// Converts the reading at `epoch` into a [`DataPoint`] with the
    /// `[value, x, y]` feature layout. Returns `None` when the reading is
    /// missing or out of range.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError::NonFiniteFeature`] if the stored value is not
    /// finite (which indicates a corrupted trace).
    pub fn point_at(&self, index: usize) -> Result<Option<DataPoint>, DataError> {
        let Some(reading) = self.readings.get(index) else {
            return Ok(None);
        };
        let Some(value) = reading.value else {
            return Ok(None);
        };
        DataPoint::from_reading(
            self.spec.id,
            reading.epoch,
            reading.timestamp,
            value,
            self.spec.position,
        )
        .map(Some)
    }
}

/// A whole-deployment trace: one stream per sensor, sharing a common sampling
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentTrace {
    /// Interval between consecutive samples of a sensor, in seconds.
    pub sample_interval_secs: f64,
    /// One stream per sensor.
    pub streams: Vec<SensorStream>,
}

impl DeploymentTrace {
    /// Creates a trace with the given sampling interval and no streams.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the interval is not
    /// strictly positive.
    pub fn new(sample_interval_secs: f64) -> Result<Self, DataError> {
        if !sample_interval_secs.is_finite() || sample_interval_secs <= 0.0 {
            return Err(DataError::InvalidParameter(
                "sample interval must be strictly positive".to_string(),
            ));
        }
        Ok(DeploymentTrace { sample_interval_secs, streams: Vec::new() })
    }

    /// Number of sensors in the trace.
    pub fn sensor_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of sampling rounds (the longest stream length).
    pub fn round_count(&self) -> usize {
        self.streams.iter().map(|s| s.readings.len()).max().unwrap_or(0)
    }

    /// The static specs of all sensors.
    pub fn sensor_specs(&self) -> Vec<SensorSpec> {
        self.streams.iter().map(|s| s.spec).collect()
    }

    /// Looks up a sensor's stream by id.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownSensor`] when no stream has that id.
    pub fn stream(&self, id: SensorId) -> Result<&SensorStream, DataError> {
        self.streams.iter().find(|s| s.spec.id == id).ok_or(DataError::UnknownSensor(id.raw()))
    }

    /// All present data points of sampling round `round` (one per sensor that
    /// has a non-missing reading in that round), as `[value, x, y]` points.
    ///
    /// # Errors
    ///
    /// Propagates trace corruption errors from [`SensorStream::point_at`].
    pub fn points_at_round(&self, round: usize) -> Result<Vec<DataPoint>, DataError> {
        let mut out = Vec::new();
        for s in &self.streams {
            if let Some(p) = s.point_at(round)? {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Every present point in the whole trace.
    ///
    /// # Errors
    ///
    /// Propagates trace corruption errors from [`SensorStream::point_at`].
    pub fn all_points(&self) -> Result<Vec<DataPoint>, DataError> {
        let mut out = Vec::new();
        for round in 0..self.round_count() {
            out.extend(self.points_at_round(round)?);
        }
        Ok(out)
    }

    /// The identities of every **present** reading flagged as an injected
    /// ground-truth anomaly, across the whole trace — the label set the
    /// accuracy metrics grade estimates against. (A flag on a missing
    /// reading labels nothing: no data point is ever built from it.)
    pub fn anomaly_keys(&self) -> Vec<PointKey> {
        let mut keys = Vec::new();
        for stream in &self.streams {
            for reading in &stream.readings {
                if reading.injected_anomaly && !reading.is_missing() {
                    keys.push(PointKey::new(stream.spec.id, reading.epoch));
                }
            }
        }
        keys
    }

    /// The labelled anomaly identities of one sampling round (present
    /// readings only). Round-local labels for per-round consumers (e.g. a
    /// naive one-round detector); note the streaming driver instead scopes
    /// the whole-trace [`DeploymentTrace::anomaly_keys`] set by what each
    /// node's window currently holds.
    pub fn labels_at_round(&self, round: usize) -> Vec<PointKey> {
        self.streams
            .iter()
            .filter_map(|s| {
                let reading = s.readings.get(round)?;
                (reading.injected_anomaly && !reading.is_missing())
                    .then(|| PointKey::new(s.spec.id, reading.epoch))
            })
            .collect()
    }

    /// Fraction of readings across all streams that carry the injected
    /// ground-truth-anomaly flag.
    pub fn anomaly_fraction(&self) -> f64 {
        let total: usize = self.streams.iter().map(|s| s.readings.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let anomalies: usize = self
            .streams
            .iter()
            .map(|s| s.readings.iter().filter(|r| r.injected_anomaly).count())
            .sum();
        anomalies as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32, x: f64, y: f64) -> SensorSpec {
        SensorSpec::new(SensorId(id), Position::new(x, y))
    }

    fn stream_with(values: &[Option<f64>]) -> SensorStream {
        let mut s = SensorStream::new(spec(1, 2.0, 3.0));
        for (i, v) in values.iter().enumerate() {
            let epoch = Epoch(i as u64);
            let ts = Timestamp::from_secs(i as u64);
            s.readings.push(match v {
                Some(val) => SensorReading::present(epoch, ts, *val),
                None => SensorReading::missing(epoch, ts),
            });
        }
        s
    }

    #[test]
    fn trace_rejects_non_positive_interval() {
        assert!(DeploymentTrace::new(0.0).is_err());
        assert!(DeploymentTrace::new(-1.0).is_err());
        assert!(DeploymentTrace::new(f64::NAN).is_err());
        assert!(DeploymentTrace::new(2.0).is_ok());
    }

    #[test]
    fn missing_fraction_counts_gaps() {
        let s = stream_with(&[Some(1.0), None, Some(2.0), None]);
        assert!((s.missing_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let empty = SensorStream::new(spec(2, 0.0, 0.0));
        assert_eq!(empty.missing_fraction(), 0.0);
    }

    #[test]
    fn point_at_skips_missing_and_out_of_range() {
        let s = stream_with(&[Some(20.0), None]);
        let p = s.point_at(0).unwrap().unwrap();
        assert_eq!(p.features, vec![20.0, 2.0, 3.0]);
        assert_eq!(p.key.origin, SensorId(1));
        assert!(s.point_at(1).unwrap().is_none());
        assert!(s.point_at(99).unwrap().is_none());
    }

    #[test]
    fn trace_round_access_collects_present_points() {
        let mut trace = DeploymentTrace::new(1.0).unwrap();
        trace.streams.push(stream_with(&[Some(1.0), None]));
        let mut s2 = SensorStream::new(spec(2, 0.0, 0.0));
        s2.readings.push(SensorReading::present(Epoch(0), Timestamp::ZERO, 5.0));
        s2.readings.push(SensorReading::present(Epoch(1), Timestamp::from_secs(1), 6.0));
        trace.streams.push(s2);

        assert_eq!(trace.sensor_count(), 2);
        assert_eq!(trace.round_count(), 2);
        assert_eq!(trace.points_at_round(0).unwrap().len(), 2);
        assert_eq!(trace.points_at_round(1).unwrap().len(), 1);
        assert_eq!(trace.all_points().unwrap().len(), 3);
        assert_eq!(trace.sensor_specs().len(), 2);
        assert!(trace.stream(SensorId(2)).is_ok());
        assert_eq!(trace.stream(SensorId(9)).unwrap_err(), DataError::UnknownSensor(9));
    }

    #[test]
    fn anomaly_keys_cover_present_flagged_readings_only() {
        let mut trace = DeploymentTrace::new(1.0).unwrap();
        let mut s = SensorStream::new(spec(3, 0.0, 0.0));
        s.readings
            .push(SensorReading::present(Epoch(0), Timestamp::ZERO, 1.0).with_anomaly_flag(true));
        s.readings.push(SensorReading::present(Epoch(1), Timestamp::from_secs(1), 2.0));
        // A flagged-but-missing reading labels nothing.
        s.readings.push(
            SensorReading::missing(Epoch(2), Timestamp::from_secs(2)).with_anomaly_flag(true),
        );
        trace.streams.push(s);
        assert_eq!(trace.anomaly_keys(), vec![PointKey::new(SensorId(3), Epoch(0))]);
        assert_eq!(trace.labels_at_round(0), vec![PointKey::new(SensorId(3), Epoch(0))]);
        assert!(trace.labels_at_round(1).is_empty());
        assert!(trace.labels_at_round(2).is_empty());
        assert!(trace.labels_at_round(9).is_empty());
    }

    #[test]
    fn anomaly_fraction_reflects_flags() {
        let mut trace = DeploymentTrace::new(1.0).unwrap();
        let mut s = SensorStream::new(spec(1, 0.0, 0.0));
        s.readings
            .push(SensorReading::present(Epoch(0), Timestamp::ZERO, 1.0).with_anomaly_flag(true));
        s.readings.push(SensorReading::present(Epoch(1), Timestamp::from_secs(1), 1.0));
        trace.streams.push(s);
        assert!((trace.anomaly_fraction() - 0.5).abs() < 1e-12);
        let empty = DeploymentTrace::new(1.0).unwrap();
        assert_eq!(empty.anomaly_fraction(), 0.0);
    }
}
