//! The 53-sensor lab deployment used throughout the evaluation.
//!
//! The paper's experiments simulate the 53 sensors of the Intel Berkeley
//! Research Lab trace, placed on a 50 m × 50 m terrain, with a uniform
//! transmission range of ≈6.77 m (§7.1). The original mote coordinates are
//! not redistributable here, so [`LabDeployment`] lays out the same number of
//! sensors along the walls and central corridors of a lab-like floor plan:
//! a perimeter ring plus interior rows, lightly jittered. What matters for
//! the evaluation — 53 sensors, a connected multi-hop topology at the paper's
//! radio range, realistic node degrees, and a sink near one corner for the
//! centralized baseline — is preserved (see DESIGN.md §4).

use crate::error::DataError;
use crate::geometry::{Position, Terrain};
use crate::point::SensorId;
use crate::rng::SeededRng;
use crate::stream::{DeploymentTrace, SensorSpec};
use crate::synth::{generate_trace, SyntheticTraceConfig};

/// The transmission range the paper configures for every node, in metres.
pub const PAPER_TRANSMISSION_RANGE_M: f64 = 6.77;

/// Number of sensors in the full lab deployment.
pub const LAB_SENSOR_COUNT: usize = 53;

/// Number of sensors in the smaller scaling-study deployment (§7.1).
pub const SMALL_SENSOR_COUNT: usize = 32;

/// A concrete sensor deployment: positions on the terrain plus the sink used
/// by the centralized baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct LabDeployment {
    terrain: Terrain,
    sensors: Vec<SensorSpec>,
    sink: SensorId,
}

impl LabDeployment {
    /// Builds the standard 53-sensor deployment, deterministically for the
    /// given seed (the seed only perturbs the small placement jitter).
    pub fn standard(seed: u64) -> Self {
        Self::with_sensor_count(LAB_SENSOR_COUNT, seed)
            .expect("the standard deployment parameters are always valid")
    }

    /// Builds a deployment with an arbitrary number of sensors on the
    /// standard terrain.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `count` is zero.
    pub fn with_sensor_count(count: usize, seed: u64) -> Result<Self, DataError> {
        if count == 0 {
            return Err(DataError::InvalidParameter("sensor count must be positive".into()));
        }
        let terrain = Terrain::paper_default();
        let mut rng = SeededRng::seed_from_u64(seed);
        // The jitter occasionally breaks connectivity at the paper's radio
        // range; redraw it (deterministically — the retry count is part of
        // the seed's stream) until the layout is connected. Sparse layouts
        // whose grid pitch already exceeds the radio range can never connect
        // no matter the jitter (callers connect those at a wider range), so
        // redraws only run when the jitter-free layout is itself connected;
        // otherwise — and after the bounded attempts — the last draw is kept.
        let mut positions = lab_layout(count, &terrain, &mut rng, JITTER_M);
        if !connected_at(&positions, PAPER_TRANSMISSION_RANGE_M)
            && connected_at(
                &lab_layout(count, &terrain, &mut SeededRng::seed_from_u64(0), 0.0),
                PAPER_TRANSMISSION_RANGE_M,
            )
        {
            for _ in 0..32 {
                positions = lab_layout(count, &terrain, &mut rng, JITTER_M);
                if connected_at(&positions, PAPER_TRANSMISSION_RANGE_M) {
                    break;
                }
            }
        }
        let sensors: Vec<SensorSpec> = positions
            .into_iter()
            .enumerate()
            .map(|(i, p)| SensorSpec::new(SensorId(i as u32), p))
            .collect();
        let sink = default_sink(&sensors).expect("at least one sensor exists");
        Ok(LabDeployment { terrain, sensors, sink })
    }

    /// Builds a city-scale deployment: `count` sensors at the *lab's*
    /// constant density on a terrain that grows with the sensor count,
    /// rather than packing ever more sensors onto the fixed 50 m floor.
    ///
    /// Sensors sit on a square grid of [`CITY_GRID_PITCH_M`] metre pitch
    /// with up to ±[`CITY_JITTER_M`] metres of per-coordinate jitter. The
    /// worst-case distance between grid neighbours is
    /// `sqrt((pitch + 2·jitter)² + (2·jitter)²) ≈ 6.60 m`, strictly below
    /// the paper's 6.77 m radio range, so the deployment is connected *by
    /// construction* for every seed — no connectivity redraw loop is needed
    /// (or affordable) at 10 000 sensors.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `count` is zero.
    pub fn city(count: usize, seed: u64) -> Result<Self, DataError> {
        if count == 0 {
            return Err(DataError::InvalidParameter("sensor count must be positive".into()));
        }
        let cols = ((count as f64).sqrt().ceil() as usize).max(1);
        let rows = count.div_ceil(cols);
        let terrain = Terrain::new(
            CITY_GRID_PITCH_M * (cols as f64 + 1.0),
            CITY_GRID_PITCH_M * (rows as f64 + 1.0),
        );
        let mut rng = SeededRng::seed_from_u64(seed);
        let mut sensors = Vec::with_capacity(count);
        'outer: for r in 0..rows {
            for c in 0..cols {
                if sensors.len() >= count {
                    break 'outer;
                }
                let p = Position::new(
                    (c as f64 + 1.0) * CITY_GRID_PITCH_M
                        + rng.gen_range(-CITY_JITTER_M..CITY_JITTER_M),
                    (r as f64 + 1.0) * CITY_GRID_PITCH_M
                        + rng.gen_range(-CITY_JITTER_M..CITY_JITTER_M),
                );
                sensors.push(SensorSpec::new(SensorId(sensors.len() as u32), terrain.clamp(p)));
            }
        }
        let sink = default_sink(&sensors).expect("at least one sensor exists");
        Ok(LabDeployment { terrain, sensors, sink })
    }

    /// Uniformly subsamples the deployment down to `count` sensors (used for
    /// the 32-node scaling study, §7.1). Sensor ids are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `count` is zero or larger
    /// than the current deployment.
    pub fn subsample(&self, count: usize, seed: u64) -> Result<LabDeployment, DataError> {
        if count == 0 || count > self.sensors.len() {
            return Err(DataError::InvalidParameter(format!(
                "subsample size {count} must be in 1..={}",
                self.sensors.len()
            )));
        }
        let mut rng = SeededRng::seed_from_u64(seed);
        let mut chosen = self.sensors.clone();
        rng.shuffle(&mut chosen);
        chosen.truncate(count);
        // Keep the sink if possible so the centralized baseline stays anchored.
        if !chosen.iter().any(|s| s.id == self.sink) {
            if let Some(sink_spec) = self.sensors.iter().find(|s| s.id == self.sink) {
                chosen[0] = *sink_spec;
            }
        }
        chosen.sort_by_key(|s| s.id);
        Ok(LabDeployment { terrain: self.terrain, sensors: chosen, sink: self.sink })
    }

    /// The terrain the sensors are deployed on.
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    /// The deployed sensors.
    pub fn sensors(&self) -> &[SensorSpec] {
        &self.sensors
    }

    /// Number of deployed sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// The sensor acting as the sink / base station for the centralized
    /// baseline.
    pub fn sink(&self) -> SensorId {
        self.sink
    }

    /// Pairs of sensors within `range` metres of each other (the single-hop
    /// communication graph).
    pub fn adjacency(&self, range: f64) -> Vec<(SensorId, SensorId)> {
        let mut edges = Vec::new();
        for (i, a) in self.sensors.iter().enumerate() {
            for b in self.sensors.iter().skip(i + 1) {
                if a.position.distance(&b.position) <= range {
                    edges.push((a.id, b.id));
                }
            }
        }
        edges
    }

    /// Returns `true` if the single-hop graph at `range` is connected.
    pub fn is_connected(&self, range: f64) -> bool {
        let positions: Vec<Position> = self.sensors.iter().map(|s| s.position).collect();
        connected_at(&positions, range)
    }

    /// Generates the synthetic Intel-lab-like trace for this deployment.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from the generator.
    pub fn generate_trace(
        &self,
        config: &SyntheticTraceConfig,
        seed: u64,
    ) -> Result<DeploymentTrace, DataError> {
        generate_trace(config, &self.sensors, seed)
    }
}

/// The default sink of a deployment's centralized baseline: the sensor
/// nearest the terrain corner (origin), as a base station typically sits.
/// Single-sourced here so every consumer — [`LabDeployment`] and harnesses
/// that build topologies straight from replayed trace specs — anchors the
/// same node. Returns `None` for an empty deployment.
pub fn default_sink(sensors: &[SensorSpec]) -> Option<SensorId> {
    let origin = Position::new(0.0, 0.0);
    sensors
        .iter()
        .min_by(|a, b| {
            a.position.distance_squared(&origin).total_cmp(&b.position.distance_squared(&origin))
        })
        .map(|s| s.id)
}

/// Returns `true` if the unit-disc graph over `positions` at `range` metres
/// is connected (used to validate a jitter draw before accepting it).
fn connected_at(positions: &[Position], range: f64) -> bool {
    let n = positions.len();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(v) = stack.pop() {
        for w in 0..n {
            if !seen[w] && positions[v].distance(&positions[w]) <= range {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Amplitude of the placement jitter, in metres.
const JITTER_M: f64 = 0.8;

/// Grid pitch of the city-scale deployment, in metres. Chosen so the lab's
/// node density is preserved and grid neighbours stay within the paper's
/// radio range even at worst-case jitter (see [`LabDeployment::city`]).
pub const CITY_GRID_PITCH_M: f64 = 4.8;

/// Placement jitter of the city-scale deployment, in metres.
pub const CITY_JITTER_M: f64 = 0.8;

/// Lays out `count` sensors on a lab-like floor plan: a perimeter ring and
/// interior rows with a small jitter, spaced so that the paper's 6.77 m radio
/// range yields a connected multi-hop network. A `jitter` of zero produces
/// the deterministic base grid without consuming any randomness.
fn lab_layout(count: usize, terrain: &Terrain, rng: &mut SeededRng, jitter: f64) -> Vec<Position> {
    let mut positions = Vec::with_capacity(count);
    // Row pitch of ~5.5 m keeps horizontal neighbours within radio range
    // (6.77 m) even after jitter, like desks along lab corridors.
    let rows = ((count as f64).sqrt().ceil() as usize).max(1);
    let cols = count.div_ceil(rows);
    let x_pitch = terrain.width / (cols as f64 + 1.0);
    let y_pitch = terrain.height / (rows as f64 + 1.0);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if positions.len() >= count {
                break 'outer;
            }
            // Stagger alternate rows to mimic the lab's offset desk rows.
            let stagger = if r % 2 == 0 { 0.0 } else { x_pitch * 0.4 };
            let (jitter_x, jitter_y) = if jitter > 0.0 {
                (rng.gen_range(-jitter..jitter), rng.gen_range(-jitter..jitter))
            } else {
                (0.0, 0.0)
            };
            let p = Position::new(
                (c as f64 + 1.0) * x_pitch + stagger + jitter_x,
                (r as f64 + 1.0) * y_pitch + jitter_y,
            );
            positions.push(terrain.clamp(p));
        }
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_deployment_has_53_sensors_inside_the_terrain() {
        let d = LabDeployment::standard(1);
        assert_eq!(d.sensor_count(), 53);
        let t = d.terrain();
        assert!(d.sensors().iter().all(|s| t.contains(&s.position)));
        // Ids are 0..53 and unique.
        let mut ids: Vec<u32> = d.sensors().iter().map(|s| s.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 53);
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        assert_eq!(LabDeployment::standard(5), LabDeployment::standard(5));
        assert_ne!(LabDeployment::standard(5), LabDeployment::standard(6));
    }

    #[test]
    fn standard_deployment_is_connected_at_paper_range() {
        // The constructor redraws the jitter until the layout connects, so
        // this must hold for every seed, not just a lucky few.
        for seed in 0..32 {
            let d = LabDeployment::standard(seed);
            assert!(
                d.is_connected(PAPER_TRANSMISSION_RANGE_M),
                "deployment with seed {seed} must be connected at the paper's radio range"
            );
        }
    }

    #[test]
    fn standard_deployment_is_multi_hop_not_a_clique() {
        let d = LabDeployment::standard(0);
        let edges = d.adjacency(PAPER_TRANSMISSION_RANGE_M).len();
        let max_edges = 53 * 52 / 2;
        assert!(edges > 52, "graph must have at least a spanning tree worth of edges");
        assert!(edges < max_edges / 4, "graph must be sparse (multi-hop), got {edges} edges");
    }

    #[test]
    fn sink_is_near_the_corner() {
        let d = LabDeployment::standard(3);
        let sink_pos = d.sensors().iter().find(|s| s.id == d.sink()).map(|s| s.position).unwrap();
        assert!(sink_pos.x < 15.0 && sink_pos.y < 15.0);
    }

    #[test]
    fn subsample_preserves_ids_and_size() {
        let d = LabDeployment::standard(2);
        let small = d.subsample(SMALL_SENSOR_COUNT, 9).unwrap();
        assert_eq!(small.sensor_count(), 32);
        let full_ids: Vec<SensorId> = d.sensors().iter().map(|s| s.id).collect();
        assert!(small.sensors().iter().all(|s| full_ids.contains(&s.id)));
        // The sink survives subsampling.
        assert!(small.sensors().iter().any(|s| s.id == small.sink()));
        // Determinism.
        assert_eq!(d.subsample(32, 9).unwrap(), small);
    }

    #[test]
    fn subsample_rejects_bad_sizes() {
        let d = LabDeployment::standard(2);
        assert!(d.subsample(0, 1).is_err());
        assert!(d.subsample(54, 1).is_err());
    }

    #[test]
    fn with_sensor_count_rejects_zero() {
        assert!(LabDeployment::with_sensor_count(0, 1).is_err());
    }

    #[test]
    fn generate_trace_produces_one_stream_per_sensor() {
        let d = LabDeployment::standard(0);
        let cfg = SyntheticTraceConfig { rounds: 5, ..Default::default() };
        let t = d.generate_trace(&cfg, 1).unwrap();
        assert_eq!(t.sensor_count(), 53);
        assert_eq!(t.round_count(), 5);
    }

    #[test]
    fn city_deployment_is_connected_by_construction_at_any_seed() {
        for seed in [0, 1, 17, 999] {
            let d = LabDeployment::city(400, seed).unwrap();
            assert_eq!(d.sensor_count(), 400);
            assert!(
                d.is_connected(PAPER_TRANSMISSION_RANGE_M),
                "city deployment with seed {seed} must be connected"
            );
            let t = d.terrain();
            assert!(d.sensors().iter().all(|s| t.contains(&s.position)));
        }
    }

    #[test]
    fn city_deployment_keeps_density_constant_as_it_scales() {
        let small = LabDeployment::city(100, 0).unwrap();
        let large = LabDeployment::city(2500, 0).unwrap();
        let density = |d: &LabDeployment| d.sensor_count() as f64 / d.terrain().area();
        let ratio = density(&large) / density(&small);
        assert!(
            (0.8..=1.25).contains(&ratio),
            "density must stay roughly constant while the terrain grows, got ratio {ratio}"
        );
        assert!(large.terrain().area() > 20.0 * small.terrain().area() * 0.8);
    }

    #[test]
    fn city_deployment_is_deterministic_and_rejects_zero() {
        assert_eq!(LabDeployment::city(64, 3).unwrap(), LabDeployment::city(64, 3).unwrap());
        assert!(LabDeployment::city(0, 1).is_err());
    }

    #[test]
    fn average_degree_is_realistic_for_a_wsn() {
        let d = LabDeployment::standard(1);
        let edges = d.adjacency(PAPER_TRANSMISSION_RANGE_M).len();
        let avg_degree = 2.0 * edges as f64 / d.sensor_count() as f64;
        assert!(
            (2.0..=12.0).contains(&avg_degree),
            "average degree {avg_degree} should look like a sparse WSN"
        );
    }
}
