//! The tie-breaking total linear order `≺` on data points.
//!
//! The paper (§4.1) assumes a fixed total linear order on the data space used
//! to break ties, so that the ranking function `R(·, Q)` induces a total
//! linear ordering (equivalently, is one-to-one). We realise `≺` as a
//! lexicographic comparison on `(features, origin, epoch)`:
//!
//! * features are compared with [`f64::total_cmp`], element by element, then
//!   by length, so points with distinct feature vectors are ordered by value;
//! * points with identical feature vectors are disambiguated by the identity
//!   of the sensor that sampled them and the epoch — guaranteeing that two
//!   distinct observations never compare equal.
//!
//! The same machinery provides [`RankedPoint`], the `(rank, point)` pair
//! ordered by descending rank with `≺` as the tie-breaker — exactly the order
//! in which the top-`n` outliers `O_n(D)` are selected.

use crate::point::DataPoint;
use std::cmp::Ordering;
use std::sync::Arc;

/// Compares two points under the total linear order `≺`.
///
/// This order is used only for tie-breaking; it is not a measure of
/// "outlierness".
///
/// ```
/// use wsn_data::order::precedes;
/// use wsn_data::{DataPoint, Epoch, SensorId, Timestamp};
///
/// let a = DataPoint::new(SensorId(1), Epoch(0), Timestamp::ZERO, vec![1.0]).unwrap();
/// let b = DataPoint::new(SensorId(2), Epoch(0), Timestamp::ZERO, vec![2.0]).unwrap();
/// assert!(precedes(&a, &b));
/// assert!(!precedes(&b, &a));
/// ```
pub fn precedes(a: &DataPoint, b: &DataPoint) -> bool {
    total_order(a, b) == Ordering::Less
}

/// The total order `≺` as an [`Ordering`].
///
/// Two points compare `Equal` only if they have the same feature vector *and*
/// the same identity (origin, epoch) — i.e. they are the same observation.
pub fn total_order(a: &DataPoint, b: &DataPoint) -> Ordering {
    compare_features(&a.features, &b.features)
        .then_with(|| a.key.origin.cmp(&b.key.origin))
        .then_with(|| a.key.epoch.cmp(&b.key.epoch))
}

/// Lexicographic, total comparison of feature vectors using `f64::total_cmp`.
pub fn compare_features(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.total_cmp(y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// A data point together with its rank `R(x, P)`.
///
/// `RankedPoint`s are ordered by **descending** rank (larger rank = more
/// outlying = earlier), with ties broken by the total order `≺`. Sorting a
/// slice of `RankedPoint`s therefore puts the top-`n` outliers first, exactly
/// as `O_n(·)` requires.
///
/// The point is held behind an [`Arc`], shared with the [`crate::PointSet`]
/// it was ranked out of: selecting an estimate and materialising it back
/// into a set (`to_point_set` on the ranking side) only bumps reference
/// counts, which matters inside the sufficient-set fixed point where an
/// estimate is re-derived per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPoint {
    /// The rank `R(x, P)` — the degree to which `x` is an outlier.
    pub rank: f64,
    /// The ranked point, sharing the allocation of the set it came from.
    pub point: Arc<DataPoint>,
}

impl RankedPoint {
    /// Creates a new ranked point. Accepts either an owned [`DataPoint`] or
    /// an [`Arc`] handle; passing the handle shares the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is NaN; ranking functions must return finite or
    /// at least comparable values.
    pub fn new(rank: f64, point: impl Into<Arc<DataPoint>>) -> Self {
        assert!(!rank.is_nan(), "ranking functions must not produce NaN");
        RankedPoint { rank, point: point.into() }
    }

    /// Compares two ranked points in outlier order: higher rank first, ties
    /// broken by `≺`.
    pub fn outlier_order(&self, other: &RankedPoint) -> Ordering {
        other.rank.total_cmp(&self.rank).then_with(|| total_order(&self.point, &other.point))
    }
}

/// Sorts ranked points into outlier order (most outlying first).
pub fn sort_by_outlier_order(points: &mut [RankedPoint]) {
    points.sort_by(|a, b| a.outlier_order(b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Epoch, SensorId, Timestamp};

    fn pt(origin: u32, epoch: u64, features: Vec<f64>) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::ZERO, features).unwrap()
    }

    #[test]
    fn order_is_by_features_first() {
        let a = pt(9, 9, vec![1.0, 5.0]);
        let b = pt(1, 1, vec![2.0, 0.0]);
        assert_eq!(total_order(&a, &b), Ordering::Less);
        assert!(precedes(&a, &b));
    }

    #[test]
    fn identical_features_break_ties_by_identity() {
        let a = pt(1, 0, vec![3.0]);
        let b = pt(2, 0, vec![3.0]);
        let c = pt(1, 1, vec![3.0]);
        assert_eq!(total_order(&a, &b), Ordering::Less);
        assert_eq!(total_order(&a, &c), Ordering::Less);
        assert_eq!(total_order(&a, &a), Ordering::Equal);
    }

    #[test]
    fn shorter_vector_precedes_its_prefix_extension() {
        let a = pt(1, 0, vec![1.0]);
        let b = pt(1, 1, vec![1.0, 0.0]);
        assert_eq!(compare_features(&a.features, &b.features), Ordering::Less);
        assert!(precedes(&a, &b));
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let pts = vec![
            pt(1, 0, vec![1.0]),
            pt(2, 0, vec![1.0]),
            pt(1, 1, vec![0.5]),
            pt(3, 7, vec![2.0]),
        ];
        for x in &pts {
            for y in &pts {
                let xy = total_order(x, y);
                let yx = total_order(y, x);
                assert_eq!(xy, yx.reverse());
            }
        }
    }

    #[test]
    fn ranked_points_sort_descending_by_rank() {
        let mut v = vec![
            RankedPoint::new(1.0, pt(1, 0, vec![1.0])),
            RankedPoint::new(5.0, pt(2, 0, vec![2.0])),
            RankedPoint::new(3.0, pt(3, 0, vec![3.0])),
        ];
        sort_by_outlier_order(&mut v);
        let ranks: Vec<f64> = v.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn equal_ranks_fall_back_to_total_order() {
        let mut v = vec![
            RankedPoint::new(2.0, pt(2, 0, vec![9.0])),
            RankedPoint::new(2.0, pt(1, 0, vec![3.0])),
        ];
        sort_by_outlier_order(&mut v);
        assert_eq!(v[0].point.features, vec![3.0]);
        assert_eq!(v[1].point.features, vec![9.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ranked_point_rejects_nan() {
        let _ = RankedPoint::new(f64::NAN, pt(1, 0, vec![1.0]));
    }
}
