//! Planar geometry helpers: sensor positions on the deployment terrain.

/// A position on the 2-D deployment terrain, in metres.
///
/// The paper simulates a 50 m × 50 m terrain; positions are also used as data
/// features (the location coordinates fed to the ranking function, §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a new position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    ///
    /// ```
    /// use wsn_data::Position;
    /// let a = Position::new(0.0, 0.0);
    /// let b = Position::new(3.0, 4.0);
    /// assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    /// ```
    pub fn distance(&self, other: &Position) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only comparing).
    pub fn distance_squared(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between two positions.
    pub fn midpoint(&self, other: &Position) -> Position {
        Position::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` if both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position::new(x, y)
    }
}

/// Axis-aligned rectangular terrain on which sensors are deployed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terrain {
    /// Width of the terrain in metres.
    pub width: f64,
    /// Height of the terrain in metres.
    pub height: f64,
}

impl Terrain {
    /// Creates a terrain of the given size.
    pub fn new(width: f64, height: f64) -> Self {
        Terrain { width, height }
    }

    /// The 50 m × 50 m terrain used in the paper's evaluation (§7.1).
    pub fn paper_default() -> Self {
        Terrain::new(50.0, 50.0)
    }

    /// Returns `true` if the position lies inside the terrain (inclusive).
    pub fn contains(&self, p: &Position) -> bool {
        p.x >= 0.0 && p.x <= self.width && p.y >= 0.0 && p.y <= self.height
    }

    /// Clamps a position into the terrain.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Terrain area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

impl Default for Terrain {
    fn default() -> Self {
        Terrain::paper_default()
    }
}

/// A rectangular grid of `cols × rows` cells over an axis-aligned extent,
/// used to tile a deployment into spatial regions (the partitioned
/// simulator's unit of parallelism).
///
/// Cells are indexed row-major; positions outside the extent are clamped to
/// the nearest cell, so every position maps to exactly one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridTiling {
    origin: Position,
    cell_width: f64,
    cell_height: f64,
    cols: usize,
    rows: usize,
}

impl GridTiling {
    /// Tiles the extent starting at `origin` with `cols × rows` cells.
    ///
    /// A degenerate extent (zero width or height) is valid: the collapsed
    /// axis maps every position to its first cell.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or if the extent is negative or
    /// non-finite.
    pub fn new(origin: Position, width: f64, height: f64, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "a grid tiling needs at least one cell");
        assert!(
            width >= 0.0 && height >= 0.0 && width.is_finite() && height.is_finite(),
            "a grid tiling's extent must be finite and non-negative"
        );
        GridTiling {
            origin,
            cell_width: width / cols as f64,
            cell_height: height / rows as f64,
            cols,
            rows,
        }
    }

    /// Number of cell columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The row-major cell index of a position (clamped into the extent).
    pub fn cell_of(&self, p: &Position) -> usize {
        let axis = |offset: f64, cell: f64, count: usize| -> usize {
            if cell <= 0.0 {
                return 0;
            }
            ((offset / cell).floor().max(0.0) as usize).min(count - 1)
        };
        let col = axis(p.x - self.origin.x, self.cell_width, self.cols);
        let row = axis(p.y - self.origin.y, self.cell_height, self.rows);
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Position::new(1.5, -2.0);
        let b = Position::new(-3.0, 7.25);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Position::new(2.0, 3.0);
        let b = Position::new(5.0, 7.0);
        assert!((a.distance_squared(&b) - 25.0).abs() < 1e-12);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 20.0);
        let m = a.midpoint(&b);
        assert_eq!(m, Position::new(5.0, 10.0));
    }

    #[test]
    fn terrain_contains_and_clamps() {
        let t = Terrain::paper_default();
        assert!(t.contains(&Position::new(0.0, 0.0)));
        assert!(t.contains(&Position::new(50.0, 50.0)));
        assert!(!t.contains(&Position::new(50.1, 10.0)));
        assert_eq!(t.clamp(Position::new(-1.0, 60.0)), Position::new(0.0, 50.0));
        assert_eq!(t.area(), 2500.0);
    }

    #[test]
    fn position_from_tuple() {
        let p: Position = (1.0, 2.0).into();
        assert_eq!(p, Position::new(1.0, 2.0));
    }

    #[test]
    fn grid_tiling_maps_positions_row_major_and_clamps() {
        let g = GridTiling::new(Position::new(10.0, 20.0), 40.0, 20.0, 4, 2);
        assert_eq!((g.cols(), g.rows(), g.cell_count()), (4, 2, 8));
        // Cell (0,0) starts at the origin.
        assert_eq!(g.cell_of(&Position::new(10.0, 20.0)), 0);
        // One cell right, one row down.
        assert_eq!(g.cell_of(&Position::new(21.0, 20.0)), 1);
        assert_eq!(g.cell_of(&Position::new(10.0, 31.0)), 4);
        // The far corner lands in the last cell, not out of range.
        assert_eq!(g.cell_of(&Position::new(50.0, 40.0)), 7);
        // Outside positions clamp to the nearest cell.
        assert_eq!(g.cell_of(&Position::new(-5.0, 100.0)), 4);
    }

    #[test]
    fn degenerate_grid_extents_collapse_to_the_first_cell() {
        let g = GridTiling::new(Position::new(0.0, 0.0), 0.0, 10.0, 3, 2);
        assert_eq!(g.cell_of(&Position::new(0.0, 6.0)), 3);
        assert_eq!(g.cell_of(&Position::new(99.0, 0.0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cell_grids_are_rejected() {
        let _ = GridTiling::new(Position::new(0.0, 0.0), 1.0, 1.0, 0, 1);
    }
}
