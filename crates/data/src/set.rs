//! Point collections used by the protocol.
//!
//! A [`PointSet`] is a set of [`DataPoint`]s keyed by their identity
//! ([`PointKey`], the paper's `x.rest` equality). It backs every per-node
//! collection of the algorithms: the local data `D_i`, the working set `P_i`,
//! and the per-neighbour bookkeeping sets `D^i_{i,j}` and `D^i_{j,i}`.
//!
//! The set also implements the hop-minimisation semantics of the semi-global
//! algorithm (§6): when two copies of the same observation meet, only the one
//! with the smaller hop count is retained (`[Q]^min` in the paper).
//!
//! # Shared storage
//!
//! Points are stored behind [`Arc`] handles. Set-level operations that used
//! to deep-copy every point — [`PointSet::union`], [`PointSet::difference`],
//! [`PointSet::filter_max_hop`], [`Clone`] — now only bump reference counts:
//! the feature vectors themselves are allocated once and shared between the
//! window, the per-neighbour bookkeeping sets and any derived set. Callers
//! that already hold an `Arc<DataPoint>` can insert it without copying via
//! [`PointSet::insert_arc`] / [`PointSet::insert_min_hop_arc`]. Because
//! [`DataPoint`] values are never mutated in place once inserted, the
//! sharing is observationally invisible: all by-value accessors behave
//! exactly as before.

use crate::point::{DataPoint, HopCount, PointKey, Timestamp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Outcome of inserting a point into a [`PointSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The observation was not present; it has been added.
    Added,
    /// The observation was present with a larger hop count; the stored copy
    /// was replaced by the lower-hop copy.
    HopLowered {
        /// The hop count that was stored before the replacement.
        previous_hop: HopCount,
    },
    /// The observation was already present with an equal or smaller hop
    /// count; nothing changed.
    AlreadyPresent,
}

impl InsertOutcome {
    /// Returns `true` if the set changed (a point was added or replaced).
    pub fn changed(self) -> bool {
        !matches!(self, InsertOutcome::AlreadyPresent)
    }
}

/// An ordered set of data points keyed by observation identity.
///
/// Iteration order is deterministic (ascending [`PointKey`]), which keeps the
/// whole simulation reproducible for a fixed seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointSet {
    points: BTreeMap<PointKey, Arc<DataPoint>>,
}

impl PointSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PointSet { points: BTreeMap::new() }
    }

    /// Number of points in the set.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns `true` if an observation with this identity is present.
    pub fn contains_key(&self, key: &PointKey) -> bool {
        self.points.contains_key(key)
    }

    /// Returns `true` if this exact point's identity is present.
    pub fn contains(&self, point: &DataPoint) -> bool {
        self.points.contains_key(&point.key)
    }

    /// Looks up a point by identity.
    pub fn get(&self, key: &PointKey) -> Option<&DataPoint> {
        self.points.get(key).map(|p| p.as_ref())
    }

    /// Looks up the shared handle of a point by identity. Cloning the
    /// returned [`Arc`] shares the stored allocation instead of copying the
    /// point.
    pub fn get_arc(&self, key: &PointKey) -> Option<&Arc<DataPoint>> {
        self.points.get(key)
    }

    /// Inserts a point, ignoring hop counts: the stored copy is replaced
    /// unconditionally if the identity is new, and left untouched otherwise.
    ///
    /// This is the insertion used by the global algorithm (§5), where hop
    /// counts play no role. Returns `true` if the point was not present.
    pub fn insert(&mut self, point: DataPoint) -> bool {
        self.insert_arc(Arc::new(point))
    }

    /// [`PointSet::insert`] for a point the caller already holds behind an
    /// [`Arc`]: the allocation is shared, never copied.
    pub fn insert_arc(&mut self, point: Arc<DataPoint>) -> bool {
        match self.points.entry(point.key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(point);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Inserts a point with the min-hop semantics of the semi-global
    /// algorithm (§6): an already-present observation is replaced only if the
    /// incoming copy has a strictly smaller hop count.
    pub fn insert_min_hop(&mut self, point: DataPoint) -> InsertOutcome {
        self.insert_min_hop_arc(Arc::new(point))
    }

    /// [`PointSet::insert_min_hop`] for a point already behind an [`Arc`].
    pub fn insert_min_hop_arc(&mut self, point: Arc<DataPoint>) -> InsertOutcome {
        match self.points.entry(point.key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(point);
                InsertOutcome::Added
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let existing_hop = e.get().hop;
                if point.hop < existing_hop {
                    e.insert(point);
                    InsertOutcome::HopLowered { previous_hop: existing_hop }
                } else {
                    InsertOutcome::AlreadyPresent
                }
            }
        }
    }

    /// Removes a point by identity, returning it if present.
    pub fn remove(&mut self, key: &PointKey) -> Option<DataPoint> {
        self.points.remove(key).map(unwrap_or_clone)
    }

    /// Removes a point by identity without materialising it — use this when
    /// the removed value is not needed, so a copy shared with another set is
    /// never cloned just to be dropped. Returns `true` if a point was
    /// removed.
    pub fn discard(&mut self, key: &PointKey) -> bool {
        self.points.remove(key).is_some()
    }

    /// Keeps only the points for which the predicate returns `true`.
    pub fn retain<F: FnMut(&DataPoint) -> bool>(&mut self, mut keep: F) {
        self.points.retain(|_, p| keep(p.as_ref()));
    }

    /// Removes every point whose timestamp is strictly older than `cutoff`
    /// and returns how many points were evicted. This implements the sliding
    /// window eviction of §5.3 (points are evicted regardless of origin).
    pub fn evict_older_than(&mut self, cutoff: Timestamp) -> usize {
        let before = self.points.len();
        self.points.retain(|_, p| p.timestamp >= cutoff);
        before - self.points.len()
    }

    /// Removes every point originating at the given sensor (used when a
    /// sensor is explicitly removed from the network, §5.3).
    pub fn remove_origin(&mut self, origin: crate::point::SensorId) -> usize {
        let before = self.points.len();
        self.points.retain(|k, _| k.origin != origin);
        before - self.points.len()
    }

    /// Iterates over the points in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = &DataPoint> + Clone {
        self.points.values().map(|p| p.as_ref())
    }

    /// Iterates over the shared handles in deterministic (key) order, for
    /// callers that want to move points into another set without copying.
    pub fn iter_arcs(&self) -> impl Iterator<Item = &Arc<DataPoint>> + Clone {
        self.points.values()
    }

    /// Iterates over the identities in deterministic order.
    pub fn keys(&self) -> impl Iterator<Item = &PointKey> + Clone {
        self.points.keys()
    }

    /// Returns the points as a vector (deterministic order).
    pub fn to_vec(&self) -> Vec<DataPoint> {
        self.iter().cloned().collect()
    }

    /// Set union, ignoring hop counts (first occurrence wins). The result
    /// shares the stored points of both operands.
    pub fn union(&self, other: &PointSet) -> PointSet {
        let mut out = self.clone();
        for p in other.iter_arcs() {
            out.insert_arc(Arc::clone(p));
        }
        out
    }

    /// Set union with min-hop merge (`[Q]^min` applied to the union).
    pub fn union_min_hop(&self, other: &PointSet) -> PointSet {
        let mut out = self.clone();
        for p in other.iter_arcs() {
            out.insert_min_hop_arc(Arc::clone(p));
        }
        out
    }

    /// Extends this set in place, ignoring hop counts, sharing the other
    /// set's stored points.
    pub fn extend_from(&mut self, other: &PointSet) {
        for p in other.iter_arcs() {
            self.insert_arc(Arc::clone(p));
        }
    }

    /// Points of `self` whose identity is *not* present in `other`
    /// (set difference by identity). The result shares `self`'s points.
    pub fn difference(&self, other: &PointSet) -> PointSet {
        let mut out = PointSet::new();
        for p in self.iter_arcs() {
            if !other.contains_key(&p.key) {
                out.insert_arc(Arc::clone(p));
            }
        }
        out
    }

    /// Returns `true` if every identity in `self` is also in `other`.
    pub fn is_subset_of(&self, other: &PointSet) -> bool {
        self.keys().all(|k| other.contains_key(k))
    }

    /// The subset of points with hop count `<= max_hop` (the paper's
    /// `Q^{<=h}`). The result shares `self`'s points.
    pub fn filter_max_hop(&self, max_hop: HopCount) -> PointSet {
        let mut out = PointSet::new();
        for p in self.iter_arcs() {
            if p.hop <= max_hop {
                out.insert_arc(Arc::clone(p));
            }
        }
        out
    }

    /// Sum of the wire sizes of all contained points, in bytes.
    pub fn wire_size(&self) -> usize {
        self.iter().map(DataPoint::wire_size).sum()
    }
}

impl fmt::Display for PointSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<DataPoint> for PointSet {
    fn from_iter<I: IntoIterator<Item = DataPoint>>(iter: I) -> Self {
        let mut s = PointSet::new();
        for p in iter {
            s.insert_min_hop(p);
        }
        s
    }
}

impl Extend<DataPoint> for PointSet {
    fn extend<I: IntoIterator<Item = DataPoint>>(&mut self, iter: I) {
        for p in iter {
            self.insert_min_hop(p);
        }
    }
}

/// Takes the point out of the handle without copying when this is the last
/// reference, cloning otherwise (the pre-1.76 `Arc::unwrap_or_clone`).
fn unwrap_or_clone(point: Arc<DataPoint>) -> DataPoint {
    Arc::try_unwrap(point).unwrap_or_else(|shared| (*shared).clone())
}

fn deref_arc(point: &Arc<DataPoint>) -> &DataPoint {
    point.as_ref()
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a DataPoint;
    type IntoIter = std::iter::Map<
        std::collections::btree_map::Values<'a, PointKey, Arc<DataPoint>>,
        fn(&'a Arc<DataPoint>) -> &'a DataPoint,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.points.values().map(deref_arc)
    }
}

impl IntoIterator for PointSet {
    type Item = DataPoint;
    type IntoIter = std::iter::Map<
        std::collections::btree_map::IntoValues<PointKey, Arc<DataPoint>>,
        fn(Arc<DataPoint>) -> DataPoint,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_values().map(unwrap_or_clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Epoch, SensorId};

    fn pt(origin: u32, epoch: u64, value: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::from_secs(epoch), vec![value])
            .unwrap()
    }

    #[test]
    fn insert_deduplicates_by_identity() {
        let mut s = PointSet::new();
        assert!(s.insert(pt(1, 0, 5.0)));
        assert!(!s.insert(pt(1, 0, 5.0)));
        assert!(s.insert(pt(1, 1, 5.0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&pt(1, 0, 5.0)));
    }

    #[test]
    fn insert_min_hop_keeps_smallest_hop() {
        let mut s = PointSet::new();
        assert_eq!(s.insert_min_hop(pt(1, 0, 5.0).with_hop(3)), InsertOutcome::Added);
        assert_eq!(
            s.insert_min_hop(pt(1, 0, 5.0).with_hop(1)),
            InsertOutcome::HopLowered { previous_hop: 3 }
        );
        assert_eq!(s.insert_min_hop(pt(1, 0, 5.0).with_hop(2)), InsertOutcome::AlreadyPresent);
        assert_eq!(s.get(&pt(1, 0, 5.0).key).unwrap().hop, 1);
        assert_eq!(s.len(), 1);
        assert!(InsertOutcome::Added.changed());
        assert!(!InsertOutcome::AlreadyPresent.changed());
    }

    #[test]
    fn union_and_difference_operate_on_identity() {
        let a: PointSet = vec![pt(1, 0, 1.0), pt(1, 1, 2.0)].into_iter().collect();
        let b: PointSet = vec![pt(1, 1, 2.0), pt(2, 0, 3.0)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&pt(1, 0, 1.0)));
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn union_min_hop_prefers_lower_hop_copies() {
        let a: PointSet = vec![pt(1, 0, 1.0).with_hop(4)].into_iter().collect();
        let b: PointSet = vec![pt(1, 0, 1.0).with_hop(2)].into_iter().collect();
        let u = a.union_min_hop(&b);
        assert_eq!(u.get(&pt(1, 0, 1.0).key).unwrap().hop, 2);
    }

    #[test]
    fn evict_older_than_removes_only_stale_points() {
        let mut s: PointSet =
            vec![pt(1, 1, 1.0), pt(1, 5, 2.0), pt(2, 9, 3.0)].into_iter().collect();
        let evicted = s.evict_older_than(Timestamp::from_secs(5));
        assert_eq!(evicted, 1);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&pt(1, 1, 1.0)));
        assert!(s.contains(&pt(1, 5, 2.0)));
    }

    #[test]
    fn remove_origin_drops_only_that_sensor() {
        let mut s: PointSet =
            vec![pt(1, 0, 1.0), pt(2, 0, 2.0), pt(1, 1, 3.0)].into_iter().collect();
        assert_eq!(s.remove_origin(SensorId(1)), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&pt(2, 0, 2.0)));
    }

    #[test]
    fn filter_max_hop_selects_prefix() {
        let s: PointSet =
            vec![pt(1, 0, 1.0).with_hop(0), pt(1, 1, 2.0).with_hop(1), pt(1, 2, 3.0).with_hop(2)]
                .into_iter()
                .collect();
        assert_eq!(s.filter_max_hop(0).len(), 1);
        assert_eq!(s.filter_max_hop(1).len(), 2);
        assert_eq!(s.filter_max_hop(5).len(), 3);
    }

    #[test]
    fn iteration_is_deterministic_and_sorted_by_key() {
        let s: PointSet =
            vec![pt(3, 0, 1.0), pt(1, 5, 2.0), pt(1, 2, 3.0), pt(2, 0, 4.0)].into_iter().collect();
        let keys: Vec<_> = s.keys().cloned().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn remove_and_retain_work() {
        let mut s: PointSet = vec![pt(1, 0, 1.0), pt(1, 1, 5.0)].into_iter().collect();
        assert!(s.remove(&pt(1, 0, 1.0).key).is_some());
        assert!(s.remove(&pt(1, 0, 1.0).key).is_none());
        s.retain(|p| p.features[0] < 3.0);
        assert!(s.is_empty());
    }

    #[test]
    fn discard_drops_without_materialising() {
        let mut s: PointSet = vec![pt(1, 0, 1.0)].into_iter().collect();
        assert!(s.discard(&pt(1, 0, 1.0).key));
        assert!(!s.discard(&pt(1, 0, 1.0).key));
        assert!(s.is_empty());
    }

    #[test]
    fn wire_size_sums_points() {
        let s: PointSet = vec![pt(1, 0, 1.0), pt(1, 1, 5.0)].into_iter().collect();
        assert_eq!(s.wire_size(), 2 * pt(1, 0, 1.0).wire_size());
    }

    #[test]
    fn derived_sets_share_storage_instead_of_copying() {
        let a: PointSet = vec![pt(1, 0, 1.0), pt(1, 1, 2.0)].into_iter().collect();
        let b: PointSet = vec![pt(2, 0, 3.0)].into_iter().collect();
        let key = pt(1, 0, 1.0).key;
        let union = a.union(&b);
        assert!(std::sync::Arc::ptr_eq(union.get_arc(&key).unwrap(), a.get_arc(&key).unwrap()));
        let diff = a.difference(&b);
        assert!(std::sync::Arc::ptr_eq(diff.get_arc(&key).unwrap(), a.get_arc(&key).unwrap()));
        let prefix = a.filter_max_hop(0);
        assert!(std::sync::Arc::ptr_eq(prefix.get_arc(&key).unwrap(), a.get_arc(&key).unwrap()));
        let copy = a.clone();
        assert!(std::sync::Arc::ptr_eq(copy.get_arc(&key).unwrap(), a.get_arc(&key).unwrap()));
        // An Arc inserted directly is stored as-is.
        let mut c = PointSet::new();
        let handle = std::sync::Arc::new(pt(3, 0, 9.0));
        assert!(c.insert_arc(std::sync::Arc::clone(&handle)));
        assert!(std::sync::Arc::ptr_eq(c.get_arc(&handle.key).unwrap(), &handle));
        assert_eq!(c.iter_arcs().count(), 1);
    }

    #[test]
    fn display_and_conversions() {
        let s: PointSet = vec![pt(1, 0, 1.0)].into_iter().collect();
        assert!(format!("{s}").starts_with('{'));
        assert_eq!(s.to_vec().len(), 1);
        let collected: Vec<DataPoint> = s.clone().into_iter().collect();
        assert_eq!(collected.len(), 1);
        let borrowed: Vec<&DataPoint> = (&s).into_iter().collect();
        assert_eq!(borrowed.len(), 1);
        let mut e = PointSet::new();
        e.extend(vec![pt(1, 0, 1.0), pt(2, 0, 2.0)]);
        assert_eq!(e.len(), 2);
        let mut f = PointSet::new();
        f.extend_from(&e);
        assert_eq!(f.len(), 2);
    }
}
