//! The sensor data point model.
//!
//! A [`DataPoint`] is one observation sampled by a sensor: a feature vector
//! (in the paper's experiments: temperature plus the x/y location
//! coordinates), the identity of the originating sensor, the epoch (sequence
//! number within the originating stream), a sampling timestamp used by the
//! sliding window, and — for the semi-global algorithm of §6 — the number of
//! hops the point has travelled from its origin.
//!
//! Identity of a point (the paper's `x.rest`) is captured by [`PointKey`]:
//! the `(origin, epoch)` pair. Two copies of the same observation propagated
//! along different paths share the key but may differ in [`DataPoint::hop`].

use crate::error::DataError;
use crate::geometry::Position;
use std::fmt;

/// Identifier of a sensor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SensorId(pub u32);

impl SensorId {
    /// Returns the raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SensorId {
    fn from(v: u32) -> Self {
        SensorId(v)
    }
}

/// Sequence number of an observation within its originating sensor's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// Returns the raw epoch number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The next epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for Epoch {
    fn from(v: u64) -> Self {
        Epoch(v)
    }
}

/// Simulation timestamp, measured in microseconds since the start of the run.
///
/// A plain integer keeps the event queue of the simulator totally ordered and
/// free of floating-point comparison hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Zero (start of the simulation).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Builds a timestamp from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "timestamp must be finite and non-negative");
        Timestamp((secs * 1e6).round() as u64)
    }

    /// Builds a timestamp from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// The timestamp value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The timestamp value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of another timestamp, yielding a duration in
    /// microseconds.
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Adds a number of microseconds.
    pub fn advanced_by_micros(self, micros: u64) -> Timestamp {
        Timestamp(self.0 + micros)
    }

    /// Adds a fractional number of seconds.
    pub fn advanced_by_secs_f64(self, secs: f64) -> Timestamp {
        Timestamp(self.0 + (secs * 1e6).round() as u64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Hop counter used by the semi-global algorithm (§6).
pub type HopCount = u16;

/// A feature vector: the fields of the observation the ranking function sees
/// (the paper's `x.rest` value fields).
pub type FeatureVec = Vec<f64>;

/// The identity of an observation: which sensor sampled it and at which epoch.
///
/// This plays the role of the paper's `x.rest` equality: two points with the
/// same key describe the same observation, possibly with different hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PointKey {
    /// Sensor that sampled the observation.
    pub origin: SensorId,
    /// Sequence number within that sensor's stream.
    pub epoch: Epoch,
}

impl PointKey {
    /// Creates a new key.
    pub fn new(origin: SensorId, epoch: Epoch) -> Self {
        PointKey { origin, epoch }
    }
}

impl fmt::Display for PointKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.origin, self.epoch)
    }
}

/// A single sensor observation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Identity: originating sensor and epoch.
    pub key: PointKey,
    /// Feature vector fed to the ranking function. In the paper's experiments
    /// this is `[temperature, x, y]`.
    pub features: FeatureVec,
    /// Time at which the observation was sampled (drives window eviction).
    pub timestamp: Timestamp,
    /// Number of hops this copy has travelled from its origin (0 at birth).
    /// Only meaningful for the semi-global algorithm; the global algorithm
    /// ignores it.
    pub hop: HopCount,
}

impl DataPoint {
    /// Creates a fresh (hop 0) data point.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NonFiniteFeature`] if any feature is NaN or
    /// infinite — such values would break the total order `≺`.
    pub fn new(
        origin: SensorId,
        epoch: Epoch,
        timestamp: Timestamp,
        features: FeatureVec,
    ) -> Result<Self, DataError> {
        if let Some(idx) = features.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFiniteFeature { index: idx });
        }
        Ok(DataPoint { key: PointKey::new(origin, epoch), features, timestamp, hop: 0 })
    }

    /// Convenience constructor for the `[value, x, y]` layout used throughout
    /// the paper's evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NonFiniteFeature`] if the value or either
    /// coordinate is not finite.
    pub fn from_reading(
        origin: SensorId,
        epoch: Epoch,
        timestamp: Timestamp,
        value: f64,
        position: Position,
    ) -> Result<Self, DataError> {
        DataPoint::new(origin, epoch, timestamp, vec![value, position.x, position.y])
    }

    /// The number of features.
    pub fn dimension(&self) -> usize {
        self.features.len()
    }

    /// Euclidean distance between the feature vectors of two points.
    ///
    /// # Panics
    ///
    /// Panics if the two points have different dimensionality; mixing
    /// dimensionalities inside one deployment is a programming error.
    pub fn feature_distance(&self, other: &DataPoint) -> f64 {
        assert_eq!(
            self.features.len(),
            other.features.len(),
            "cannot compute distance between points of different dimensionality"
        );
        self.features
            .iter()
            .zip(other.features.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Returns a copy of this point with the hop counter incremented, as done
    /// before re-broadcasting in the semi-global algorithm.
    pub fn with_incremented_hop(&self) -> DataPoint {
        let mut p = self.clone();
        p.hop = p.hop.saturating_add(1);
        p
    }

    /// Returns a copy with an explicit hop count.
    pub fn with_hop(&self, hop: HopCount) -> DataPoint {
        let mut p = self.clone();
        p.hop = hop;
        p
    }

    /// An estimate of the number of bytes this point occupies inside a radio
    /// packet: key (4 + 8), timestamp (8), hop (2), plus 8 per feature.
    ///
    /// The energy model charges transmissions by payload size, so this is the
    /// unit of communication cost accounting used throughout the evaluation.
    pub fn wire_size(&self) -> usize {
        4 + 8 + 8 + 2 + 8 * self.features.len()
    }
}

impl fmt::Display for DataPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}h{}{:?}", self.key, self.timestamp, self.hop, self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(origin: u32, epoch: u64, features: Vec<f64>) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::from_secs(1), features).unwrap()
    }

    #[test]
    fn new_rejects_non_finite_features() {
        let err = DataPoint::new(SensorId(1), Epoch(0), Timestamp::ZERO, vec![1.0, f64::NAN, 3.0])
            .unwrap_err();
        assert_eq!(err, DataError::NonFiniteFeature { index: 1 });
        let err = DataPoint::new(SensorId(1), Epoch(0), Timestamp::ZERO, vec![f64::INFINITY])
            .unwrap_err();
        assert_eq!(err, DataError::NonFiniteFeature { index: 0 });
    }

    #[test]
    fn from_reading_builds_three_features() {
        let p = DataPoint::from_reading(
            SensorId(3),
            Epoch(7),
            Timestamp::from_secs(10),
            21.5,
            Position::new(2.0, 4.0),
        )
        .unwrap();
        assert_eq!(p.features, vec![21.5, 2.0, 4.0]);
        assert_eq!(p.dimension(), 3);
        assert_eq!(p.hop, 0);
        assert_eq!(p.key, PointKey::new(SensorId(3), Epoch(7)));
    }

    #[test]
    fn feature_distance_is_euclidean() {
        let a = pt(1, 0, vec![0.0, 0.0]);
        let b = pt(2, 0, vec![3.0, 4.0]);
        assert!((a.feature_distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.feature_distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn feature_distance_panics_on_dimension_mismatch() {
        let a = pt(1, 0, vec![0.0, 0.0]);
        let b = pt(2, 0, vec![3.0]);
        let _ = a.feature_distance(&b);
    }

    #[test]
    fn hop_increment_does_not_change_identity() {
        let a = pt(1, 5, vec![1.0]);
        let b = a.with_incremented_hop();
        assert_eq!(b.hop, 1);
        assert_eq!(a.key, b.key);
        assert_eq!(a.features, b.features);
        let c = b.with_hop(9);
        assert_eq!(c.hop, 9);
    }

    #[test]
    fn hop_increment_saturates() {
        let a = pt(1, 5, vec![1.0]).with_hop(HopCount::MAX);
        assert_eq!(a.with_incremented_hop().hop, HopCount::MAX);
    }

    #[test]
    fn wire_size_scales_with_dimension() {
        let a = pt(1, 0, vec![1.0]);
        let b = pt(1, 0, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.wire_size() - a.wire_size(), 16);
        assert!(a.wire_size() > 0);
    }

    #[test]
    fn timestamp_conversions_round_trip() {
        let t = Timestamp::from_secs_f64(12.5);
        assert_eq!(t.as_micros(), 12_500_000);
        assert!((t.as_secs_f64() - 12.5).abs() < 1e-9);
        assert_eq!(Timestamp::from_secs(3), Timestamp::from_micros(3_000_000));
        assert_eq!(t.advanced_by_secs_f64(0.5), Timestamp::from_secs(13));
        assert_eq!(Timestamp::from_secs(5).saturating_since(Timestamp::from_secs(2)), 3_000_000);
        assert_eq!(Timestamp::from_secs(2).saturating_since(Timestamp::from_secs(5)), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn timestamp_rejects_negative_seconds() {
        let _ = Timestamp::from_secs_f64(-1.0);
    }

    #[test]
    fn display_impls_are_nonempty() {
        let p = pt(4, 2, vec![1.0, 2.0]);
        assert!(!format!("{p}").is_empty());
        assert!(!format!("{}", p.key).is_empty());
        assert!(!format!("{}", SensorId(1)).is_empty());
        assert!(!format!("{}", Epoch(1)).is_empty());
        assert!(!format!("{}", Timestamp::from_secs(1)).is_empty());
    }

    #[test]
    fn ids_order_and_convert() {
        assert!(SensorId(1) < SensorId(2));
        assert!(Epoch(1) < Epoch(2));
        assert_eq!(SensorId::from(9).raw(), 9);
        assert_eq!(Epoch::from(9).raw(), 9);
        assert_eq!(Epoch(1).next(), Epoch(2));
    }
}
