//! Seeded, dependency-free random number generation.
//!
//! Every stochastic component of this repository — synthetic trace
//! generation, deployment jitter, packet loss, property tests, benchmark
//! workloads — draws from the generator defined here, so that a `(config,
//! seed)` pair fully determines an experiment. The build environment has no
//! access to external crates, and reproducibility is better served by owned
//! RNG state anyway (the seeded-deterministic-simulation discipline): the
//! stream produced for a seed is part of the repository's contract and only
//! changes when this file does.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** exactly as the reference implementation recommends, with
//! the `rand`-style helpers the rest of the workspace needs: uniform ranges,
//! Bernoulli draws, Gaussian sampling and slice shuffling.
//!
//! # Example
//!
//! ```
//! use wsn_data::rng::SeededRng;
//!
//! let mut rng = SeededRng::seed_from_u64(42);
//! let jitter = rng.gen_range(-0.8..0.8);
//! assert!((-0.8..0.8).contains(&jitter));
//! // The stream is a pure function of the seed.
//! let mut again = SeededRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(-0.8..0.8), jitter);
//! ```

use std::ops::Range;

/// SplitMix64: a tiny, full-period generator over `u64` used to expand a
/// single seed word into the larger xoshiro state (and usable on its own for
/// cheap hashing-style streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's seeded pseudo-random generator: xoshiro256++.
///
/// 256 bits of state, period `2^256 - 1`, fast and statistically strong —
/// more than enough for simulation workloads. Construct it with
/// [`SeededRng::seed_from_u64`]; the all-zero state is unreachable from any
/// seed because the SplitMix64 expansion never produces four zero words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Builds a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SeededRng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Splits off an independent generator for a sub-stream (one per sensor,
    /// one per experiment repetition, …) without disturbing the parent's
    /// reproducibility guarantees beyond consuming one draw.
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `probability` (values
    /// outside `[0, 1]` are clamped).
    pub fn gen_bool(&mut self, probability: f64) -> bool {
        if probability <= 0.0 {
            false
        } else if probability >= 1.0 {
            true
        } else {
            self.gen_f64() < probability
        }
    }

    /// A uniform draw from a half-open range, for every numeric type
    /// implementing [`UniformRange`].
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    ///
    /// ```
    /// let mut rng = wsn_data::rng::SeededRng::seed_from_u64(7);
    /// let lane = rng.gen_range(0usize..4);
    /// assert!(lane < 4);
    /// ```
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform index draw from `0..n` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index requires a non-empty range");
        self.gen_u64_below(n as u64) as usize
    }

    /// An unbiased uniform draw from `0..n`.
    fn gen_u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's widening-multiply method with rejection of the biased
        // low-product region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A Gaussian draw with the given mean and standard deviation
    /// (Box–Muller transform).
    pub fn gen_gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Draw u1 from (0, 1] so the logarithm is finite.
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * radius * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// Numeric types [`SeededRng::gen_range`] can sample uniformly from a
/// half-open range.
pub trait UniformRange: PartialOrd + Copy {
    /// Draws a uniform sample from `range` using `rng`.
    fn sample(rng: &mut SeededRng, range: Range<Self>) -> Self;
}

impl UniformRange for f64 {
    fn sample(rng: &mut SeededRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range requires a non-empty range");
        let span = range.end - range.start;
        let value = range.start + rng.gen_f64() * span;
        // Floating-point rounding can land exactly on `end`; fold it back.
        if value >= range.end {
            range.start
        } else {
            value
        }
    }
}

macro_rules! impl_uniform_range_uint {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(rng: &mut SeededRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range requires a non-empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.gen_u64_below(span) as $t
            }
        }
    )*};
}
impl_uniform_range_uint!(u32, u64, usize);

impl UniformRange for i64 {
    fn sample(rng: &mut SeededRng, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range requires a non-empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(rng.gen_u64_below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SeededRng::seed_from_u64(99);
        let mut b = SeededRng::seed_from_u64(99);
        let mut c = SeededRng::seed_from_u64(100);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = SeededRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.8..0.8);
            assert!((-0.8..0.8).contains(&v), "{v} escaped the range");
        }
    }

    #[test]
    fn integer_ranges_are_respected_and_cover_all_values() {
        let mut rng = SeededRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 should appear");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bernoulli_rate_is_close_to_p() {
        let mut rng = SeededRng::seed_from_u64(21);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SeededRng::seed_from_u64(31);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = SeededRng::seed_from_u64(41);
        let mut data: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(data, (0..50).collect::<Vec<u32>>(), "50 elements should not stay in order");
        // Deterministic per seed.
        let mut rng2 = SeededRng::seed_from_u64(41);
        let mut data2: Vec<u32> = (0..50).collect();
        rng2.shuffle(&mut data2);
        assert_eq!(data, data2);
    }

    #[test]
    fn forked_streams_diverge_from_the_parent() {
        let mut parent = SeededRng::seed_from_u64(1);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn gen_index_is_unbiased_enough() {
        let mut rng = SeededRng::seed_from_u64(77);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_index(3)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "bucket fraction {frac}");
        }
    }
}
