//! Synthetic spatio-temporally correlated sensor streams.
//!
//! The paper evaluates on the Intel Berkeley Research Lab temperature trace:
//! 53 sensors whose readings are both spatially and temporally correlated,
//! with occasional missing samples and naturally occurring outliers. The
//! original trace is not redistributable with this repository, so this module
//! generates a statistically similar workload (see DESIGN.md §4):
//!
//! * a smooth **base field** — ambient temperature plus a diurnal sinusoid
//!   plus a spatial gradient across the floor plan (spatial correlation),
//! * per-sensor **AR(1) noise** (temporal correlation),
//! * injected **anomalies**: isolated spikes, stuck-at faults, and slow
//!   drifts — the error modes §1 attributes to imperfect sensing devices and
//!   dwindling batteries,
//! * **missing readings** at a configurable rate, which the imputation stage
//!   fills back in exactly as the paper does.
//!
//! Ground truth is recorded on each reading (`injected_anomaly`) so the
//! harness can report detection accuracy.

use crate::error::DataError;
use crate::point::{Epoch, Timestamp};
use crate::rng::SeededRng;
use crate::stream::{DeploymentTrace, SensorReading, SensorSpec, SensorStream};

/// The smooth, anomaly-free environmental field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldModel {
    /// Mean temperature of the deployment, in °C.
    pub base_value: f64,
    /// Amplitude of the diurnal (daily) oscillation, in °C.
    pub diurnal_amplitude: f64,
    /// Period of the oscillation, in seconds.
    pub diurnal_period_secs: f64,
    /// Temperature gradient along x, in °C per metre (e.g. a sunny window).
    pub gradient_x: f64,
    /// Temperature gradient along y, in °C per metre.
    pub gradient_y: f64,
    /// Standard deviation of the white component of the per-sensor noise.
    pub noise_std: f64,
    /// AR(1) coefficient of the per-sensor noise (0 = white, →1 = smooth).
    pub ar1_coefficient: f64,
}

impl Default for FieldModel {
    fn default() -> Self {
        // Roughly matches the character of the Intel lab temperature data:
        // ~19-25 °C indoor temperatures, slow diurnal swing, mild spatial
        // gradient across the 50 m floor, smooth per-sensor noise.
        FieldModel {
            base_value: 21.0,
            diurnal_amplitude: 2.5,
            diurnal_period_secs: 86_400.0,
            gradient_x: 0.04,
            gradient_y: 0.02,
            noise_std: 0.15,
            ar1_coefficient: 0.9,
        }
    }
}

impl FieldModel {
    /// The noiseless field value at position `(x, y)` and time `t` seconds.
    pub fn mean_value(&self, x: f64, y: f64, t_secs: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t_secs / self.diurnal_period_secs;
        self.base_value
            + self.diurnal_amplitude * phase.sin()
            + self.gradient_x * x
            + self.gradient_y * y
    }
}

/// Anomaly injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyModel {
    /// Per-reading probability of an isolated spike.
    pub spike_probability: f64,
    /// Magnitude of a spike, in °C (sign chosen at random).
    pub spike_magnitude: f64,
    /// Per-reading probability of entering a stuck-at fault.
    pub stuck_probability: f64,
    /// How many consecutive readings a stuck-at fault lasts.
    pub stuck_duration: usize,
    /// Per-reading probability of entering a slow drift fault.
    pub drift_probability: f64,
    /// Per-reading increment of a drift fault, in °C.
    pub drift_rate: f64,
    /// How many consecutive readings a drift fault lasts.
    pub drift_duration: usize,
}

impl Default for AnomalyModel {
    fn default() -> Self {
        // Failing Intel-lab motes famously report temperatures far above the
        // physical range (100 °C and more as batteries die); a large spike
        // magnitude reproduces that failure mode so that injected anomalies
        // dominate the [value, x, y] feature space the same way they do in
        // the original trace.
        AnomalyModel {
            spike_probability: 0.01,
            spike_magnitude: 60.0,
            stuck_probability: 0.002,
            stuck_duration: 5,
            drift_probability: 0.001,
            drift_rate: 1.0,
            drift_duration: 10,
        }
    }
}

impl AnomalyModel {
    /// An anomaly model that injects nothing (clean data).
    pub fn none() -> Self {
        AnomalyModel {
            spike_probability: 0.0,
            spike_magnitude: 0.0,
            stuck_probability: 0.0,
            stuck_duration: 0,
            drift_probability: 0.0,
            drift_rate: 0.0,
            drift_duration: 0,
        }
    }
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceConfig {
    /// Seconds between consecutive samples of each sensor.
    pub sample_interval_secs: f64,
    /// How many sampling rounds to generate.
    pub rounds: usize,
    /// The smooth environmental field.
    pub field: FieldModel,
    /// Anomaly injection parameters.
    pub anomalies: AnomalyModel,
    /// Per-reading probability that the reading is missing from the trace.
    pub missing_probability: f64,
}

impl Default for SyntheticTraceConfig {
    fn default() -> Self {
        SyntheticTraceConfig {
            sample_interval_secs: 30.0,
            rounds: 64,
            field: FieldModel::default(),
            anomalies: AnomalyModel::default(),
            missing_probability: 0.02,
        }
    }
}

impl SyntheticTraceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for non-positive intervals,
    /// zero rounds, or probabilities outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), DataError> {
        if !self.sample_interval_secs.is_finite() || self.sample_interval_secs <= 0.0 {
            return Err(DataError::InvalidParameter("sample interval must be positive".into()));
        }
        if self.rounds == 0 {
            return Err(DataError::InvalidParameter("rounds must be at least 1".into()));
        }
        for (name, p) in [
            ("missing_probability", self.missing_probability),
            ("spike_probability", self.anomalies.spike_probability),
            ("stuck_probability", self.anomalies.stuck_probability),
            ("drift_probability", self.anomalies.drift_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DataError::InvalidParameter(format!("{name} must be in [0, 1]")));
            }
        }
        Ok(())
    }
}

/// Internal per-sensor fault state for the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultState {
    Healthy,
    Stuck { value: f64, remaining: usize },
    Drifting { offset: f64, remaining: usize },
}

/// Generates a [`DeploymentTrace`] for the given sensors.
///
/// The generator is fully deterministic for a given `(config, sensors, seed)`
/// triple, which keeps every experiment reproducible.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the configuration does not
/// validate.
pub fn generate_trace(
    config: &SyntheticTraceConfig,
    sensors: &[SensorSpec],
    seed: u64,
) -> Result<DeploymentTrace, DataError> {
    config.validate()?;
    let mut trace = DeploymentTrace::new(config.sample_interval_secs)?;
    for (idx, spec) in sensors.iter().enumerate() {
        // Give each sensor an independent but reproducible RNG stream.
        let mut rng =
            SeededRng::seed_from_u64(seed ^ ((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut stream = SensorStream::new(*spec);
        let mut ar_noise = 0.0_f64;
        let mut fault = FaultState::Healthy;
        for round in 0..config.rounds {
            let t_secs = round as f64 * config.sample_interval_secs;
            let timestamp = Timestamp::from_secs_f64(t_secs);
            let epoch = Epoch(round as u64);

            // Temporal correlation: AR(1) noise.
            let white: f64 = rng.gen_range(-1.0..1.0) * config.field.noise_std;
            ar_noise = config.field.ar1_coefficient * ar_noise + white;
            let clean =
                config.field.mean_value(spec.position.x, spec.position.y, t_secs) + ar_noise;

            // Fault-state machine.
            let (value, anomalous) = match fault {
                FaultState::Healthy => {
                    if rng.gen_bool(config.anomalies.spike_probability) {
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        (clean + sign * config.anomalies.spike_magnitude, true)
                    } else if config.anomalies.stuck_duration > 0
                        && rng.gen_bool(config.anomalies.stuck_probability)
                    {
                        fault = FaultState::Stuck {
                            value: clean,
                            remaining: config.anomalies.stuck_duration,
                        };
                        (clean, true)
                    } else if config.anomalies.drift_duration > 0
                        && rng.gen_bool(config.anomalies.drift_probability)
                    {
                        fault = FaultState::Drifting {
                            offset: config.anomalies.drift_rate,
                            remaining: config.anomalies.drift_duration,
                        };
                        (clean + config.anomalies.drift_rate, true)
                    } else {
                        (clean, false)
                    }
                }
                FaultState::Stuck { value, remaining } => {
                    fault = if remaining <= 1 {
                        FaultState::Healthy
                    } else {
                        FaultState::Stuck { value, remaining: remaining - 1 }
                    };
                    (value, true)
                }
                FaultState::Drifting { offset, remaining } => {
                    let next_offset = offset + config.anomalies.drift_rate;
                    fault = if remaining <= 1 {
                        FaultState::Healthy
                    } else {
                        FaultState::Drifting { offset: next_offset, remaining: remaining - 1 }
                    };
                    (clean + offset, true)
                }
            };

            let reading = if rng.gen_bool(config.missing_probability) {
                SensorReading::missing(epoch, timestamp)
            } else {
                SensorReading::present(epoch, timestamp, value).with_anomaly_flag(anomalous)
            };
            stream.readings.push(reading);
        }
        trace.streams.push(stream);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;
    use crate::point::SensorId;

    fn sensors(n: u32) -> Vec<SensorSpec> {
        (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64, (i * 2) as f64)))
            .collect()
    }

    #[test]
    fn field_mean_reflects_gradient_and_diurnal_cycle() {
        let f = FieldModel::default();
        let at_origin = f.mean_value(0.0, 0.0, 0.0);
        let far_corner = f.mean_value(50.0, 50.0, 0.0);
        assert!(far_corner > at_origin);
        let quarter_day = f.mean_value(0.0, 0.0, f.diurnal_period_secs / 4.0);
        assert!((quarter_day - at_origin - f.diurnal_amplitude).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = SyntheticTraceConfig { rounds: 20, ..Default::default() };
        let a = generate_trace(&cfg, &sensors(5), 7).unwrap();
        let b = generate_trace(&cfg, &sensors(5), 7).unwrap();
        let c = generate_trace(&cfg, &sensors(5), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_shape_matches_config() {
        let cfg = SyntheticTraceConfig { rounds: 12, ..Default::default() };
        let t = generate_trace(&cfg, &sensors(4), 1).unwrap();
        assert_eq!(t.sensor_count(), 4);
        assert_eq!(t.round_count(), 12);
        for s in &t.streams {
            assert_eq!(s.len(), 12);
        }
    }

    #[test]
    fn clean_config_injects_nothing_and_loses_nothing() {
        let cfg = SyntheticTraceConfig {
            rounds: 50,
            anomalies: AnomalyModel::none(),
            missing_probability: 0.0,
            ..Default::default()
        };
        let t = generate_trace(&cfg, &sensors(3), 3).unwrap();
        assert_eq!(t.anomaly_fraction(), 0.0);
        for s in &t.streams {
            assert_eq!(s.missing_fraction(), 0.0);
        }
    }

    #[test]
    fn anomalies_and_gaps_appear_at_roughly_the_configured_rate() {
        let cfg = SyntheticTraceConfig {
            rounds: 400,
            anomalies: AnomalyModel { spike_probability: 0.05, ..AnomalyModel::none() },
            missing_probability: 0.1,
            ..Default::default()
        };
        let t = generate_trace(&cfg, &sensors(10), 11).unwrap();
        let frac = t.anomaly_fraction();
        assert!(frac > 0.01 && frac < 0.15, "spike fraction {frac} out of range");
        let missing: f64 =
            t.streams.iter().map(|s| s.missing_fraction()).sum::<f64>() / t.sensor_count() as f64;
        assert!(missing > 0.05 && missing < 0.2, "missing fraction {missing} out of range");
    }

    #[test]
    fn spikes_are_large_relative_to_noise() {
        let cfg = SyntheticTraceConfig {
            rounds: 300,
            anomalies: AnomalyModel {
                spike_probability: 0.02,
                spike_magnitude: 20.0,
                ..AnomalyModel::none()
            },
            missing_probability: 0.0,
            ..Default::default()
        };
        let t = generate_trace(&cfg, &sensors(5), 5).unwrap();
        // Every injected spike deviates from the clean field by ~spike_magnitude.
        let mut spike_count = 0;
        for s in &t.streams {
            for r in &s.readings {
                if r.injected_anomaly {
                    let clean = cfg.field.mean_value(
                        s.spec.position.x,
                        s.spec.position.y,
                        r.timestamp.as_secs_f64(),
                    );
                    assert!((r.value.unwrap() - clean).abs() > 10.0);
                    spike_count += 1;
                }
            }
        }
        assert!(spike_count > 0);
    }

    #[test]
    fn stuck_faults_repeat_the_same_value() {
        let cfg = SyntheticTraceConfig {
            rounds: 500,
            anomalies: AnomalyModel {
                stuck_probability: 0.02,
                stuck_duration: 4,
                ..AnomalyModel::none()
            },
            missing_probability: 0.0,
            ..Default::default()
        };
        let t = generate_trace(&cfg, &sensors(3), 17).unwrap();
        // Find at least one run of >= 3 identical consecutive anomalous values.
        let mut found_run = false;
        for s in &t.streams {
            let vals: Vec<(f64, bool)> =
                s.readings.iter().map(|r| (r.value.unwrap(), r.injected_anomaly)).collect();
            for w in vals.windows(3) {
                if w.iter().all(|(_, a)| *a) && w[0].0 == w[1].0 && w[1].0 == w[2].0 {
                    found_run = true;
                }
            }
        }
        assert!(found_run, "expected at least one stuck-at run");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = SyntheticTraceConfig { rounds: 0, ..Default::default() };
        assert!(generate_trace(&cfg, &sensors(2), 1).is_err());
        let cfg = SyntheticTraceConfig { sample_interval_secs: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = SyntheticTraceConfig { missing_probability: 1.5, ..Default::default() };
        assert!(cfg.validate().is_err());
        let mut cfg = SyntheticTraceConfig::default();
        cfg.anomalies.spike_probability = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn neighbouring_sensors_are_spatially_correlated() {
        // Two sensors 1 m apart should produce much more similar streams than
        // two sensors 50 m apart (gradient dominates the noise).
        let specs = vec![
            SensorSpec::new(SensorId(0), Position::new(0.0, 0.0)),
            SensorSpec::new(SensorId(1), Position::new(1.0, 0.0)),
            SensorSpec::new(SensorId(2), Position::new(50.0, 50.0)),
        ];
        let cfg = SyntheticTraceConfig {
            rounds: 100,
            anomalies: AnomalyModel::none(),
            missing_probability: 0.0,
            field: FieldModel { gradient_x: 0.2, gradient_y: 0.2, ..FieldModel::default() },
            ..Default::default()
        };
        let t = generate_trace(&cfg, &specs, 2).unwrap();
        let series = |i: usize| -> Vec<f64> {
            t.streams[i].readings.iter().map(|r| r.value.unwrap()).collect()
        };
        let mean_abs_diff = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
        };
        let near = mean_abs_diff(&series(0), &series(1));
        let far = mean_abs_diff(&series(0), &series(2));
        assert!(near < far, "near diff {near} should be < far diff {far}");
    }
}
