//! Time-based sliding window (§5.3).
//!
//! Each sensor processes its stream under a sliding-window model: every point
//! is time-stamped when sampled, and once its timestamp falls out of the
//! window it is deleted from the node's working set regardless of where it
//! originated. The paper's parameter `w` is the window length measured in
//! sampling periods.

use crate::error::DataError;
use crate::point::{DataPoint, Timestamp};
use crate::set::PointSet;
use std::sync::Arc;

/// Configuration of a sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window length in microseconds.
    pub length_micros: u64,
}

impl WindowConfig {
    /// Creates a window configuration from a length in microseconds.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyWindow`] if the length is zero.
    pub fn from_micros(length_micros: u64) -> Result<Self, DataError> {
        if length_micros == 0 {
            return Err(DataError::EmptyWindow);
        }
        Ok(WindowConfig { length_micros })
    }

    /// Creates a window configuration from a length in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyWindow`] if the length is zero.
    pub fn from_secs(secs: u64) -> Result<Self, DataError> {
        WindowConfig::from_micros(secs.saturating_mul(1_000_000))
    }

    /// Creates the window used in the paper's evaluation: `w` sampling
    /// periods of `sample_interval_secs` seconds each.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyWindow`] if either factor is zero.
    pub fn from_samples(w: u64, sample_interval_secs: f64) -> Result<Self, DataError> {
        if w == 0 || sample_interval_secs <= 0.0 {
            return Err(DataError::EmptyWindow);
        }
        WindowConfig::from_micros((w as f64 * sample_interval_secs * 1e6).round() as u64)
    }

    /// The earliest timestamp still inside the window at time `now`.
    pub fn cutoff(&self, now: Timestamp) -> Timestamp {
        Timestamp(now.0.saturating_sub(self.length_micros))
    }
}

/// A sliding window over time-stamped data points.
///
/// ```
/// use wsn_data::{DataPoint, Epoch, SensorId, Timestamp, SlidingWindow};
/// use wsn_data::window::WindowConfig;
///
/// let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
/// let old = DataPoint::new(SensorId(1), Epoch(0), Timestamp::from_secs(0), vec![1.0]).unwrap();
/// let new = DataPoint::new(SensorId(1), Epoch(1), Timestamp::from_secs(8), vec![2.0]).unwrap();
/// w.insert(old.clone());
/// w.insert(new.clone());
/// // Advancing to t=12s evicts the point sampled at t=0s.
/// let evicted = w.advance_to(Timestamp::from_secs(12));
/// assert_eq!(evicted, 1);
/// assert!(!w.contents().contains(&old));
/// assert!(w.contents().contains(&new));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    config: WindowConfig,
    /// The contents live behind an [`Arc`] so that [`SlidingWindow::snapshot`]
    /// is a reference-count bump, not a copy. Mutation goes through
    /// [`Arc::make_mut`]: copy-on-write, so the set is re-materialised only
    /// if a snapshot taken at an earlier revision is still alive when the
    /// window next changes.
    contents: Arc<PointSet>,
    now: Timestamp,
    revision: u64,
    /// The smallest timestamp currently held (`None` when empty), kept up
    /// to date on insertion and recomputed after removals. Clock advances
    /// whose cutoff does not pass this value are O(1) no-ops — the common
    /// case, since every received message advances the clock but only
    /// window slides actually evict.
    oldest: Option<Timestamp>,
}

impl SlidingWindow {
    /// Creates an empty window with the given configuration.
    pub fn new(config: WindowConfig) -> Self {
        SlidingWindow {
            config,
            contents: Arc::new(PointSet::new()),
            now: Timestamp::ZERO,
            revision: 0,
            oldest: None,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The current (latest observed) time of the window.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The points currently inside the window.
    pub fn contents(&self) -> &PointSet {
        &self.contents
    }

    /// A shared snapshot of the current contents, keyed by
    /// [`revision`](SlidingWindow::revision): cloning the returned [`Arc`] is
    /// free, and the snapshot stays valid (and immutable) even while the
    /// caller goes on to mutate other state of the node that owns the
    /// window.
    ///
    /// This is what lets the detectors' `process()` paths read `P_i` without
    /// deep-copying it: the window is only re-materialised (one copy-on-write
    /// clone) if it is mutated while a snapshot from an earlier revision is
    /// still held — detectors drop their snapshot at the end of the event,
    /// so in the steady state no copy ever happens.
    pub fn snapshot(&self) -> Arc<PointSet> {
        Arc::clone(&self.contents)
    }

    /// A counter that changes whenever [`contents`](SlidingWindow::contents)
    /// changes — on insertion, window-slide eviction and origin removal, but
    /// not on a pure clock advance that evicts nothing.
    ///
    /// Derived state computed from a window snapshot (such as a spatial
    /// neighbour index over the contents) can be cached against this value
    /// and rebuilt only when it moves.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Inserts a point if it is still inside the window at the current time.
    /// Returns `true` if the point was added.
    pub fn insert(&mut self, point: DataPoint) -> bool {
        self.insert_arc(Arc::new(point))
    }

    /// [`SlidingWindow::insert`] for a point already behind an [`Arc`]: on
    /// acceptance the allocation is shared with the caller, not copied.
    pub fn insert_arc(&mut self, point: Arc<DataPoint>) -> bool {
        if point.timestamp < self.config.cutoff(self.now) {
            return false;
        }
        let timestamp = point.timestamp;
        let changed = Arc::make_mut(&mut self.contents).insert_min_hop_arc(point).changed();
        if changed {
            self.revision += 1;
            if !self.oldest.is_some_and(|oldest| oldest <= timestamp) {
                self.oldest = Some(timestamp);
            }
        }
        changed
    }

    /// Advances the window to `now`, evicting stale points. Returns the
    /// number of evicted points. Time never moves backwards: advancing to an
    /// earlier time is a no-op, and so is any advance whose cutoff does not
    /// pass the oldest held timestamp (checked in O(1), no scan).
    pub fn advance_to(&mut self, now: Timestamp) -> usize {
        if now <= self.now {
            return 0;
        }
        self.now = now;
        let cutoff = self.config.cutoff(now);
        if !self.oldest.is_some_and(|oldest| oldest < cutoff) {
            return 0;
        }
        let evicted = Arc::make_mut(&mut self.contents).evict_older_than(cutoff);
        if evicted > 0 {
            self.revision += 1;
        }
        self.refresh_oldest();
        evicted
    }

    /// Recomputes the cached oldest timestamp after removals.
    fn refresh_oldest(&mut self) {
        self.oldest = self.contents.iter().map(|p| p.timestamp).min();
    }

    /// Reassembles a window from externally persisted parts — the inverse of
    /// reading [`config`](SlidingWindow::config),
    /// [`contents`](SlidingWindow::contents), [`now`](SlidingWindow::now) and
    /// [`revision`](SlidingWindow::revision) off a live window. The cached
    /// oldest-timestamp gate is rederived from the contents.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if any point lies before the
    /// window's cutoff at `now` — such a point could never have been inside a
    /// live window, so the parts are corrupt, not merely stale.
    pub fn from_parts(
        config: WindowConfig,
        contents: PointSet,
        now: Timestamp,
        revision: u64,
    ) -> Result<Self, DataError> {
        let cutoff = config.cutoff(now);
        if let Some(stale) = contents.iter().find(|p| p.timestamp < cutoff) {
            return Err(DataError::InvalidParameter(format!(
                "window point {:?} at {}us lies before the cutoff {}us",
                stale.key,
                stale.timestamp.as_micros(),
                cutoff.as_micros()
            )));
        }
        let oldest = contents.iter().map(|p| p.timestamp).min();
        Ok(SlidingWindow { config, contents: Arc::new(contents), now, revision, oldest })
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// Returns `true` if the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// Removes every point originating at `origin` (sensor removal, §5.3).
    pub fn remove_origin(&mut self, origin: crate::point::SensorId) -> usize {
        if Arc::get_mut(&mut self.contents).is_none()
            && !self.contents.iter().any(|p| p.key.origin == origin)
        {
            return 0;
        }
        let removed = Arc::make_mut(&mut self.contents).remove_origin(origin);
        if removed > 0 {
            self.revision += 1;
            self.refresh_oldest();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Epoch, SensorId};

    fn pt(origin: u32, epoch: u64, secs: u64) -> DataPoint {
        DataPoint::new(
            SensorId(origin),
            Epoch(epoch),
            Timestamp::from_secs(secs),
            vec![epoch as f64],
        )
        .unwrap()
    }

    #[test]
    fn config_rejects_zero_length() {
        assert_eq!(WindowConfig::from_micros(0).unwrap_err(), DataError::EmptyWindow);
        assert_eq!(WindowConfig::from_secs(0).unwrap_err(), DataError::EmptyWindow);
        assert_eq!(WindowConfig::from_samples(0, 1.0).unwrap_err(), DataError::EmptyWindow);
        assert_eq!(WindowConfig::from_samples(5, 0.0).unwrap_err(), DataError::EmptyWindow);
    }

    #[test]
    fn from_samples_multiplies() {
        let c = WindowConfig::from_samples(20, 2.0).unwrap();
        assert_eq!(c.length_micros, 40_000_000);
    }

    #[test]
    fn cutoff_saturates_at_zero() {
        let c = WindowConfig::from_secs(10).unwrap();
        assert_eq!(c.cutoff(Timestamp::from_secs(3)), Timestamp::ZERO);
        assert_eq!(c.cutoff(Timestamp::from_secs(25)), Timestamp::from_secs(15));
    }

    #[test]
    fn advance_evicts_stale_points() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.insert(pt(1, 0, 0));
        w.insert(pt(1, 1, 5));
        w.insert(pt(2, 0, 9));
        assert_eq!(w.len(), 3);
        assert_eq!(w.advance_to(Timestamp::from_secs(14)), 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.advance_to(Timestamp::from_secs(18)), 1);
        assert_eq!(w.len(), 1);
        assert!(w.contents().contains(&pt(2, 0, 9)));
    }

    #[test]
    fn time_never_moves_backwards() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.advance_to(Timestamp::from_secs(30));
        assert_eq!(w.now(), Timestamp::from_secs(30));
        assert_eq!(w.advance_to(Timestamp::from_secs(20)), 0);
        assert_eq!(w.now(), Timestamp::from_secs(30));
    }

    #[test]
    fn stale_points_are_not_inserted() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.advance_to(Timestamp::from_secs(100));
        assert!(!w.insert(pt(1, 0, 5)));
        assert!(w.insert(pt(1, 1, 95)));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn duplicate_insert_reports_no_change() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        assert!(w.insert(pt(1, 0, 1)));
        assert!(!w.insert(pt(1, 0, 1)));
    }

    #[test]
    fn revision_moves_only_when_the_contents_change() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        let r0 = w.revision();
        assert!(w.insert(pt(1, 0, 1)));
        assert!(w.revision() > r0, "insertion bumps the revision");
        let r1 = w.revision();
        assert!(!w.insert(pt(1, 0, 1)));
        assert_eq!(w.revision(), r1, "duplicate insert is a no-op");
        w.advance_to(Timestamp::from_secs(5));
        assert_eq!(w.revision(), r1, "clock advance without eviction is a no-op");
        w.advance_to(Timestamp::from_secs(50));
        assert!(w.revision() > r1, "eviction bumps the revision");
        let r2 = w.revision();
        assert_eq!(w.remove_origin(SensorId(1)), 0);
        assert_eq!(w.revision(), r2, "removing an absent origin is a no-op");
        w.insert(pt(1, 9, 49));
        let r3 = w.revision();
        assert_eq!(w.remove_origin(SensorId(1)), 1);
        assert!(w.revision() > r3, "origin removal bumps the revision");
    }

    #[test]
    fn snapshots_share_until_the_window_changes() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.insert(pt(1, 0, 1));
        let snap = w.snapshot();
        assert!(Arc::ptr_eq(&snap, &w.snapshot()), "snapshots of one revision are the same set");
        // A no-op advance must not re-materialise the shared contents.
        w.advance_to(Timestamp::from_secs(5));
        assert_eq!(w.remove_origin(SensorId(9)), 0);
        assert!(Arc::ptr_eq(&snap, &w.snapshot()));
        // A mutation while the snapshot is alive copies on write: the old
        // snapshot keeps the old contents, the window moves on.
        w.insert(pt(1, 1, 2));
        assert!(!Arc::ptr_eq(&snap, &w.snapshot()));
        assert_eq!(snap.len(), 1);
        assert_eq!(w.len(), 2);
        // Once no snapshot is outstanding, mutation is in place again.
        drop(snap);
        let before = Arc::as_ptr(&w.snapshot());
        w.insert(pt(1, 2, 3));
        assert_eq!(Arc::as_ptr(&w.snapshot()), before, "unshared contents mutate in place");
    }

    #[test]
    fn insert_arc_shares_the_callers_allocation() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        let p = Arc::new(pt(1, 0, 1));
        assert!(w.insert_arc(Arc::clone(&p)));
        assert!(Arc::ptr_eq(w.contents().get_arc(&p.key).unwrap(), &p));
    }

    #[test]
    fn from_parts_round_trips_a_live_window() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.insert(pt(1, 0, 5));
        w.insert(pt(2, 0, 9));
        w.advance_to(Timestamp::from_secs(12));
        let rebuilt =
            SlidingWindow::from_parts(w.config(), w.contents().clone(), w.now(), w.revision())
                .unwrap();
        assert_eq!(rebuilt, w);
        // The rederived oldest gate still drives evictions correctly.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.advance_to(Timestamp::from_secs(16)), 1);
        assert_eq!(rebuilt.len(), 1);
    }

    #[test]
    fn from_parts_rejects_points_behind_the_cutoff() {
        let config = WindowConfig::from_secs(10).unwrap();
        let contents: PointSet = vec![pt(1, 0, 5)].into_iter().collect();
        let err =
            SlidingWindow::from_parts(config, contents, Timestamp::from_secs(100), 3).unwrap_err();
        assert!(matches!(err, DataError::InvalidParameter(_)));
    }

    #[test]
    fn remove_origin_forwards_to_contents() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(10).unwrap());
        w.insert(pt(1, 0, 1));
        w.insert(pt(2, 0, 1));
        assert_eq!(w.remove_origin(SensorId(1)), 1);
        assert_eq!(w.len(), 1);
    }
}
