//! # wsn-data
//!
//! Data model and workload substrate for the reproduction of *In-Network
//! Outlier Detection in Wireless Sensor Networks* (Branch et al., ICDCS 2006).
//!
//! This crate provides everything the detection algorithms and the network
//! simulator need to talk about data:
//!
//! * [`point::DataPoint`] — a time-stamped, multi-feature sensor observation
//!   carrying the identity of the sensor that sampled it and (for the
//!   semi-global algorithm) a hop counter,
//! * [`order`] — the tie-breaking total linear order `≺` the paper assumes so
//!   that ranking functions become injective,
//! * [`set::PointSet`] — the point collections (`D_i`, `P_i`, `D^i_{i,j}`, …)
//!   manipulated by the protocol, with the min-hop merge semantics of §6,
//! * [`window::SlidingWindow`] — the time-based sliding window of §5.3,
//! * [`stream`] — per-sensor sample streams and whole-deployment traces,
//! * [`impute`] — sliding-window-mean imputation of missing readings (§7.1),
//! * [`rng`] — the workspace's seeded, dependency-free random number
//!   generator (SplitMix64-seeded xoshiro256++),
//! * [`synth`] — a spatio-temporally correlated synthetic temperature field
//!   with injected anomalies, and
//! * [`lab`] — a 53-sensor Intel-Berkeley-lab-like deployment on a
//!   50 m × 50 m floor plan (the substitution for the paper's real trace).
//!
//! # Example
//!
//! ```
//! use wsn_data::lab::LabDeployment;
//!
//! // Build the 53-sensor deployment used throughout the evaluation.
//! let deployment = LabDeployment::standard(42);
//! assert_eq!(deployment.sensor_count(), 53);
//! // Every sensor sits inside the 50 m x 50 m terrain.
//! for s in deployment.sensors() {
//!     assert!(s.position.x >= 0.0 && s.position.x <= 50.0);
//!     assert!(s.position.y >= 0.0 && s.position.y <= 50.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod impute;
pub mod lab;
pub mod order;
pub mod point;
pub mod rng;
pub mod set;
pub mod stream;
pub mod synth;
pub mod window;

pub use error::DataError;
pub use geometry::{GridTiling, Position};
pub use point::{DataPoint, Epoch, FeatureVec, HopCount, PointKey, SensorId, Timestamp};
pub use rng::SeededRng;
pub use set::PointSet;
pub use window::SlidingWindow;
