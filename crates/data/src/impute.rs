//! Missing-data imputation (§7.1).
//!
//! The original Intel-lab trace had missing readings (largely due to packet
//! loss). The paper replaces a missing reading with *"the average values of
//! the data points within sliding windows preceding the missing points"*,
//! which retains the temporal trend of the stream. This module implements
//! exactly that strategy, plus a whole-trace convenience wrapper.

use crate::stream::{DeploymentTrace, SensorStream};

/// Imputation strategy: mean of the up-to-`window` most recent present (or
/// previously imputed) values preceding the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowMeanImputer {
    /// How many preceding readings to average over.
    pub window: usize,
}

impl Default for WindowMeanImputer {
    fn default() -> Self {
        // A small trailing window keeps the imputed value close to the local
        // temporal trend, mirroring the paper's description.
        WindowMeanImputer { window: 8 }
    }
}

impl WindowMeanImputer {
    /// Creates an imputer with the given trailing-window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "imputation window must be non-empty");
        WindowMeanImputer { window }
    }

    /// Fills the missing readings of one stream in place.
    ///
    /// Gaps at the very beginning of a stream (before any value has been
    /// observed) are filled with the first value that appears later; a stream
    /// with no values at all is left untouched. Returns the number of
    /// readings imputed.
    pub fn impute_stream(&self, stream: &mut SensorStream) -> usize {
        let first_value = stream.readings.iter().find_map(|r| r.value);
        let Some(first_value) = first_value else {
            return 0; // nothing to anchor on
        };
        let mut history: Vec<f64> = Vec::new();
        let mut imputed = 0;
        for reading in &mut stream.readings {
            let value = match reading.value {
                Some(v) => v,
                None => {
                    let fill = if history.is_empty() {
                        first_value
                    } else {
                        let tail =
                            &history[history.len().saturating_sub(self.window)..history.len()];
                        tail.iter().sum::<f64>() / tail.len() as f64
                    };
                    reading.value = Some(fill);
                    imputed += 1;
                    fill
                }
            };
            history.push(value);
        }
        imputed
    }

    /// Fills the missing readings of every stream in a deployment trace.
    /// Returns the total number of readings imputed.
    pub fn impute_trace(&self, trace: &mut DeploymentTrace) -> usize {
        trace.streams.iter_mut().map(|s| self.impute_stream(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;
    use crate::point::{Epoch, SensorId, Timestamp};
    use crate::stream::{SensorReading, SensorSpec};

    fn stream_with(values: &[Option<f64>]) -> SensorStream {
        let mut s = SensorStream::new(SensorSpec::new(SensorId(1), Position::new(0.0, 0.0)));
        for (i, v) in values.iter().enumerate() {
            let epoch = Epoch(i as u64);
            let ts = Timestamp::from_secs(i as u64);
            s.readings.push(match v {
                Some(val) => SensorReading::present(epoch, ts, *val),
                None => SensorReading::missing(epoch, ts),
            });
        }
        s
    }

    #[test]
    fn gap_is_filled_with_trailing_mean() {
        let mut s = stream_with(&[Some(10.0), Some(20.0), None, Some(40.0)]);
        let imputed = WindowMeanImputer::new(2).impute_stream(&mut s);
        assert_eq!(imputed, 1);
        assert_eq!(s.readings[2].value, Some(15.0));
    }

    #[test]
    fn window_limits_the_history_used() {
        let mut s = stream_with(&[Some(0.0), Some(0.0), Some(30.0), None]);
        WindowMeanImputer::new(1).impute_stream(&mut s);
        assert_eq!(s.readings[3].value, Some(30.0));

        let mut s = stream_with(&[Some(0.0), Some(0.0), Some(30.0), None]);
        WindowMeanImputer::new(3).impute_stream(&mut s);
        assert_eq!(s.readings[3].value, Some(10.0));
    }

    #[test]
    fn imputed_values_feed_subsequent_gaps() {
        let mut s = stream_with(&[Some(10.0), None, None]);
        WindowMeanImputer::new(4).impute_stream(&mut s);
        assert_eq!(s.readings[1].value, Some(10.0));
        assert_eq!(s.readings[2].value, Some(10.0));
        assert_eq!(s.missing_fraction(), 0.0);
    }

    #[test]
    fn leading_gaps_use_the_first_later_value() {
        let mut s = stream_with(&[None, None, Some(7.0)]);
        let imputed = WindowMeanImputer::default().impute_stream(&mut s);
        assert_eq!(imputed, 2);
        assert_eq!(s.readings[0].value, Some(7.0));
        assert_eq!(s.readings[1].value, Some(7.0));
    }

    #[test]
    fn stream_with_no_values_is_left_alone() {
        let mut s = stream_with(&[None, None]);
        let imputed = WindowMeanImputer::default().impute_stream(&mut s);
        assert_eq!(imputed, 0);
        assert!(s.readings.iter().all(|r| r.is_missing()));
    }

    #[test]
    fn trace_imputation_sums_over_streams() {
        let mut trace = DeploymentTrace::new(1.0).unwrap();
        trace.streams.push(stream_with(&[Some(1.0), None]));
        trace.streams.push(stream_with(&[None, Some(2.0)]));
        let imputed = WindowMeanImputer::default().impute_trace(&mut trace);
        assert_eq!(imputed, 2);
        assert!(trace.streams.iter().all(|s| s.missing_fraction() == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_is_rejected() {
        let _ = WindowMeanImputer::new(0);
    }
}
