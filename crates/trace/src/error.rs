//! Error type for trace parsing and serialisation.

use std::error::Error;
use std::fmt;

use wsn_data::DataError;

/// Errors produced while importing or exporting traces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A line of an input file could not be parsed. Carries the 1-based line
    /// number and a description of what was wrong.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// The input parsed but describes an unusable trace (no readings, a
    /// reading for a mote with no known location, …).
    Invalid(String),
    /// An error bubbled up from the data layer while assembling the trace.
    Data(DataError),
}

impl TraceError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        TraceError::Parse { line, message: message.into() }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TraceError::Invalid(message) => write!(f, "invalid trace: {message}"),
            TraceError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for TraceError {
    fn from(e: DataError) -> Self {
        TraceError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = TraceError::parse(7, "expected a number");
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("expected a number"));
        assert!(TraceError::Invalid("empty".into()).to_string().contains("empty"));
        let data: TraceError = DataError::EmptyWindow.into();
        assert!(data.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
