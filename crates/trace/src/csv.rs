//! CSV round-tripping of deployment traces.
//!
//! Experiments are only reproducible if their inputs can be archived next to
//! their results. This module serialises any
//! [`DeploymentTrace`](wsn_data::stream::DeploymentTrace) — whether imported
//! from the real Intel-lab files or produced by the synthetic generator — to
//! a small, self-describing CSV, and reads it back losslessly (sensor
//! positions, sampling interval, per-round values, missing readings and the
//! injected-anomaly flags all survive the round trip).
//!
//! Format, one record per line:
//!
//! ```text
//! # wsn-trace v1, interval=<seconds>
//! sensor,x,y,epoch,timestamp_micros,value,anomaly
//! 7,21.5,23.0,0,0,19.98,0
//! 7,21.5,23.0,1,31000000,,0          <- empty value = missing reading
//! ```

use crate::error::TraceError;
use wsn_data::stream::{DeploymentTrace, SensorReading, SensorSpec, SensorStream};
use wsn_data::{Epoch, Position, SensorId, Timestamp};

const HEADER_PREFIX: &str = "# wsn-trace v1, interval=";
const COLUMNS: &str = "sensor,x,y,epoch,timestamp_micros,value,anomaly";

/// Serialises a trace to the CSV format described in the module docs.
pub fn write_trace(trace: &DeploymentTrace) -> String {
    let mut out = String::new();
    out.push_str(HEADER_PREFIX);
    out.push_str(&format!("{}\n", trace.sample_interval_secs));
    out.push_str(COLUMNS);
    out.push('\n');
    for stream in &trace.streams {
        for reading in &stream.readings {
            let value = match reading.value {
                Some(v) => format!("{v}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                stream.spec.id.raw(),
                stream.spec.position.x,
                stream.spec.position.y,
                reading.epoch.raw(),
                reading.timestamp.as_micros(),
                value,
                u8::from(reading.injected_anomaly),
            ));
        }
    }
    out
}

/// Parses a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceError::Parse`] (with the offending line) for malformed
/// headers or records, and [`TraceError::Invalid`] if the same
/// `(sensor, epoch)` pair appears twice or a sensor's position is
/// inconsistent between its records.
pub fn read_trace(text: &str) -> Result<DeploymentTrace, TraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| TraceError::Invalid("empty input".into()))?;
    let interval: f64 = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| {
            TraceError::parse(1, format!("expected header starting with {HEADER_PREFIX:?}"))
        })?
        .trim()
        .parse()
        .map_err(|_| TraceError::parse(1, "interval is not a number"))?;
    let (_, columns) =
        lines.next().ok_or_else(|| TraceError::Invalid("missing column header".into()))?;
    if columns.trim() != COLUMNS {
        return Err(TraceError::parse(2, format!("expected column header {COLUMNS:?}")));
    }

    let mut trace = DeploymentTrace::new(interval)?;
    for (index, raw_line) in lines {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(TraceError::parse(
                line_number,
                format!("expected 7 comma-separated fields, found {}", fields.len()),
            ));
        }
        let sensor: u32 = fields[0]
            .parse()
            .map_err(|_| TraceError::parse(line_number, "sensor id is not an integer"))?;
        let x: f64 =
            fields[1].parse().map_err(|_| TraceError::parse(line_number, "x is not a number"))?;
        let y: f64 =
            fields[2].parse().map_err(|_| TraceError::parse(line_number, "y is not a number"))?;
        let epoch: u64 = fields[3]
            .parse()
            .map_err(|_| TraceError::parse(line_number, "epoch is not an integer"))?;
        let micros: u64 = fields[4]
            .parse()
            .map_err(|_| TraceError::parse(line_number, "timestamp is not an integer"))?;
        let value: Option<f64> = if fields[5].is_empty() {
            None
        } else {
            Some(
                fields[5]
                    .parse()
                    .map_err(|_| TraceError::parse(line_number, "value is not a number"))?,
            )
        };
        let anomaly = match fields[6] {
            "0" => false,
            "1" => true,
            other => {
                return Err(TraceError::parse(
                    line_number,
                    format!("anomaly flag must be 0 or 1, found {other:?}"),
                ))
            }
        };

        let id = SensorId(sensor);
        let position = Position::new(x, y);
        let stream_index = match trace.streams.iter().position(|s| s.spec.id == id) {
            Some(found) => {
                let existing = trace.streams[found].spec.position;
                if (existing.x - x).abs() > 1e-9 || (existing.y - y).abs() > 1e-9 {
                    return Err(TraceError::Invalid(format!(
                        "sensor {sensor} has inconsistent positions across records"
                    )));
                }
                found
            }
            None => {
                trace.streams.push(SensorStream::new(SensorSpec::new(id, position)));
                trace.streams.len() - 1
            }
        };
        let stream = &mut trace.streams[stream_index];
        if stream.readings.iter().any(|r| r.epoch == Epoch(epoch)) {
            return Err(TraceError::Invalid(format!(
                "sensor {sensor} has two records for epoch {epoch}"
            )));
        }
        let timestamp = Timestamp::from_micros(micros);
        let reading = match value {
            Some(v) => SensorReading::present(Epoch(epoch), timestamp, v),
            None => SensorReading::missing(Epoch(epoch), timestamp),
        }
        .with_anomaly_flag(anomaly);
        stream.readings.push(reading);
    }
    if trace.streams.is_empty() {
        return Err(TraceError::Invalid("the input contains no records".into()));
    }
    for stream in &mut trace.streams {
        stream.readings.sort_by_key(|r| r.epoch);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::lab::LabDeployment;
    use wsn_data::rng::SeededRng;
    use wsn_data::synth::SyntheticTraceConfig;

    fn sample_trace() -> DeploymentTrace {
        let deployment = LabDeployment::with_sensor_count(6, 3).unwrap();
        let config = SyntheticTraceConfig { rounds: 5, ..Default::default() };
        deployment.generate_trace(&config, 11).unwrap()
    }

    #[test]
    fn synthetic_traces_round_trip_losslessly() {
        let original = sample_trace();
        let text = write_trace(&original);
        let restored = read_trace(&text).unwrap();
        assert_eq!(restored.sample_interval_secs, original.sample_interval_secs);
        assert_eq!(restored.sensor_count(), original.sensor_count());
        assert_eq!(restored.round_count(), original.round_count());
        for stream in &original.streams {
            let back = restored.stream(stream.spec.id).unwrap();
            assert_eq!(back.spec, stream.spec);
            assert_eq!(back.readings.len(), stream.readings.len());
            for (a, b) in back.readings.iter().zip(&stream.readings) {
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(a.timestamp, b.timestamp);
                assert_eq!(a.injected_anomaly, b.injected_anomaly);
                match (a.value, b.value) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
                    (None, None) => {}
                    other => panic!("missing-ness changed in the round trip: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(read_trace("").is_err());
        assert!(read_trace("nonsense\nsensor,x,y\n").is_err());
        let missing_columns = format!("{HEADER_PREFIX}31\nwrong,columns\n");
        assert!(read_trace(&missing_columns).is_err());
        let bad_row = format!("{HEADER_PREFIX}31\n{COLUMNS}\n1,2,3\n");
        assert!(matches!(read_trace(&bad_row), Err(TraceError::Parse { line: 3, .. })));
        let bad_flag = format!("{HEADER_PREFIX}31\n{COLUMNS}\n1,0,0,0,0,1.5,7\n");
        assert!(read_trace(&bad_flag).is_err());
        let no_records = format!("{HEADER_PREFIX}31\n{COLUMNS}\n");
        assert!(matches!(read_trace(&no_records), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn duplicate_epochs_and_moving_sensors_are_rejected() {
        let duplicate =
            format!("{HEADER_PREFIX}31\n{COLUMNS}\n1,0,0,0,0,1.5,0\n1,0,0,0,31000000,1.6,0\n");
        assert!(matches!(read_trace(&duplicate), Err(TraceError::Invalid(_))));
        let moved =
            format!("{HEADER_PREFIX}31\n{COLUMNS}\n1,0,0,0,0,1.5,0\n1,5,5,1,31000000,1.6,0\n");
        assert!(matches!(read_trace(&moved), Err(TraceError::Invalid(_))));
    }

    /// Round-tripping preserves every value for arbitrary small traces: a
    /// seeded-loop property over the in-repo PRNG (256 cases, fixed seed,
    /// failing cases print their generated inputs).
    #[test]
    fn csv_round_trip_is_lossless() {
        const SEED: u64 = 0x5EED_A004;
        let mut rng = SeededRng::seed_from_u64(SEED);
        for case in 0..256 {
            let trace_seed = rng.gen_range(0u64..1_000);
            let rounds = rng.gen_range(1usize..8);
            let deployment = LabDeployment::with_sensor_count(4, trace_seed).unwrap();
            let config = SyntheticTraceConfig { rounds, ..Default::default() };
            let original = deployment.generate_trace(&config, trace_seed).unwrap();
            let restored = read_trace(&write_trace(&original)).unwrap();
            assert_eq!(
                restored.round_count(),
                original.round_count(),
                "case {case} (seed {SEED:#x}): trace_seed={trace_seed} rounds={rounds}"
            );
            assert_eq!(
                restored.all_points().unwrap().len(),
                original.all_points().unwrap().len(),
                "case {case} (seed {SEED:#x}): trace_seed={trace_seed} rounds={rounds}"
            );
        }
    }
}
