//! # wsn-trace
//!
//! Import and export of sensor traces in the formats surrounding the Intel
//! Berkeley Research Lab dataset the paper evaluates on (§7.1).
//!
//! The original dataset is distributed as two whitespace-separated text
//! files:
//!
//! * `data.txt` — one reading per line:
//!   `date time epoch moteid temperature humidity light voltage`,
//!   with missing measurements simply absent from the end of the line;
//! * `mote_locs.txt` — one mote per line: `moteid x y` (metres on the lab's
//!   floor plan).
//!
//! [`intel`] parses both formats and assembles a [`wsn_data`]
//! [`DeploymentTrace`](wsn_data::stream::DeploymentTrace) — so the
//! experiments in this repository can be driven by the *real* trace when a
//! copy is available, instead of the bundled synthetic substitute. [`csv`]
//! round-trips any `DeploymentTrace` (real or synthetic) through a simple,
//! self-describing CSV so experiment inputs can be archived next to their
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod error;
pub mod intel;

pub use error::TraceError;
pub use intel::{build_trace, parse_locations, parse_readings, IntelLabReading};
