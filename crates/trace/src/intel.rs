//! Parsing of the Intel Berkeley Research Lab dataset format.
//!
//! The dataset (the one the paper's evaluation uses) consists of a readings
//! file and a mote-locations file; both are plain whitespace-separated text.
//! Readings may be truncated (a mote that failed to report humidity, light
//! and voltage simply has a shorter line) and epochs may be missing entirely
//! for some motes — both situations are preserved as *missing* readings so
//! that the imputation step of §7.1 can fill them in downstream.

use std::collections::BTreeMap;
use std::path::Path;

use crate::error::TraceError;
use wsn_data::stream::{DeploymentTrace, SensorReading, SensorSpec, SensorStream};
use wsn_data::{Epoch, Position, SensorId, Timestamp};

/// File name of the readings file within an Intel-lab dataset directory.
pub const READINGS_FILE: &str = "data.txt";

/// File name of the mote-locations file within an Intel-lab dataset
/// directory.
pub const LOCATIONS_FILE: &str = "mote_locs.txt";

/// One line of the Intel-lab readings file.
#[derive(Debug, Clone, PartialEq)]
pub struct IntelLabReading {
    /// Calendar date of the reading (kept verbatim, e.g. `2004-03-10`).
    pub date: String,
    /// Wall-clock time of the reading (kept verbatim, e.g. `03:06:33.5`).
    pub time: String,
    /// Epoch: the dataset's global sampling-round counter.
    pub epoch: u64,
    /// Identifier of the reporting mote.
    pub mote_id: u32,
    /// Temperature in °C, if reported.
    pub temperature: Option<f64>,
    /// Relative humidity in %, if reported.
    pub humidity: Option<f64>,
    /// Light level in lux, if reported.
    pub light: Option<f64>,
    /// Battery voltage in volts, if reported.
    pub voltage: Option<f64>,
}

fn parse_optional_number(
    field: Option<&str>,
    line: usize,
    name: &str,
) -> Result<Option<f64>, TraceError> {
    match field {
        None | Some("") => Ok(None),
        Some(text) => {
            let value: f64 = text.parse().map_err(|_| {
                TraceError::parse(line, format!("{name} is not a number: {text:?}"))
            })?;
            if value.is_finite() {
                Ok(Some(value))
            } else {
                Ok(None) // NaN/inf in the raw data are treated as missing
            }
        }
    }
}

/// Parses the whole readings file (the dataset's `data.txt`). Blank lines and
/// lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with the offending 1-based line number when
/// a line has fewer than four fields or a field that should be numeric is
/// not.
pub fn parse_readings(text: &str) -> Result<Vec<IntelLabReading>, TraceError> {
    let mut readings = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(TraceError::parse(
                line_number,
                format!(
                    "expected at least 4 fields (date time epoch moteid), found {}",
                    fields.len()
                ),
            ));
        }
        let epoch: u64 = fields[2].parse().map_err(|_| {
            TraceError::parse(line_number, format!("epoch is not an integer: {:?}", fields[2]))
        })?;
        let mote_id: u32 = fields[3].parse().map_err(|_| {
            TraceError::parse(line_number, format!("mote id is not an integer: {:?}", fields[3]))
        })?;
        readings.push(IntelLabReading {
            date: fields[0].to_string(),
            time: fields[1].to_string(),
            epoch,
            mote_id,
            temperature: parse_optional_number(fields.get(4).copied(), line_number, "temperature")?,
            humidity: parse_optional_number(fields.get(5).copied(), line_number, "humidity")?,
            light: parse_optional_number(fields.get(6).copied(), line_number, "light")?,
            voltage: parse_optional_number(fields.get(7).copied(), line_number, "voltage")?,
        });
    }
    Ok(readings)
}

/// Parses the mote-locations file (the dataset's `mote_locs.txt`): one
/// `moteid x y` triple per line.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for malformed lines and
/// [`TraceError::Invalid`] if the same mote appears twice.
pub fn parse_locations(text: &str) -> Result<Vec<(SensorId, Position)>, TraceError> {
    let mut locations: Vec<(SensorId, Position)> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 3 {
            return Err(TraceError::parse(
                line_number,
                format!("expected `moteid x y`, found {} fields", fields.len()),
            ));
        }
        let mote: u32 = fields[0].parse().map_err(|_| {
            TraceError::parse(line_number, format!("mote id is not an integer: {:?}", fields[0]))
        })?;
        let x: f64 = fields[1].parse().map_err(|_| {
            TraceError::parse(line_number, format!("x is not a number: {:?}", fields[1]))
        })?;
        let y: f64 = fields[2].parse().map_err(|_| {
            TraceError::parse(line_number, format!("y is not a number: {:?}", fields[2]))
        })?;
        if locations.iter().any(|(id, _)| *id == SensorId(mote)) {
            return Err(TraceError::Invalid(format!(
                "mote {mote} appears twice in the locations file"
            )));
        }
        locations.push((SensorId(mote), Position::new(x, y)));
    }
    Ok(locations)
}

/// Assembles a [`DeploymentTrace`] from parsed readings and locations.
///
/// * Only motes present in `locations` contribute streams (the dataset
///   contains a few readings from unknown motes, which are dropped).
/// * Epochs are normalised so the earliest epoch across all kept readings
///   becomes round 0; every stream then has one slot per round up to the
///   latest epoch, with slots no mote reported marked as missing.
/// * The reading's temperature is the value the outlier algorithms consume
///   (matching §7.1); other measurements are ignored here.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if no location or no usable reading
/// exists, or if `sample_interval_secs` is not positive.
pub fn build_trace(
    readings: &[IntelLabReading],
    locations: &[(SensorId, Position)],
    sample_interval_secs: f64,
) -> Result<DeploymentTrace, TraceError> {
    if locations.is_empty() {
        return Err(TraceError::Invalid("no mote locations were provided".into()));
    }
    let kept: Vec<&IntelLabReading> =
        readings.iter().filter(|r| locations.iter().any(|(id, _)| id.raw() == r.mote_id)).collect();
    if kept.is_empty() {
        return Err(TraceError::Invalid(
            "no reading belongs to a mote with a known location".into(),
        ));
    }
    let first_epoch = kept.iter().map(|r| r.epoch).min().expect("kept is non-empty");
    let last_epoch = kept.iter().map(|r| r.epoch).max().expect("kept is non-empty");
    let rounds = (last_epoch - first_epoch + 1) as usize;

    // Latest temperature reported by each mote for each normalised round.
    let mut by_mote: BTreeMap<SensorId, BTreeMap<usize, Option<f64>>> = BTreeMap::new();
    for reading in &kept {
        let round = (reading.epoch - first_epoch) as usize;
        by_mote.entry(SensorId(reading.mote_id)).or_default().insert(round, reading.temperature);
    }

    let mut trace = DeploymentTrace::new(sample_interval_secs)?;
    for &(id, position) in locations {
        let mut stream = SensorStream::new(SensorSpec::new(id, position));
        let rounds_for_mote = by_mote.get(&id);
        for round in 0..rounds {
            let epoch = Epoch(round as u64);
            let timestamp = Timestamp::from_secs_f64(round as f64 * sample_interval_secs);
            let value = rounds_for_mote.and_then(|m| m.get(&round).copied()).flatten();
            stream.readings.push(match value {
                Some(v) => SensorReading::present(epoch, timestamp, v),
                None => SensorReading::missing(epoch, timestamp),
            });
        }
        trace.streams.push(stream);
    }
    Ok(trace)
}

/// Loads the Intel-lab dataset from a directory containing
/// [`READINGS_FILE`] and [`LOCATIONS_FILE`], if both are present.
///
/// The dataset is not redistributable with this repository, so its absence
/// is the *normal* case: this returns `Ok(None)` (rather than an error) when
/// either file is missing, letting examples and experiment drivers skip with
/// a message instead of panicking or bubbling an `Err`. A directory that
/// *does* carry both files but fails to parse is a real error and is
/// reported as one.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if a present file cannot be read, and
/// propagates parse/assembly errors from [`parse_readings`],
/// [`parse_locations`] and [`build_trace`].
pub fn try_load_dir(
    dir: impl AsRef<Path>,
    sample_interval_secs: f64,
) -> Result<Option<DeploymentTrace>, TraceError> {
    let dir = dir.as_ref();
    let readings_path = dir.join(READINGS_FILE);
    let locations_path = dir.join(LOCATIONS_FILE);
    if !readings_path.is_file() || !locations_path.is_file() {
        return Ok(None);
    }
    let read = |path: &Path| {
        std::fs::read_to_string(path)
            .map_err(|e| TraceError::Invalid(format!("cannot read {}: {e}", path.display())))
    };
    let readings = parse_readings(&read(&readings_path)?)?;
    let locations = parse_locations(&read(&locations_path)?)?;
    build_trace(&readings, &locations, sample_interval_secs).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    const READINGS: &str = "\
2004-03-10 03:06:33.5 2 1 19.98 37.09 45.08 2.69
2004-03-10 03:06:35.1 2 2 20.10 36.80 45.08 2.68

# a comment line
2004-03-10 03:07:03.5 3 1 19.99 37.10 45.08 2.69
2004-03-10 03:07:04.0 3 2
2004-03-10 03:07:33.5 4 1 20.02 37.12 45.08 2.69
2004-03-10 03:07:35.0 4 99 55.00 1.0 1.0 2.0
";

    const LOCATIONS: &str = "\
1 21.5 23.0
2 24.5 20.0
# 99 is intentionally absent
";

    #[test]
    fn readings_parse_including_truncated_lines() {
        let readings = parse_readings(READINGS).unwrap();
        assert_eq!(readings.len(), 6);
        assert_eq!(readings[0].mote_id, 1);
        assert_eq!(readings[0].epoch, 2);
        assert_eq!(readings[0].temperature, Some(19.98));
        assert_eq!(readings[0].voltage, Some(2.69));
        // The truncated line keeps its identity but has no measurements.
        let truncated = &readings[3];
        assert_eq!(truncated.mote_id, 2);
        assert_eq!(truncated.temperature, None);
        assert_eq!(truncated.light, None);
    }

    #[test]
    fn malformed_readings_report_the_line_number() {
        let err = parse_readings("2004-03-10 03:06:33.5 two 1 19.98").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }), "{err:?}");
        let err = parse_readings("2004-03-10 03:06:33.5 2\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_readings("2004-03-10 03:06:33.5 2 1 hot").unwrap_err();
        assert!(err.to_string().contains("temperature"));
    }

    #[test]
    fn locations_parse_and_reject_duplicates() {
        let locations = parse_locations(LOCATIONS).unwrap();
        assert_eq!(locations.len(), 2);
        assert_eq!(locations[0].0, SensorId(1));
        assert!((locations[1].1.x - 24.5).abs() < 1e-12);

        assert!(parse_locations("1 2.0").is_err());
        assert!(parse_locations("1 a 3.0").is_err());
        let duplicated = "1 1.0 1.0\n1 2.0 2.0";
        assert!(matches!(parse_locations(duplicated), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn trace_assembly_normalises_epochs_and_marks_gaps() {
        let readings = parse_readings(READINGS).unwrap();
        let locations = parse_locations(LOCATIONS).unwrap();
        let trace = build_trace(&readings, &locations, 31.0).unwrap();
        assert_eq!(trace.sensor_count(), 2);
        // Epochs 2..=4 normalise to rounds 0..=2.
        assert_eq!(trace.round_count(), 3);
        let mote1 = trace.stream(SensorId(1)).unwrap();
        assert!(mote1.readings.iter().all(|r| !r.is_missing()));
        let mote2 = trace.stream(SensorId(2)).unwrap();
        // Mote 2's epoch-3 line was truncated and epoch 4 is absent entirely.
        assert!(!mote2.readings[0].is_missing());
        assert!(mote2.readings[1].is_missing());
        assert!(mote2.readings[2].is_missing());
        // The unknown mote 99 contributed nothing.
        assert!(trace.stream(SensorId(99)).is_err());
        // Timestamps follow the sampling interval.
        assert_eq!(mote1.readings[2].timestamp, Timestamp::from_secs_f64(62.0));
    }

    #[test]
    fn trace_assembly_validates_inputs() {
        let readings = parse_readings(READINGS).unwrap();
        let locations = parse_locations(LOCATIONS).unwrap();
        assert!(matches!(build_trace(&readings, &[], 31.0), Err(TraceError::Invalid(_))));
        let strangers = vec![(SensorId(7), Position::new(0.0, 0.0))];
        assert!(matches!(build_trace(&readings, &strangers, 31.0), Err(TraceError::Invalid(_))));
        assert!(build_trace(&readings, &locations, 0.0).is_err());
    }

    #[test]
    fn non_finite_measurements_are_treated_as_missing() {
        let readings = parse_readings("2004-03-10 03:06:33.5 2 1 NaN 37.0 45.0 2.6").unwrap();
        assert_eq!(readings[0].temperature, None);
        assert_eq!(readings[0].humidity, Some(37.0));
    }
}
