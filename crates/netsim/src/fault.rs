//! The fault model: scheduled node deaths, late joins, and per-node
//! duty-cycle sleep/wake windows.
//!
//! A [`FaultPlan`] is a declarative description of everything hostile the
//! network does to the protocol over a run: which nodes die (battery-first,
//! like the Intel fixture's mote), which join late or rejoin after dying,
//! and which radios sleep on a periodic [`DutyCycle`]. The plan is plain
//! data — the driver (e.g. the streaming experiment runner) walks its
//! timeline and calls [`crate::sim::Simulator::remove_node`] /
//! [`crate::sim::Simulator::add_node`] at the scheduled instants, while the
//! simulator consults the duty cycles at every packet reception.
//!
//! # Determinism contract
//!
//! Every fault is a **pure function of `(plan, node, time)`** — never of
//! global draw order, queue contents, or which backend executes the run:
//!
//! * **Deaths and joins** carry explicit timestamps in the plan. The driver
//!   applies them by first running the simulation up to the fault time
//!   (aligning both backends' clocks) and then performing the topology
//!   surgery, which allocates the *same* external event sequence numbers on
//!   the sequential and partitioned backends — the mirrored-seq pattern the
//!   partitioned coordinator already uses for `remove_node`.
//! * **Duty-cycle sleep** is evaluated *at reception time, at the
//!   receiver*: [`DutyCycle::is_awake`] is integer-micros modular
//!   arithmetic over the reception's own timestamp. A sleeping radio hears
//!   nothing — no RX energy, no counters, no delivery — and because the
//!   check runs in the receiver's owning region in both backends, the
//!   outcome is bit-identical regardless of partitioning.
//! * **Bursty loss** ([`crate::radio::LossModel::GilbertElliott`]) keys its
//!   per-link Markov chain on `(seed, sender, receiver, step)`, the same
//!   counter-keyed trick as the Bernoulli channel: each directed link's
//!   chain advances once per computed reception in the sender's emission
//!   order, which is identical in both backends because a sender lives in
//!   exactly one region.
//!
//! Nothing in this module draws randomness; a plan replayed under the same
//! seed produces the same fault timeline, byte for byte.

use std::collections::BTreeMap;
use wsn_data::{Position, SensorId, Timestamp};

/// A periodic sleep/wake schedule for one node's radio.
///
/// The node is awake during the first `awake_micros` of every
/// `period_micros`-long cycle, phase-shifted by `offset_micros`. Sleep gates
/// **reception only**: a sleeping node still samples and transmits (its MCU
/// runs; only the receive path is powered down), which keeps the protocol's
/// send side deterministic and models the common sensor-network radio
/// duty-cycling where listening dominates the energy budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyCycle {
    period_micros: u64,
    awake_micros: u64,
    offset_micros: u64,
}

impl DutyCycle {
    /// A cycle of `period_micros` with the radio on for the first
    /// `awake_micros`, phase-shifted by `offset_micros`.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the awake span exceeds the period.
    pub fn from_micros(period_micros: u64, awake_micros: u64, offset_micros: u64) -> Self {
        assert!(period_micros > 0, "duty-cycle period must be positive");
        assert!(
            awake_micros <= period_micros,
            "awake span ({awake_micros} µs) must not exceed the period ({period_micros} µs)"
        );
        DutyCycle { period_micros, awake_micros, offset_micros }
    }

    /// [`DutyCycle::from_micros`] with second-resolution parameters.
    pub fn from_secs(period_secs: u64, awake_secs: u64, offset_secs: u64) -> Self {
        DutyCycle::from_micros(
            period_secs * 1_000_000,
            awake_secs * 1_000_000,
            offset_secs * 1_000_000,
        )
    }

    /// Whether the radio is listening at instant `at` — pure integer-micros
    /// modular arithmetic, independent of any simulation state.
    pub fn is_awake(&self, at: Timestamp) -> bool {
        (at.as_micros() + self.offset_micros) % self.period_micros < self.awake_micros
    }

    /// The fraction of time the radio listens.
    pub fn awake_fraction(&self) -> f64 {
        self.awake_micros as f64 / self.period_micros as f64
    }
}

/// One scheduled topology change.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the change happens (simulation time).
    pub at: Timestamp,
    /// What happens.
    pub action: FaultAction,
}

/// The kinds of scheduled topology change.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// The node's battery dies: it leaves the topology and its links are
    /// severed (applied via `remove_node`).
    Death(SensorId),
    /// The node joins (or rejoins) the network at `position` (applied via
    /// `add_node`).
    Join {
        /// The joining node.
        id: SensorId,
        /// Where it appears.
        position: Position,
    },
}

impl FaultAction {
    /// The node the action concerns.
    pub fn node(&self) -> SensorId {
        match self {
            FaultAction::Death(id) => *id,
            FaultAction::Join { id, .. } => *id,
        }
    }
}

/// A declarative fault timeline plus per-node duty cycles.
///
/// Events are kept sorted by time (stable: events at equal times apply in
/// insertion order), so drivers can walk the timeline with a cursor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    duty_cycles: BTreeMap<SensorId, DutyCycle>,
}

impl FaultPlan {
    /// An empty plan: no churn, every radio always on.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `id`'s death at `at`.
    pub fn with_death(mut self, at: Timestamp, id: SensorId) -> Self {
        self.insert(FaultEvent { at, action: FaultAction::Death(id) });
        self
    }

    /// Schedules `id`'s (re)join at `at`, appearing at `position`.
    pub fn with_join(mut self, at: Timestamp, id: SensorId, position: Position) -> Self {
        self.insert(FaultEvent { at, action: FaultAction::Join { id, position } });
        self
    }

    /// Puts `id`'s radio on `cycle` for the whole run.
    pub fn with_duty_cycle(mut self, id: SensorId, cycle: DutyCycle) -> Self {
        self.duty_cycles.insert(id, cycle);
        self
    }

    /// Stable insertion keeping `events` sorted by time.
    fn insert(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// The scheduled topology changes, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The per-node duty cycles.
    pub fn duty_cycles(&self) -> &BTreeMap<SensorId, DutyCycle> {
        &self.duty_cycles
    }

    /// Returns `true` if the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.duty_cycles.is_empty()
    }

    /// The nodes whose **first** scheduled event is a join — late joiners
    /// that must be excluded from the initial topology (as opposed to
    /// rejoiners, whose first event is a death). Ascending order.
    pub fn initially_absent(&self) -> Vec<SensorId> {
        let mut first: BTreeMap<SensorId, bool> = BTreeMap::new();
        for event in &self.events {
            first
                .entry(event.action.node())
                .or_insert(matches!(event.action, FaultAction::Join { .. }));
        }
        first.into_iter().filter(|(_, joins)| *joins).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_wakes_and_sleeps_on_schedule() {
        let cycle = DutyCycle::from_micros(100, 40, 0);
        assert!(cycle.is_awake(Timestamp::from_micros(0)));
        assert!(cycle.is_awake(Timestamp::from_micros(39)));
        assert!(!cycle.is_awake(Timestamp::from_micros(40)));
        assert!(!cycle.is_awake(Timestamp::from_micros(99)));
        assert!(cycle.is_awake(Timestamp::from_micros(100)));
        assert!((cycle.awake_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_offset_shifts_the_phase() {
        let cycle = DutyCycle::from_micros(100, 40, 60);
        // With offset 60, micros 40..=79 of each period are the awake span
        // ((t + 60) mod 100 < 40).
        assert!(!cycle.is_awake(Timestamp::from_micros(0)));
        assert!(cycle.is_awake(Timestamp::from_micros(40)));
        assert!(cycle.is_awake(Timestamp::from_micros(79)));
        assert!(!cycle.is_awake(Timestamp::from_micros(80)));
        assert!(!cycle.is_awake(Timestamp::from_micros(100)));
        assert!(cycle.is_awake(Timestamp::from_micros(140)));
    }

    #[test]
    fn duty_cycle_validates_parameters() {
        assert!(std::panic::catch_unwind(|| DutyCycle::from_micros(0, 0, 0)).is_err());
        assert!(std::panic::catch_unwind(|| DutyCycle::from_micros(10, 11, 0)).is_err());
        let always_on = DutyCycle::from_secs(10, 10, 3);
        assert!(always_on.is_awake(Timestamp::from_secs(12345)));
    }

    #[test]
    fn plan_keeps_events_sorted_and_stable() {
        let p = Position::new(0.0, 0.0);
        let plan = FaultPlan::new()
            .with_death(Timestamp::from_secs(20), SensorId(2))
            .with_death(Timestamp::from_secs(10), SensorId(1))
            .with_join(Timestamp::from_secs(10), SensorId(3), p)
            .with_death(Timestamp::from_secs(10), SensorId(4));
        let order: Vec<(u64, SensorId)> =
            plan.events().iter().map(|e| (e.at.as_micros(), e.action.node())).collect();
        assert_eq!(
            order,
            vec![
                (10_000_000, SensorId(1)),
                (10_000_000, SensorId(3)),
                (10_000_000, SensorId(4)),
                (20_000_000, SensorId(2)),
            ]
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn initially_absent_distinguishes_joiners_from_rejoiners() {
        let p = Position::new(0.0, 0.0);
        let plan = FaultPlan::new()
            // Node 1 dies then rejoins: present initially.
            .with_death(Timestamp::from_secs(10), SensorId(1))
            .with_join(Timestamp::from_secs(30), SensorId(1), p)
            // Node 2 joins late: absent initially.
            .with_join(Timestamp::from_secs(20), SensorId(2), p)
            // Node 3 only dies.
            .with_death(Timestamp::from_secs(40), SensorId(3));
        assert_eq!(plan.initially_absent(), vec![SensorId(2)]);
    }
}
