//! Network topology: who can hear whom, hop distances, connectivity.
//!
//! The topology is derived from sensor positions and the radio range
//! (unit-disc connectivity). It also provides the hop-distance matrix used to
//! define the semi-global ground truth `D_i^{≤d}` (§6) and the diameter used
//! to relate the semi-global and global problems.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wsn_data::lab::LabDeployment;
use wsn_data::stream::SensorSpec;
use wsn_data::{Position, SensorId};

/// Hop distance that denotes "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// An undirected communication graph over a set of sensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    positions: BTreeMap<SensorId, Position>,
    neighbors: BTreeMap<SensorId, BTreeSet<SensorId>>,
    range_m: f64,
}

impl Topology {
    /// Builds the topology induced by a radio range over sensor positions.
    pub fn from_specs(specs: &[SensorSpec], range_m: f64) -> Self {
        let positions: BTreeMap<SensorId, Position> =
            specs.iter().map(|s| (s.id, s.position)).collect();
        let mut neighbors: BTreeMap<SensorId, BTreeSet<SensorId>> =
            positions.keys().map(|id| (*id, BTreeSet::new())).collect();
        let ids: Vec<SensorId> = positions.keys().copied().collect();
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                if positions[a].distance(&positions[b]) <= range_m {
                    neighbors.get_mut(a).unwrap().insert(*b);
                    neighbors.get_mut(b).unwrap().insert(*a);
                }
            }
        }
        Topology { positions, neighbors, range_m }
    }

    /// Builds the topology of a lab deployment at the given range.
    pub fn from_deployment(deployment: &LabDeployment, range_m: f64) -> Self {
        Topology::from_specs(deployment.sensors(), range_m)
    }

    /// The radio range the topology was built with, in metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// All sensor ids, in ascending order.
    pub fn sensor_ids(&self) -> Vec<SensorId> {
        self.positions.keys().copied().collect()
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the topology has no sensors.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a sensor, if it exists.
    pub fn position(&self, id: SensorId) -> Option<Position> {
        self.positions.get(&id).copied()
    }

    /// The single-hop neighbours of a sensor (empty if the id is unknown).
    pub fn neighbors(&self, id: SensorId) -> Vec<SensorId> {
        self.neighbors_iter(id).collect()
    }

    /// Iterates over the single-hop neighbours of a sensor without
    /// allocating (empty if the id is unknown). This is the form the
    /// per-transmission hot paths use; [`Topology::neighbors`] remains for
    /// callers that want an owned list.
    pub fn neighbors_iter(&self, id: SensorId) -> impl Iterator<Item = SensorId> + '_ {
        self.neighbors.get(&id).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Returns `true` if `a` and `b` are within radio range of each other.
    pub fn are_neighbors(&self, a: SensorId, b: SensorId) -> bool {
        self.neighbors.get(&a).map(|s| s.contains(&b)).unwrap_or(false)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.positions.len() as f64
    }

    /// Hop distances from `source` to every sensor (BFS). Unreachable sensors
    /// get [`UNREACHABLE`].
    pub fn hop_distances_from(&self, source: SensorId) -> BTreeMap<SensorId, u32> {
        let mut dist: BTreeMap<SensorId, u32> =
            self.positions.keys().map(|id| (*id, UNREACHABLE)).collect();
        if !self.positions.contains_key(&source) {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist.insert(source, 0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            for w in self.neighbors_iter(v) {
                if dist[&w] == UNREACHABLE {
                    dist.insert(w, d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Hop distance between two sensors, or [`UNREACHABLE`].
    pub fn hop_distance(&self, a: SensorId, b: SensorId) -> u32 {
        *self.hop_distances_from(a).get(&b).unwrap_or(&UNREACHABLE)
    }

    /// The sensors within `d` hops of `source` (including `source` itself),
    /// in ascending id order.
    ///
    /// Runs a depth-bounded BFS that stops expanding at `d` hops, so the
    /// cost is proportional to the `d`-hop ball rather than to the whole
    /// network — the distinction that keeps semi-global ground-truth grading
    /// (one small-`d` ball per sensor) affordable at city scale.
    pub fn within_hops(&self, source: SensorId, d: u32) -> Vec<SensorId> {
        if !self.positions.contains_key(&source) {
            return Vec::new();
        }
        let mut dist: BTreeMap<SensorId, u32> = BTreeMap::new();
        let mut queue = VecDeque::new();
        dist.insert(source, 0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[&v];
            if dv == d {
                continue;
            }
            for w in self.neighbors_iter(v) {
                if let std::collections::btree_map::Entry::Vacant(slot) = dist.entry(w) {
                    slot.insert(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        dist.into_keys().collect()
    }

    /// Returns `true` if every sensor can reach every other sensor.
    pub fn is_connected(&self) -> bool {
        match self.positions.keys().next() {
            None => true,
            Some(first) => self.hop_distances_from(*first).values().all(|d| *d != UNREACHABLE),
        }
    }

    /// The network diameter in hops (largest finite pairwise hop distance).
    /// Returns 0 for empty or single-node networks.
    pub fn diameter(&self) -> u32 {
        let mut max = 0;
        for id in self.positions.keys() {
            for d in self.hop_distances_from(*id).values() {
                if *d != UNREACHABLE && *d > max {
                    max = *d;
                }
            }
        }
        max
    }

    /// Removes a sensor and all its links (used to model node failure).
    pub fn remove_sensor(&mut self, id: SensorId) {
        self.positions.remove(&id);
        self.neighbors.remove(&id);
        for set in self.neighbors.values_mut() {
            set.remove(&id);
        }
    }

    /// Adds (or re-adds) a sensor at `position`, linking it to every sensor
    /// within radio range — the dual of [`Topology::remove_sensor`], used to
    /// model late joins and rejoins after failure. Returns the sensor's new
    /// single-hop neighbours in ascending order.
    pub fn add_sensor(&mut self, id: SensorId, position: Position) -> Vec<SensorId> {
        // Re-adding an existing id replaces it wholesale (links included).
        self.remove_sensor(id);
        let linked: BTreeSet<SensorId> = self
            .positions
            .iter()
            .filter(|(_, p)| p.distance(&position) <= self.range_m)
            .map(|(other, _)| *other)
            .collect();
        for other in &linked {
            self.neighbors.get_mut(other).unwrap().insert(id);
        }
        let result: Vec<SensorId> = linked.iter().copied().collect();
        self.positions.insert(id, position);
        self.neighbors.insert(id, linked);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::lab::PAPER_TRANSMISSION_RANGE_M;

    fn line_specs(n: u32, spacing: f64) -> Vec<SensorSpec> {
        (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * spacing, 0.0)))
            .collect()
    }

    #[test]
    fn line_topology_has_chain_neighbors() {
        let t = Topology::from_specs(&line_specs(5, 5.0), 6.0);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.edge_count(), 4);
        assert!(t.are_neighbors(SensorId(0), SensorId(1)));
        assert!(!t.are_neighbors(SensorId(0), SensorId(2)));
        assert_eq!(t.neighbors(SensorId(2)), vec![SensorId(1), SensorId(3)]);
        assert_eq!(t.neighbors(SensorId(99)), vec![]);
        assert!((t.average_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn hop_distances_follow_the_chain() {
        let t = Topology::from_specs(&line_specs(5, 5.0), 6.0);
        assert_eq!(t.hop_distance(SensorId(0), SensorId(0)), 0);
        assert_eq!(t.hop_distance(SensorId(0), SensorId(4)), 4);
        assert_eq!(t.hop_distance(SensorId(4), SensorId(0)), 4);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.within_hops(SensorId(2), 1).len(), 3);
        assert_eq!(t.within_hops(SensorId(0), 2).len(), 3);
    }

    #[test]
    fn disconnected_graph_is_detected() {
        // Two pairs far apart.
        let specs = vec![
            SensorSpec::new(SensorId(0), Position::new(0.0, 0.0)),
            SensorSpec::new(SensorId(1), Position::new(1.0, 0.0)),
            SensorSpec::new(SensorId(2), Position::new(100.0, 0.0)),
            SensorSpec::new(SensorId(3), Position::new(101.0, 0.0)),
        ];
        let t = Topology::from_specs(&specs, 5.0);
        assert!(!t.is_connected());
        assert_eq!(t.hop_distance(SensorId(0), SensorId(2)), UNREACHABLE);
        let connected = Topology::from_specs(&specs, 200.0);
        assert!(connected.is_connected());
        assert_eq!(connected.diameter(), 1);
    }

    #[test]
    fn empty_and_unknown_sources_are_handled() {
        let t = Topology::from_specs(&[], 5.0);
        assert!(t.is_connected());
        assert!(t.is_empty());
        assert_eq!(t.diameter(), 0);
        let t = Topology::from_specs(&line_specs(2, 1.0), 5.0);
        let d = t.hop_distances_from(SensorId(42));
        assert!(d.values().all(|v| *v == UNREACHABLE));
    }

    #[test]
    fn removing_a_cut_vertex_disconnects_the_chain() {
        let mut t = Topology::from_specs(&line_specs(5, 5.0), 6.0);
        t.remove_sensor(SensorId(2));
        assert_eq!(t.len(), 4);
        assert!(!t.is_connected());
        assert!(!t.neighbors(SensorId(1)).contains(&SensorId(2)));
    }

    #[test]
    fn adding_a_sensor_restores_links_in_both_directions() {
        let mut t = Topology::from_specs(&line_specs(5, 5.0), 6.0);
        let position = t.position(SensorId(2)).unwrap();
        t.remove_sensor(SensorId(2));
        assert!(!t.is_connected());
        let linked = t.add_sensor(SensorId(2), position);
        assert_eq!(linked, vec![SensorId(1), SensorId(3)]);
        assert!(t.is_connected());
        assert!(t.are_neighbors(SensorId(1), SensorId(2)));
        assert!(t.are_neighbors(SensorId(2), SensorId(3)));
        assert_eq!(t, Topology::from_specs(&line_specs(5, 5.0), 6.0));
    }

    #[test]
    fn adding_a_sensor_at_a_new_position_relinks_it() {
        let mut t = Topology::from_specs(&line_specs(3, 5.0), 6.0);
        // Move sensor 0 next to sensor 2: its old link to 1 must vanish.
        let linked = t.add_sensor(SensorId(0), Position::new(11.0, 0.0));
        assert_eq!(linked, vec![SensorId(1), SensorId(2)]);
        let far = t.add_sensor(SensorId(0), Position::new(1000.0, 0.0));
        assert!(far.is_empty());
        assert!(!t.are_neighbors(SensorId(0), SensorId(1)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lab_deployment_topology_matches_the_paper_description() {
        let d = LabDeployment::standard(0);
        let t = Topology::from_deployment(&d, PAPER_TRANSMISSION_RANGE_M);
        assert_eq!(t.len(), 53);
        assert!(t.is_connected());
        assert!(t.diameter() >= 4, "53 nodes on a 50 m floor at 6.77 m range are multi-hop");
        assert!((t.range_m() - PAPER_TRANSMISSION_RANGE_M).abs() < 1e-12);
        assert_eq!(t.sensor_ids().len(), 53);
        assert!(t.position(SensorId(0)).is_some());
        assert!(t.position(SensorId(999)).is_none());
    }
}
