//! Spatially partitioned parallel simulation.
//!
//! This is the top layer of the simulator stack (see [`crate::event`] for
//! the layer diagram): it tiles a deployment into rectangular regions sized
//! by the radio range, runs each region's event stream on its own
//! [`Simulator`] engine instance on a worker pool, and merges cross-region
//! transmissions deterministically at epoch barriers. The sequential
//! single-region engine is kept as the equality oracle: both backends
//! produce **bit-for-bit identical** results (estimates, energy floats,
//! packet counters, hop counts), which the seeded property suite in
//! `tests/property_partitioned_sim.rs` enforces.
//!
//! # The conservative epoch protocol
//!
//! The partition exploits the one irreducible latency of the radio model:
//! every cross-node effect is a reception scheduled **at least one packet
//! airtime** after its transmission (receive energy, overheard counters and
//! payload delivery all moved to reception time for exactly this reason).
//! With lookahead `Δ = airtime(0 payload bytes)`, the coordinator loops:
//!
//! 1. `t_min` ← the earliest pending event time across all regions;
//! 2. `bound` ← `min(t_min + Δ, deadline + 1 µs)` (exclusive);
//! 3. every region with events before `bound` runs them **in parallel** —
//!    receptions addressed to nodes owned elsewhere land in the region's
//!    outbox;
//! 4. barrier: outboxes are drained and routed into the owners' queues.
//!
//! No region can process an event at time `t < bound ≤ t_min + Δ` whose
//! cause (an event at some time `≥ t_min`) has not yet been routed to it,
//! because every cross-region effect is delayed by at least `Δ`. The
//! protocol is therefore *conservative*: nothing is ever rolled back.
//!
//! # Why the merge is deterministic
//!
//! Worker threads finish in arbitrary order, so boundary receptions arrive
//! at a region's queue in arbitrary order. Determinism survives because the
//! engine orders events by the **intrinsic** key `(time, class, source,
//! source_seq, target)` ([`crate::event::EventKey`]) rather than by
//! insertion order, packet-loss randomness is a pure function of the
//! transmission's identity (seed, sender, sender's emission counter), and
//! each node's state — application, energy meter, statistics — lives in
//! exactly one region and is touched only by that node's own events, in key
//! order. Per-node floating-point accumulation order is therefore identical
//! in both backends, which is what upgrades "statistically equal" to
//! "bit-for-bit equal".

use crate::event::{EventKey, CLASS_CONTROL, CLASS_START, CLASS_TIMER, EXTERNAL_SOURCE};
use crate::fault::DutyCycle;
use crate::sim::{Application, BatchTimerEntry, NetEvent, SimConfig, Simulator, TimerId};
use crate::stats::{NetworkStats, RegionStats};
use crate::topology::Topology;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use wsn_data::{GridTiling, Position, SensorId, Timestamp};
use wsn_pool::WorkerPool;

/// Telemetry ([`wsn_obs`]): conservative epochs executed.
static OBS_EPOCHS: wsn_obs::Counter = wsn_obs::Counter::new("region.epochs");
/// Telemetry: events processed per epoch (across all runnable regions).
static OBS_EPOCH_EVENTS: wsn_obs::Histogram = wsn_obs::Histogram::new("region.epoch_events");
/// Telemetry: how many regions had work in each epoch.
static OBS_RUNNABLE: wsn_obs::Histogram = wsn_obs::Histogram::new("region.epoch_runnable_regions");
/// Telemetry: wall-clock time the coordinator spent joining pool jobs at the
/// epoch barrier (absent when regions ran inline on a single-core pool).
static OBS_BARRIER_STALL: wsn_obs::Histogram = wsn_obs::Histogram::new("region.barrier_stall_ns");
/// Telemetry: boundary receptions routed between regions at barriers.
static OBS_OUTBOX_ROUTED: wsn_obs::Counter = wsn_obs::Counter::new("region.outbox_routed");
/// Telemetry: per-epoch load imbalance, `100 × busiest-region events / mean`
/// over the runnable regions (100 = perfectly balanced).
static OBS_IMBALANCE_PCT: wsn_obs::Histogram =
    wsn_obs::Histogram::new("region.epoch_imbalance_pct");

/// Events carrying their definitive [`EventKey`], ready for queue injection.
type KeyedEvents<M> = Vec<(EventKey, NetEvent<M>)>;

/// Which engine an experiment driver should run its simulation on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// One engine instance over the whole network (the equality oracle).
    #[default]
    Sequential,
    /// Spatially partitioned regions run in parallel on a worker pool.
    Partitioned {
        /// Requested region count; the actual count may be lower when the
        /// deployment is too small for that many radio-range-sized tiles
        /// (see [`Partition::grid`]).
        regions: usize,
    },
}

/// A spatial tiling of a topology into regions, with interior/boundary
/// classification.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Owned sensors per region, ascending within each region.
    regions: Vec<Vec<SensorId>>,
    /// Region index of every sensor.
    owner: BTreeMap<SensorId, usize>,
    /// Sensors with at least one single-hop neighbour in another region.
    boundary: BTreeSet<SensorId>,
    cols: usize,
    rows: usize,
}

impl Partition {
    /// Tiles the deployment into at most `target_regions` rectangular cells
    /// sized **no smaller than the radio range** along each axis, assigns
    /// every sensor to the cell containing it, and classifies sensors as
    /// interior or boundary (a boundary sensor has a neighbour owned by
    /// another region).
    ///
    /// The target is factorised into a near-square `cols × rows` grid and
    /// each axis is capped at `floor(extent / range)` cells, so small
    /// deployments produce fewer regions than requested — the equality
    /// contract holds for any region count, including one.
    ///
    /// # Panics
    ///
    /// Panics if `target_regions` is zero.
    pub fn grid(topology: &Topology, target_regions: usize) -> Self {
        assert!(target_regions > 0, "a partition needs at least one region");
        let ids = topology.sensor_ids();
        let positions: Vec<Position> = ids.iter().filter_map(|id| topology.position(*id)).collect();
        let (min_x, max_x) = extent(positions.iter().map(|p| p.x));
        let (min_y, max_y) = extent(positions.iter().map(|p| p.y));
        let width = (max_x - min_x).max(0.0);
        let height = (max_y - min_y).max(0.0);
        // Near-square factorisation: rows = the largest divisor of the
        // target not exceeding its square root.
        let mut rows_target = 1;
        for d in 1..=target_regions {
            if d * d > target_regions {
                break;
            }
            if target_regions % d == 0 {
                rows_target = d;
            }
        }
        let cols_target = target_regions / rows_target;
        // Cap each axis so a cell is never narrower than the radio range:
        // with one-radio-range cells, a sensor's neighbours live in its own
        // or an adjacent cell, which keeps the boundary band one cell thin.
        let range = topology.range_m().max(f64::EPSILON);
        let max_cols = ((width / range).floor() as usize).max(1);
        let max_rows = ((height / range).floor() as usize).max(1);
        // Orient the grid to the extent: more columns along the wider axis.
        let (cols_target, rows_target) = if (width >= height) == (cols_target >= rows_target) {
            (cols_target, rows_target)
        } else {
            (rows_target, cols_target)
        };
        let cols = cols_target.min(max_cols);
        let rows = rows_target.min(max_rows);
        let tiling = GridTiling::new(Position::new(min_x, min_y), width, height, cols, rows);
        // Assign sensors to cells, then drop empty cells so region indices
        // are dense.
        let mut by_cell: BTreeMap<usize, Vec<SensorId>> = BTreeMap::new();
        for id in &ids {
            let p = topology.position(*id).expect("id came from the topology");
            by_cell.entry(tiling.cell_of(&p)).or_default().push(*id);
        }
        let regions: Vec<Vec<SensorId>> = by_cell.into_values().collect();
        let owner: BTreeMap<SensorId, usize> = regions
            .iter()
            .enumerate()
            .flat_map(|(r, ids)| ids.iter().map(move |id| (*id, r)))
            .collect();
        let boundary: BTreeSet<SensorId> = ids
            .iter()
            .filter(|id| topology.neighbors_iter(**id).any(|n| owner.get(&n) != owner.get(id)))
            .copied()
            .collect();
        Partition { regions, owner, boundary, cols, rows }
    }

    /// Number of (non-empty) regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The sensors owned by each region, ascending within a region.
    pub fn regions(&self) -> &[Vec<SensorId>] {
        &self.regions
    }

    /// The region owning a sensor.
    pub fn owner(&self, id: SensorId) -> Option<usize> {
        self.owner.get(&id).copied()
    }

    /// Sensors in ascending order with their owning region.
    pub fn owners(&self) -> impl Iterator<Item = (SensorId, usize)> + '_ {
        self.owner.iter().map(|(id, r)| (*id, *r))
    }

    /// Returns `true` if the sensor has a neighbour in another region.
    pub fn is_boundary(&self, id: SensorId) -> bool {
        self.boundary.contains(&id)
    }

    /// Number of boundary sensors.
    pub fn boundary_count(&self) -> usize {
        self.boundary.len()
    }

    /// Number of interior sensors (no cross-region neighbours).
    pub fn interior_count(&self) -> usize {
        self.owner.len() - self.boundary.len()
    }

    /// The tiling's column/row shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Adopts a sensor the original tiling did not contain (a late joiner)
    /// into `region`. The interior/boundary classification is **not**
    /// recomputed — it describes the initial tiling and is used for
    /// diagnostics only.
    pub(crate) fn adopt(&mut self, id: SensorId, region: usize) {
        debug_assert!(!self.owner.contains_key(&id), "adopt is for previously unowned sensors");
        self.owner.insert(id, region);
        if let Err(pos) = self.regions[region].binary_search(&id) {
            self.regions[region].insert(pos, id);
        }
    }
}

fn extent(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

/// The common driving surface of the sequential and partitioned engines.
///
/// Experiment harnesses are written against this trait so a
/// [`SimBackend`] choice is a pure configuration change. Application
/// iteration is closure-based (`for_each_app`) rather than iterator-based so
/// the trait stays object-safe-ish simple and the partitioned engine can
/// walk its regions in **global ascending id order** without materialising a
/// merged map.
pub trait SimHandle<A: Application> {
    /// Current simulation time.
    fn now(&self) -> Timestamp;
    /// The communication topology.
    fn topology(&self) -> &Topology;
    /// Runs until `deadline` (inclusive) and advances the clock to it.
    /// Returns the number of events processed.
    fn run_until(&mut self, deadline: Timestamp) -> u64;
    /// Runs until drained or the next event lies beyond `deadline`; returns
    /// `true` if the network went quiescent.
    fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool;
    /// Snapshot of the network statistics at the current time.
    fn network_stats(&self) -> NetworkStats;
    /// Schedules an external timer.
    fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId);
    /// Schedules a pre-sorted external timer batch (one queue slot per
    /// engine).
    fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>);
    /// Removes a node and notifies its former neighbours.
    fn remove_node(&mut self, id: SensorId);
    /// Adds (or re-adds) a node at `position` running `app` — the dual of
    /// `remove_node`, modelling a late join or a rejoin after battery death.
    /// Returns the node's new single-hop neighbours in ascending order.
    fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId>;
    /// Installs the per-node radio duty cycles (nodes without an entry are
    /// always awake).
    fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>);
    /// Visits every application in ascending node order.
    fn for_each_app(&self, f: &mut dyn FnMut(SensorId, &A));
    /// Mutably visits every application in ascending node order.
    fn for_each_app_mut(&mut self, f: &mut dyn FnMut(SensorId, &mut A));
}

impl<A: Application> SimHandle<A> for Simulator<A> {
    fn now(&self) -> Timestamp {
        Simulator::now(self)
    }
    fn topology(&self) -> &Topology {
        Simulator::topology(self)
    }
    fn run_until(&mut self, deadline: Timestamp) -> u64 {
        Simulator::run_until(self, deadline)
    }
    fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        Simulator::run_until_quiescent(self, deadline)
    }
    fn network_stats(&self) -> NetworkStats {
        Simulator::network_stats(self)
    }
    fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) {
        let _ = Simulator::schedule_timer(self, node, at, timer);
    }
    fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        Simulator::schedule_timer_batch(self, entries);
    }
    fn remove_node(&mut self, id: SensorId) {
        Simulator::remove_node(self, id);
    }
    fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId> {
        Simulator::add_node(self, id, position, app)
    }
    fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>) {
        Simulator::set_duty_cycles(self, cycles);
    }
    fn for_each_app(&self, f: &mut dyn FnMut(SensorId, &A)) {
        for (id, app) in self.apps() {
            f(id, app);
        }
    }
    fn for_each_app_mut(&mut self, f: &mut dyn FnMut(SensorId, &mut A)) {
        for (id, app) in self.apps_mut() {
            f(id, app);
        }
    }
}

/// The spatially partitioned parallel engine.
///
/// Each region is a full [`Simulator`] owning the applications, meters and
/// statistics of its sensors (and a copy of the whole topology for fan-out
/// computation). The coordinator owns the external event-sequence counter —
/// it makes exactly the same allocations, in the same order, as the
/// sequential engine's constructor and scheduling methods, so every event
/// carries the same key in both backends.
///
/// The engine runs its regions on a **dedicated** worker pool rather than
/// the process-global one: harnesses routinely run whole simulations *as
/// jobs on* the global pool (seed sweeps), and joining same-pool jobs from
/// inside a worker would deadlock.
pub struct PartitionedSimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    /// One engine per region; `None` only transiently while a region is out
    /// on the worker pool.
    regions: Vec<Option<Simulator<A>>>,
    partition: Partition,
    pool: WorkerPool,
    config: SimConfig,
    /// Conservative lookahead: the airtime of a zero-payload packet, in µs.
    lookahead_micros: u64,
    /// The external event-sequence counter (start events, external timers,
    /// batches, removal notifications) — mirrors the sequential engine's.
    external_seq: u64,
    /// Global clock: the maximum of the regions' local clocks.
    now: Timestamp,
    /// Conservative epochs executed (diagnostics: parallel efficiency is
    /// roughly events-per-epoch against the per-epoch barrier cost).
    epochs: u64,
    /// Boundary receptions each region routed out at epoch barriers
    /// (feeds [`RegionStats::boundary_crossings`]).
    outbox_routed: Vec<u64>,
}

impl<A> PartitionedSimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    /// Builds a partitioned simulator over `topology` with (at most)
    /// `target_regions` regions, constructing applications with `make_app`
    /// in ascending id order — the same order as [`Simulator::new`] — and
    /// schedules every node's start event at time zero with the same event
    /// keys the sequential engine assigns.
    pub fn new(
        config: SimConfig,
        topology: Topology,
        target_regions: usize,
        mut make_app: impl FnMut(SensorId) -> A,
    ) -> Self {
        let partition = Partition::grid(&topology, target_regions);
        let ids = topology.sensor_ids();
        // Construct applications in global id order (make_app may be
        // stateful), then hand each region its own.
        let mut apps: BTreeMap<SensorId, A> = ids.iter().map(|id| (*id, make_app(*id))).collect();
        let regions: Vec<Option<Simulator<A>>> = partition
            .regions()
            .iter()
            .map(|owned| {
                Some(Simulator::new_owned(config, topology.clone(), owned.iter().copied(), |id| {
                    apps.remove(&id).expect("every owned id was constructed exactly once")
                }))
            })
            .collect();
        let lookahead_micros = ((config.radio.airtime_secs(0) * 1e6).round() as u64).max(1);
        let pool_size = partition.region_count().min(wsn_pool::default_size()).max(1);
        let mut sim = PartitionedSimulator {
            regions,
            outbox_routed: vec![0; partition.region_count()],
            partition,
            pool: WorkerPool::new(pool_size),
            config,
            lookahead_micros,
            external_seq: 0,
            now: Timestamp::ZERO,
            epochs: 0,
        };
        // Start events: identical keys to Simulator::new.
        let base = sim.alloc_external_seqs(ids.len() as u64);
        for (i, id) in ids.into_iter().enumerate() {
            let key = EventKey::new(
                Timestamp::ZERO,
                CLASS_START,
                EXTERNAL_SOURCE,
                base + i as u64,
                id.raw(),
            );
            sim.inject(id, key, NetEvent::Start);
        }
        sim
    }

    /// The partition the simulator runs on.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of regions executing in parallel.
    pub fn region_count(&self) -> usize {
        self.partition.region_count()
    }

    /// Current (global) simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The communication topology (every region holds an identical,
    /// identically patched copy; the first one answers).
    pub fn topology(&self) -> &Topology {
        self.region(0).topology()
    }

    /// Immutable access to a node's application, wherever it lives.
    pub fn app(&self, id: SensorId) -> Option<&A> {
        let r = self.partition.owner(id)?;
        self.region(r).app(id)
    }

    /// Number of conservative epochs the coordinator has run.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total events processed across all regions.
    pub fn events_processed(&self) -> u64 {
        (0..self.regions.len()).map(|r| self.region(r).events_processed()).sum()
    }

    /// Payload-carrying transmissions currently in flight across all
    /// regions (outboxes are always drained between epochs).
    pub fn messages_in_flight(&self) -> usize {
        (0..self.regions.len()).map(|r| self.region(r).messages_in_flight()).sum()
    }

    /// Runs the simulation until `deadline` (inclusive) in conservative
    /// epochs. Advances every region's clock (and the global clock) to
    /// `deadline`. Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Timestamp) -> u64 {
        let before = self.events_processed();
        self.drain_until(deadline);
        for region in &mut self.regions {
            region.as_mut().expect("region present").advance_clock(deadline);
        }
        if deadline > self.now {
            self.now = deadline;
        }
        self.events_processed() - before
    }

    /// Runs until every region is drained or the earliest pending event lies
    /// beyond `deadline`. Returns `true` if the network went quiescent. The
    /// global clock stays at the last processed event, like the sequential
    /// engine's.
    pub fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        self.drain_until(deadline);
        (0..self.regions.len())
            .all(|r| self.region(r).next_event_time().map_or(true, |t| t > deadline))
    }

    /// Schedules an external timer (same external key as the sequential
    /// engine would assign), routed to the owner region.
    pub fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) {
        let seq = self.alloc_external_seqs(1);
        let key = EventKey::new(at, CLASS_TIMER, EXTERNAL_SOURCE, seq, node.raw());
        self.inject(node, key, NetEvent::Timer(timer));
    }

    /// Schedules a pre-sorted timer batch, split by owner region — each
    /// region's share occupies one queue slot, and every entry keeps the
    /// exact key it has in the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted by time.
    pub fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        assert!(
            entries.windows(2).all(|pair| pair[0].0 <= pair[1].0),
            "timer batch entries must be sorted by ascending time"
        );
        if entries.is_empty() {
            return;
        }
        let base = self.alloc_external_seqs(entries.len() as u64);
        let keyed = Simulator::<A>::keyed_batch(&entries, base);
        let mut per_region: BTreeMap<usize, KeyedEvents<A::Message>> = BTreeMap::new();
        for (i, keyed_entry) in keyed.into_iter().enumerate() {
            let node = entries[i].1;
            let r = self.partition.owner(node).unwrap_or(0);
            // A subsequence of a key-sorted list stays key-sorted.
            per_region.entry(r).or_default().push(keyed_entry);
        }
        for (r, share) in per_region {
            self.regions[r].as_mut().expect("region present").inject_batch(share);
        }
    }

    /// Removes a node from every region's topology copy and notifies its
    /// former neighbours with the same control events (same keys, same
    /// time) the sequential engine schedules.
    pub fn remove_node(&mut self, id: SensorId) {
        crate::sim::OBS_NODE_DEATHS.add(1);
        let mut former = Vec::new();
        for region in &mut self.regions {
            former = region.as_mut().expect("region present").remove_node_local(id);
        }
        let base = self.alloc_external_seqs(former.len() as u64);
        let now = self.now;
        for (i, n) in former.into_iter().enumerate() {
            let key = EventKey::new(now, CLASS_CONTROL, EXTERNAL_SOURCE, base + i as u64, n.raw());
            self.inject(n, key, NetEvent::NeighborhoodChanged);
        }
    }

    /// Adds (or re-adds) a node: every region's topology copy is patched,
    /// the owner region adopts the application, and the node's start event
    /// plus the neighbour notifications are injected with the same keys (and
    /// the same external-sequence allocations) the sequential engine assigns.
    ///
    /// A **rejoining** node goes back to its original owner region — its
    /// energy meter and statistics live there and must keep accumulating —
    /// while a node the initial tiling never contained is adopted by the
    /// region owning its first (lowest-id) neighbour, falling back to region
    /// 0 if it joins out of range of everyone.
    pub fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId> {
        crate::sim::OBS_NODE_JOINS.add(1);
        let mut new_neighbors = Vec::new();
        for region in &mut self.regions {
            new_neighbors =
                region.as_mut().expect("region present").add_node_local(id, position, None);
        }
        let owner = match self.partition.owner(id) {
            Some(r) => r,
            None => {
                let r = new_neighbors.first().and_then(|n| self.partition.owner(*n)).unwrap_or(0);
                self.partition.adopt(id, r);
                r
            }
        };
        self.regions[owner].as_mut().expect("region present").adopt_component(id, app);
        let base = self.alloc_external_seqs(1 + new_neighbors.len() as u64);
        let now = self.now;
        let start = EventKey::new(now, CLASS_START, EXTERNAL_SOURCE, base, id.raw());
        self.inject(id, start, NetEvent::Start);
        for (i, n) in new_neighbors.iter().enumerate() {
            let key =
                EventKey::new(now, CLASS_CONTROL, EXTERNAL_SOURCE, base + 1 + i as u64, n.raw());
            self.inject(*n, key, NetEvent::NeighborhoodChanged);
        }
        new_neighbors
    }

    /// Installs the per-node radio duty cycles: every region receives the
    /// identical shared map, and each evaluates sleep at reception time for
    /// the nodes it owns.
    pub fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>) {
        for region in &mut self.regions {
            region.as_mut().expect("region present").set_duty_cycles(Arc::clone(&cycles));
        }
    }

    /// Network statistics merged across regions, with idle energy charged up
    /// to the **global** clock in every region (regions' local clocks stop at
    /// their own last event; the sequential engine charges everyone up to
    /// the global last event).
    pub fn network_stats(&self) -> NetworkStats {
        let mut stats = NetworkStats::default();
        for r in 0..self.regions.len() {
            stats.merge(&self.region(r).network_stats_at(self.now));
        }
        stats
    }

    /// Like [`PartitionedSimulator::network_stats`], additionally filling
    /// the per-region aggregates ([`NetworkStats::regions`]): events
    /// processed by each region's engine and boundary receptions it routed
    /// out at epoch barriers. Kept out of the plain snapshot so that one
    /// stays field-for-field comparable with the sequential engine's (which
    /// has no regions to report).
    pub fn network_stats_by_region(&self) -> NetworkStats {
        let mut stats = self.network_stats();
        for r in 0..self.regions.len() {
            stats.regions.insert(
                r as u32,
                RegionStats {
                    events_processed: self.region(r).events_processed(),
                    boundary_crossings: self.outbox_routed[r],
                },
            );
        }
        stats
    }

    /// Iterates applications in ascending global id order (regions own
    /// disjoint id sets; the owner map provides the global order).
    pub fn for_each_app(&self, f: &mut dyn FnMut(SensorId, &A)) {
        for (id, r) in self.partition.owners() {
            if let Some(app) = self.region(r).app(id) {
                f(id, app);
            }
        }
    }

    /// Mutable counterpart of [`PartitionedSimulator::for_each_app`].
    pub fn for_each_app_mut(&mut self, f: &mut dyn FnMut(SensorId, &mut A)) {
        let owners: Vec<(SensorId, usize)> = self.partition.owners().collect();
        for (id, r) in owners {
            let region = self.regions[r].as_mut().expect("region present");
            let mut found = false;
            for (app_id, app) in region.apps_mut() {
                if app_id == id {
                    f(id, app);
                    found = true;
                    break;
                }
            }
            let _ = found;
        }
    }

    /// The conservative epoch loop: processes every event with time ≤
    /// `deadline` across all regions.
    fn drain_until(&mut self, deadline: Timestamp) {
        loop {
            let t_min =
                (0..self.regions.len()).filter_map(|r| self.region(r).next_event_time()).min();
            let Some(t_min) = t_min else { break };
            if t_min > deadline {
                break;
            }
            // Exclusive epoch bound: no region may run past the earliest
            // possible cross-region effect, nor past the deadline.
            let bound_micros = (t_min.as_micros().saturating_add(self.lookahead_micros))
                .min(deadline.as_micros().saturating_add(1));
            let bound = Timestamp::from_micros(bound_micros);
            self.epochs += 1;
            let runnable: Vec<usize> = (0..self.regions.len())
                .filter(|&r| self.region(r).next_event_time().is_some_and(|t| t < bound))
                .collect();
            // Telemetry (write-only; nothing below branches on it): snapshot
            // the runnable regions' event counters so the per-epoch deltas
            // can be histogrammed after the run.
            let obs_before: Vec<(usize, u64)> = if wsn_obs::enabled() {
                runnable.iter().map(|&r| (r, self.region(r).events_processed())).collect()
            } else {
                Vec::new()
            };
            if runnable.len() == 1 || self.pool.size() == 1 {
                // A lone runnable region — or a single-core pool, where a
                // worker round-trip buys nothing but context switches —
                // runs inline on the coordinator thread.
                for r in runnable {
                    self.regions[r].as_mut().expect("region present").run_window(bound);
                }
            } else {
                let jobs: Vec<(usize, wsn_pool::JobHandle<Simulator<A>>)> = runnable
                    .into_iter()
                    .map(|r| {
                        let mut region = self.regions[r].take().expect("region present");
                        (
                            r,
                            self.pool.submit(move || {
                                region.run_window(bound);
                                region
                            }),
                        )
                    })
                    .collect();
                let stall_start =
                    if wsn_obs::enabled() { Some(std::time::Instant::now()) } else { None };
                // Join in region index order: the order is irrelevant for
                // determinism (keys are intrinsic) but fixed for sanity.
                for (r, job) in jobs {
                    self.regions[r] = Some(job.join());
                }
                if let Some(t0) = stall_start {
                    OBS_BARRIER_STALL.record(t0.elapsed().as_nanos() as u64);
                }
            }
            if wsn_obs::enabled() {
                OBS_EPOCHS.add(1);
                OBS_RUNNABLE.record(obs_before.len() as u64);
                let deltas: Vec<u64> = obs_before
                    .iter()
                    .map(|&(r, before)| self.region(r).events_processed() - before)
                    .collect();
                let total: u64 = deltas.iter().sum();
                OBS_EPOCH_EVENTS.record(total);
                if let Some(&max) = deltas.iter().max() {
                    if let Some(pct) = (max * deltas.len() as u64 * 100).checked_div(total) {
                        OBS_IMBALANCE_PCT.record(pct);
                    }
                }
            }
            // Barrier: route boundary receptions to their owner regions.
            for r in 0..self.regions.len() {
                let outbox = self.regions[r].as_mut().expect("region present").take_outbox();
                self.outbox_routed[r] += outbox.len() as u64;
                OBS_OUTBOX_ROUTED.add(outbox.len() as u64);
                for (key, event) in outbox {
                    debug_assert!(
                        key.time >= bound,
                        "cross-region events must land at or after the epoch bound"
                    );
                    self.inject(SensorId(key.target), key, event);
                }
            }
            for r in 0..self.regions.len() {
                let t = self.region(r).now();
                if t > self.now {
                    self.now = t;
                }
            }
        }
    }

    fn region(&self, r: usize) -> &Simulator<A> {
        self.regions[r].as_ref().expect("region present")
    }

    fn alloc_external_seqs(&mut self, count: u64) -> u64 {
        let base = self.external_seq;
        self.external_seq += count;
        base
    }

    fn inject(&mut self, node: SensorId, key: EventKey, event: NetEvent<A::Message>) {
        let r = self.partition.owner(node).unwrap_or(0);
        self.regions[r].as_mut().expect("region present").inject_keyed(key, event);
    }
}

impl<A> SimHandle<A> for PartitionedSimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    fn now(&self) -> Timestamp {
        PartitionedSimulator::now(self)
    }
    fn topology(&self) -> &Topology {
        PartitionedSimulator::topology(self)
    }
    fn run_until(&mut self, deadline: Timestamp) -> u64 {
        PartitionedSimulator::run_until(self, deadline)
    }
    fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        PartitionedSimulator::run_until_quiescent(self, deadline)
    }
    fn network_stats(&self) -> NetworkStats {
        PartitionedSimulator::network_stats(self)
    }
    fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) {
        PartitionedSimulator::schedule_timer(self, node, at, timer);
    }
    fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        PartitionedSimulator::schedule_timer_batch(self, entries);
    }
    fn remove_node(&mut self, id: SensorId) {
        PartitionedSimulator::remove_node(self, id);
    }
    fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId> {
        PartitionedSimulator::add_node(self, id, position, app)
    }
    fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>) {
        PartitionedSimulator::set_duty_cycles(self, cycles);
    }
    fn for_each_app(&self, f: &mut dyn FnMut(SensorId, &A)) {
        PartitionedSimulator::for_each_app(self, f);
    }
    fn for_each_app_mut(&mut self, f: &mut dyn FnMut(SensorId, &mut A)) {
        PartitionedSimulator::for_each_app_mut(self, f);
    }
}

/// Backend-erased simulator: one type experiment drivers can hold whichever
/// [`SimBackend`] the configuration selected.
pub enum AnySimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    /// The sequential engine.
    Sequential(Simulator<A>),
    /// The partitioned parallel engine.
    Partitioned(PartitionedSimulator<A>),
}

impl<A> AnySimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    /// Builds the engine the backend selects.
    pub fn build(
        backend: SimBackend,
        config: SimConfig,
        topology: Topology,
        make_app: impl FnMut(SensorId) -> A,
    ) -> Self {
        match backend {
            SimBackend::Sequential => {
                AnySimulator::Sequential(Simulator::new(config, topology, make_app))
            }
            SimBackend::Partitioned { regions } => AnySimulator::Partitioned(
                PartitionedSimulator::new(config, topology, regions, make_app),
            ),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $sim:ident => $body:expr) => {
        match $self {
            AnySimulator::Sequential($sim) => $body,
            AnySimulator::Partitioned($sim) => $body,
        }
    };
}

impl<A> SimHandle<A> for AnySimulator<A>
where
    A: Application + Send + 'static,
    A::Message: Send + Sync,
{
    fn now(&self) -> Timestamp {
        delegate!(self, s => SimHandle::<A>::now(s))
    }
    fn topology(&self) -> &Topology {
        delegate!(self, s => SimHandle::<A>::topology(s))
    }
    fn run_until(&mut self, deadline: Timestamp) -> u64 {
        delegate!(self, s => SimHandle::<A>::run_until(s, deadline))
    }
    fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        delegate!(self, s => SimHandle::<A>::run_until_quiescent(s, deadline))
    }
    fn network_stats(&self) -> NetworkStats {
        delegate!(self, s => SimHandle::<A>::network_stats(s))
    }
    fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) {
        delegate!(self, s => SimHandle::<A>::schedule_timer(s, node, at, timer))
    }
    fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        delegate!(self, s => SimHandle::<A>::schedule_timer_batch(s, entries))
    }
    fn remove_node(&mut self, id: SensorId) {
        delegate!(self, s => SimHandle::<A>::remove_node(s, id))
    }
    fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId> {
        delegate!(self, s => SimHandle::<A>::add_node(s, id, position, app))
    }
    fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>) {
        delegate!(self, s => SimHandle::<A>::set_duty_cycles(s, cycles))
    }
    fn for_each_app(&self, f: &mut dyn FnMut(SensorId, &A)) {
        delegate!(self, s => SimHandle::<A>::for_each_app(s, f))
    }
    fn for_each_app_mut(&mut self, f: &mut dyn FnMut(SensorId, &mut A)) {
        delegate!(self, s => SimHandle::<A>::for_each_app_mut(s, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::{LossModel, RadioConfig};
    use crate::sim::NodeContext;
    use wsn_data::stream::SensorSpec;

    fn grid_topology(side: u32, spacing: f64, range: f64) -> Topology {
        let specs: Vec<SensorSpec> = (0..side * side)
            .map(|i| {
                let (r, c) = (i / side, i % side);
                SensorSpec::new(
                    SensorId(i),
                    Position::new(f64::from(c) * spacing, f64::from(r) * spacing),
                )
            })
            .collect();
        Topology::from_specs(&specs, range)
    }

    #[test]
    fn partition_covers_every_sensor_exactly_once() {
        let topo = grid_topology(6, 5.0, 6.0);
        let p = Partition::grid(&topo, 4);
        assert!(p.region_count() >= 2 && p.region_count() <= 4);
        let total: usize = p.regions().iter().map(|r| r.len()).sum();
        assert_eq!(total, 36);
        for id in topo.sensor_ids() {
            let r = p.owner(id).expect("every sensor has an owner");
            assert!(p.regions()[r].contains(&id));
        }
        assert_eq!(p.boundary_count() + p.interior_count(), 36);
        assert!(p.boundary_count() > 0, "a multi-region grid has a boundary band");
        assert!(p.interior_count() > 0, "a 6x6 grid at this range has interior sensors");
    }

    #[test]
    fn partition_caps_region_count_for_tiny_deployments() {
        // Three sensors in a 10 m row cannot host nine radio-range tiles.
        let topo = grid_topology(2, 5.0, 6.0);
        let p = Partition::grid(&topo, 9);
        assert!(p.region_count() <= 2);
        let (cols, rows) = p.shape();
        assert!(cols * rows <= 2);
    }

    #[test]
    fn boundary_sensors_are_exactly_those_with_foreign_neighbors() {
        let topo = grid_topology(4, 5.0, 6.0);
        let p = Partition::grid(&topo, 2);
        for id in topo.sensor_ids() {
            let expected = topo.neighbors_iter(id).any(|n| p.owner(n) != p.owner(id));
            assert_eq!(p.is_boundary(id), expected, "sensor {id}");
        }
    }

    /// The flood protocol from the engine tests, used here to compare
    /// backends bit-for-bit.
    #[derive(Clone)]
    struct Flood {
        is_origin: bool,
        seen: bool,
        received_from: Vec<SensorId>,
    }

    impl Application for Flood {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut NodeContext<u32>) {
            if self.is_origin {
                self.seen = true;
                ctx.broadcast(7, 10);
            }
        }

        fn on_message(&mut self, ctx: &mut NodeContext<u32>, from: SensorId, message: u32) {
            self.received_from.push(from);
            if !self.seen {
                self.seen = true;
                ctx.broadcast(message, 10);
            }
        }

        fn on_timer(&mut self, ctx: &mut NodeContext<u32>, _timer: TimerId) {
            ctx.broadcast(99, 10);
        }
    }

    fn flood_config(loss: LossModel, seed: u64) -> SimConfig {
        SimConfig {
            radio: RadioConfig::with_range(6.0).with_loss(loss),
            seed,
            ..Default::default()
        }
    }

    fn flood_app(id: SensorId) -> Flood {
        Flood { is_origin: id == SensorId(0), seen: false, received_from: Vec::new() }
    }

    #[test]
    fn partitioned_flood_matches_sequential_bit_for_bit() {
        for (loss, seed) in [
            (LossModel::Reliable, 0),
            (LossModel::bernoulli(0.3), 7),
            (LossModel::bernoulli(0.3), 8),
        ] {
            for regions in [1, 2, 4, 9] {
                let topo = grid_topology(6, 5.0, 6.0);
                let config = flood_config(loss, seed);
                let mut seq = Simulator::new(config, topo.clone(), flood_app);
                let mut par = PartitionedSimulator::new(config, topo, regions, flood_app);
                seq.schedule_timer(SensorId(17), Timestamp::from_secs(2), 1);
                par.schedule_timer(SensorId(17), Timestamp::from_secs(2), 1);
                assert_eq!(
                    seq.run_until_quiescent(Timestamp::from_secs(10)),
                    par.run_until_quiescent(Timestamp::from_secs(10))
                );
                assert_eq!(seq.now(), par.now(), "regions={regions} seed={seed}");
                assert_eq!(seq.events_processed(), par.events_processed());
                assert_eq!(
                    seq.network_stats(),
                    par.network_stats(),
                    "regions={regions} seed={seed} (exact float equality)"
                );
                let mut seq_apps = Vec::new();
                seq.for_each_app(&mut |id, a: &Flood| {
                    seq_apps.push((id, a.seen, a.received_from.clone()));
                });
                let mut par_apps = Vec::new();
                par.for_each_app(&mut |id, a: &Flood| {
                    par_apps.push((id, a.seen, a.received_from.clone()));
                });
                assert_eq!(seq_apps, par_apps);
            }
        }
    }

    #[test]
    fn partitioned_node_removal_matches_sequential() {
        let topo = grid_topology(4, 5.0, 6.0);
        let config = flood_config(LossModel::Reliable, 1);
        let mut seq = Simulator::new(config, topo.clone(), flood_app);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        for sim in [&mut seq as &mut dyn SimHandle<Flood>, &mut par] {
            sim.run_until(Timestamp::from_secs(1));
            sim.remove_node(SensorId(5));
            sim.schedule_timer_batch(vec![
                (Timestamp::from_secs(2), SensorId(5), 0),
                (Timestamp::from_secs(2), SensorId(10), 1),
            ]);
            sim.run_until(Timestamp::from_secs(5));
        }
        assert_eq!(seq.topology().len(), par.topology().len());
        assert_eq!(seq.network_stats(), par.network_stats());
        assert_eq!(seq.events_processed(), par.events_processed());
    }

    #[test]
    fn partitioned_rejoin_after_death_matches_sequential() {
        let topo = grid_topology(4, 5.0, 6.0);
        let config = flood_config(LossModel::bernoulli(0.2), 5);
        let mut seq = Simulator::new(config, topo.clone(), flood_app);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        for sim in [&mut seq as &mut dyn SimHandle<Flood>, &mut par] {
            sim.run_until(Timestamp::from_secs(1));
            sim.remove_node(SensorId(5));
            sim.run_until(Timestamp::from_secs(2));
            // Node 5 rejoins at its grid position and broadcasts on a timer:
            // its emission counter continues where it left off, so the
            // packet-loss rolls line up across backends.
            sim.add_node(SensorId(5), Position::new(5.0, 5.0), flood_app(SensorId(5)));
            sim.schedule_timer(SensorId(5), Timestamp::from_secs(3), 9);
            sim.run_until(Timestamp::from_secs(5));
        }
        assert_eq!(seq.topology().len(), par.topology().len());
        assert_eq!(seq.network_stats(), par.network_stats());
        assert_eq!(seq.events_processed(), par.events_processed());
    }

    #[test]
    fn partitioned_late_join_of_a_new_node_matches_sequential() {
        let topo = grid_topology(3, 5.0, 6.0);
        let config = flood_config(LossModel::Reliable, 1);
        let mut seq = Simulator::new(config, topo.clone(), flood_app);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        for sim in [&mut seq as &mut dyn SimHandle<Flood>, &mut par] {
            sim.run_until(Timestamp::from_secs(1));
            let linked =
                sim.add_node(SensorId(100), Position::new(2.5, 2.5), flood_app(SensorId(100)));
            assert!(!linked.is_empty(), "the joiner lands inside the grid");
            sim.schedule_timer(SensorId(100), Timestamp::from_secs(2), 7);
            sim.run_until(Timestamp::from_secs(4));
        }
        assert_eq!(seq.topology().len(), 10);
        assert_eq!(seq.network_stats(), par.network_stats());
        assert_eq!(seq.events_processed(), par.events_processed());
        let mut seq_apps = Vec::new();
        seq.for_each_app(&mut |id, a: &Flood| seq_apps.push((id, a.seen)));
        let mut par_apps = Vec::new();
        par.for_each_app(&mut |id, a: &Flood| par_apps.push((id, a.seen)));
        assert_eq!(seq_apps, par_apps, "the joiner is visited in global id order");
    }

    #[test]
    fn duty_cycles_and_bursty_loss_match_sequential() {
        let topo = grid_topology(4, 5.0, 6.0);
        let config = flood_config(LossModel::gilbert_elliott(0.3, 0.4, 0.05, 0.9), 2);
        let cycles: Arc<BTreeMap<SensorId, DutyCycle>> = Arc::new(
            (0..16)
                .filter(|i| i % 3 == 0)
                .map(|i| {
                    (SensorId(i), DutyCycle::from_micros(40_000, 25_000, u64::from(i) * 1_000))
                })
                .collect(),
        );
        let mut seq = Simulator::new(config, topo.clone(), flood_app);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        seq.set_duty_cycles(Arc::clone(&cycles));
        par.set_duty_cycles(Arc::clone(&cycles));
        for sim in [&mut seq as &mut dyn SimHandle<Flood>, &mut par] {
            for t in 1..6u64 {
                sim.schedule_timer(SensorId(t as u32), Timestamp::from_secs(t), t);
            }
            sim.run_until_quiescent(Timestamp::from_secs(30));
        }
        let seq_stats = seq.network_stats();
        assert_eq!(seq_stats, par.network_stats(), "exact float equality");
        assert_eq!(seq.events_processed(), par.events_processed());
        assert!(seq_stats.total_packets_dropped_asleep() > 0, "some receptions hit sleepers");
        assert!(seq_stats.total_packets_dropped() > 0, "the bursty channel dropped packets");
    }

    #[test]
    fn run_until_aligns_all_regional_clocks() {
        let topo = grid_topology(4, 5.0, 6.0);
        let config = flood_config(LossModel::Reliable, 0);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        par.run_until(Timestamp::from_secs(3));
        assert_eq!(par.now(), Timestamp::from_secs(3));
        // Idle energy is charged on the aligned clock in every region.
        let stats = par.network_stats();
        assert!(stats.energy.values().all(|e| e.idle_joules > 0.0));
        assert_eq!(stats.energy.len(), 16);
    }

    #[test]
    fn per_region_stats_sum_to_global_totals() {
        let topo = grid_topology(6, 5.0, 6.0);
        let config = flood_config(LossModel::Reliable, 3);
        let mut par = PartitionedSimulator::new(config, topo, 4, flood_app);
        par.run_until_quiescent(Timestamp::from_secs(10));
        let stats = par.network_stats_by_region();
        assert_eq!(stats.regions.len(), par.region_count());
        assert_eq!(stats.total_region_events(), par.events_processed());
        assert!(stats.total_boundary_crossings() > 0, "a flood crosses region boundaries");
        // The plain snapshot stays region-free so it remains bit-comparable
        // with the sequential engine's.
        assert!(par.network_stats().regions.is_empty());
    }

    #[test]
    fn backend_selection_is_a_pure_configuration_change() {
        let topo = grid_topology(3, 5.0, 6.0);
        let config = flood_config(LossModel::Reliable, 0);
        let mut a = AnySimulator::build(SimBackend::Sequential, config, topo.clone(), flood_app);
        let mut b =
            AnySimulator::build(SimBackend::Partitioned { regions: 2 }, config, topo, flood_app);
        assert!(SimHandle::<Flood>::run_until_quiescent(&mut a, Timestamp::from_secs(5)));
        assert!(SimHandle::<Flood>::run_until_quiescent(&mut b, Timestamp::from_secs(5)));
        assert_eq!(SimHandle::<Flood>::network_stats(&a), SimHandle::<Flood>::network_stats(&b));
    }
}
