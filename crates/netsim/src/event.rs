//! The generic discrete-event core.
//!
//! This module is the bottom layer of the simulator's three-layer
//! architecture:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ wsn_netsim::region   spatial partitioning, epoch barriers,   │
//! │                      deterministic cross-region merge        │
//! ├──────────────────────────────────────────────────────────────┤
//! │ wsn_netsim::sim      the WSN domain: Application/NodeContext,│
//! │                      radio + MAC + energy accounting         │
//! ├──────────────────────────────────────────────────────────────┤
//! │ wsn_netsim::event    this module: EventKey total order,      │
//! │                      indexed EventQueue (cancellation,       │
//! │                      batches), Component dispatch (SimCore)  │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Nothing in this file knows about radios, packets or energy — it is a
//! plain discrete-event machine over user-defined components and event
//! payloads, in the style of generic simulation cores: an indexed binary
//! heap with stable intrinsic tie-breaking, O(log n) timer cancellation via
//! generation-checked handles, self-advancing event batches, and a
//! per-component dispatch context through which components emit their
//! reactions.
//!
//! # The determinism contract
//!
//! Every event carries an [`EventKey`] that is a **total order intrinsic to
//! the event itself** — `(time, class, source, source_seq, target)` — rather
//! than an order derived from heap insertion sequence. Two engines that
//! schedule the same set of events therefore process them in the same order
//! *no matter how the events were routed into their queues*. This is the
//! property the partitioned simulator ([`crate::region`]) rests on: a
//! region's queue receives boundary events from other regions at epoch
//! barriers, in whatever order the worker pool finished, and the heap still
//! pops them exactly where a single sequential queue would have.
//!
//! Key uniqueness is the scheduler's obligation: component-sourced events
//! take `(source = component id, source_seq = that component's emission
//! counter)`, externally scheduled events take `(source =`
//! [`EXTERNAL_SOURCE`]`, source_seq = the core's external counter)`, and one
//! transmission fans out over distinct `target`s.

use std::collections::BTreeMap;
use std::sync::Arc;
use wsn_data::Timestamp;

/// Telemetry ([`wsn_obs`]): events popped across every engine in the
/// process. Statics inside generic impls are shared across component types,
/// which is exactly the process-wide aggregation we want.
static OBS_EVENTS_POPPED: wsn_obs::Counter = wsn_obs::Counter::new("sim.events_popped");
/// Telemetry: heap-slot depth of the queue observed at each pop.
static OBS_QUEUE_DEPTH: wsn_obs::Histogram = wsn_obs::Histogram::new("sim.queue_depth");

/// Event class of node start-up events (processed first at equal times).
pub const CLASS_START: u8 = 0;
/// Event class of timer expiries.
pub const CLASS_TIMER: u8 = 1;
/// Event class of radio receptions (one airtime after their transmission).
pub const CLASS_RECEPTION: u8 = 2;
/// Event class of control/topology events (e.g. neighbourhood changes).
pub const CLASS_CONTROL: u8 = 3;

/// The `source` value of events scheduled from outside any component (test
/// harnesses, sampling schedules, the removal coordinator).
pub const EXTERNAL_SOURCE: u32 = u32::MAX;

/// The intrinsic total order of one event.
///
/// Keys compare lexicographically by `(time, class, source, source_seq,
/// target)`. See the module documentation for why the order must be a
/// function of the event rather than of queue-insertion history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// When the event fires.
    pub time: Timestamp,
    /// Coarse event class (`CLASS_*`), the first tie-breaker at equal times.
    pub class: u8,
    /// The component that caused the event, or [`EXTERNAL_SOURCE`].
    pub source: u32,
    /// The source's emission counter at the moment the event was scheduled.
    pub source_seq: u64,
    /// The component the event is addressed to.
    pub target: u32,
}

impl EventKey {
    /// Builds a key.
    pub fn new(time: Timestamp, class: u8, source: u32, source_seq: u64, target: u32) -> Self {
        EventKey { time, class, source, source_seq, target }
    }
}

/// Payloads an [`EventQueue`] can carry. Cloning is required because batch
/// entries are popped out of a shared allocation.
pub trait EventPayload: Clone {}
impl<T: Clone> EventPayload for T {}

/// A cancellation handle for a queued event (or event batch).
///
/// Handles are generation-checked: once the event fired (or was cancelled)
/// the slot's generation advances, and a stale handle's
/// [`EventQueue::cancel`] returns `false` instead of cancelling whatever
/// event happens to occupy the recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    index: u32,
    generation: u32,
}

enum Item<E> {
    Single {
        key: EventKey,
        event: E,
    },
    /// A pre-sorted run of events sharing **one** heap slot: the batch sits
    /// in the heap at the key of its next undispatched entry and re-keys
    /// itself (same allocation, advanced cursor) after each pop. A periodic
    /// fan-out over every node — such as a sampling round — therefore costs
    /// one queued slot instead of one per node × round.
    Batch {
        entries: Arc<Vec<(EventKey, E)>>,
        next: usize,
    },
}

impl<E> Item<E> {
    fn key(&self) -> EventKey {
        match self {
            Item::Single { key, .. } => *key,
            Item::Batch { entries, next } => entries[*next].0,
        }
    }
}

struct Slot<E> {
    generation: u32,
    /// `None` while the slot sits on the free list.
    item: Option<Item<E>>,
    heap_pos: usize,
}

/// An indexed binary min-heap of events ordered by [`EventKey`].
///
/// "Indexed" means every queued item owns a stable slab slot whose current
/// heap position is tracked, so cancellation by [`EventHandle`] is O(log n)
/// instead of a full rebuild or a tombstone sweep.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Heap of slab indices, ordered by the indexed item's current key.
    heap: Vec<u32>,
}

impl<E: EventPayload> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: EventPayload> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { slots: Vec::new(), free: Vec::new(), heap: Vec::new() }
    }

    /// Number of occupied heap slots. A batch counts as **one** slot however
    /// many entries it still carries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of pending events, counting every undispatched batch
    /// entry individually.
    pub fn pending_events(&self) -> usize {
        self.heap
            .iter()
            .map(|&slot| match self.slots[slot as usize].item.as_ref() {
                Some(Item::Single { .. }) => 1,
                Some(Item::Batch { entries, next }) => entries.len() - next,
                None => 0,
            })
            .sum()
    }

    /// The key of the earliest queued event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap
            .first()
            .map(|&slot| self.slots[slot as usize].item.as_ref().expect("occupied").key())
    }

    /// Queues one event and returns its cancellation handle.
    pub fn push(&mut self, key: EventKey, event: E) -> EventHandle {
        self.insert_item(Item::Single { key, event })
    }

    /// Queues a whole batch of events behind a **single** heap slot and
    /// returns its cancellation handle (cancelling a batch cancels every
    /// entry not yet dispatched). Returns `None` for an empty batch.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted by ascending key.
    pub fn push_batch(&mut self, entries: Vec<(EventKey, E)>) -> Option<EventHandle> {
        assert!(
            entries.windows(2).all(|pair| pair[0].0 <= pair[1].0),
            "batch entries must be sorted by ascending key"
        );
        if entries.is_empty() {
            return None;
        }
        Some(self.insert_item(Item::Batch { entries: Arc::new(entries), next: 0 }))
    }

    /// Cancels a queued event (or a batch's undispatched remainder). Returns
    /// `false` if the handle is stale — the event already fired or was
    /// cancelled before.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get(handle.index as usize) else {
            return false;
        };
        if slot.generation != handle.generation || slot.item.is_none() {
            return false;
        }
        let pos = slot.heap_pos;
        self.remove_at(pos);
        true
    }

    /// Pops the earliest event. Batches self-advance: popping a batch entry
    /// re-keys the batch at its next entry and sifts it back down.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let &slot_index = self.heap.first()?;
        let slot = &mut self.slots[slot_index as usize];
        match slot.item.as_mut().expect("occupied") {
            Item::Single { .. } => {
                let Some(Item::Single { key, event }) = self.free_slot(slot_index) else {
                    unreachable!("just matched Single");
                };
                self.heap_swap_remove_root();
                Some((key, event))
            }
            Item::Batch { entries, next } => {
                let (key, event) = entries[*next].clone();
                *next += 1;
                if *next == entries.len() {
                    self.free_slot(slot_index);
                    self.heap_swap_remove_root();
                } else {
                    // The batch's key grew to its next entry: restore heap
                    // order by sifting the root down.
                    self.sift_down(0);
                }
                Some((key, event))
            }
        }
    }

    fn insert_item(&mut self, item: Item<E>) -> EventHandle {
        let index = match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.item = Some(item);
                index
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("queue slot count fits in u32");
                self.slots.push(Slot { generation: 0, item: Some(item), heap_pos: 0 });
                index
            }
        };
        let pos = self.heap.len();
        self.heap.push(index);
        self.slots[index as usize].heap_pos = pos;
        self.sift_up(pos);
        EventHandle { index, generation: self.slots[index as usize].generation }
    }

    /// Clears a slot, advances its generation, returns its item and recycles
    /// the index. Does **not** touch the heap.
    fn free_slot(&mut self, index: u32) -> Option<Item<E>> {
        let slot = &mut self.slots[index as usize];
        let item = slot.item.take();
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index);
        item
    }

    /// Removes the root from the heap, assuming its slot was already freed.
    fn heap_swap_remove_root(&mut self) {
        self.heap.swap_remove(0);
        if let Some(&moved) = self.heap.first() {
            self.slots[moved as usize].heap_pos = 0;
            self.sift_down(0);
        }
    }

    /// Removes the item at heap position `pos` (freeing its slot).
    fn remove_at(&mut self, pos: usize) {
        let slot_index = self.heap[pos];
        self.free_slot(slot_index);
        self.heap.swap_remove(pos);
        if pos < self.heap.len() {
            self.slots[self.heap[pos] as usize].heap_pos = pos;
            // The swapped-in element may violate the heap in either
            // direction relative to its new neighbourhood.
            self.sift_up(pos);
            self.sift_down(pos);
        }
    }

    fn key_at(&self, pos: usize) -> EventKey {
        self.slots[self.heap[pos] as usize].item.as_ref().expect("occupied").key()
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].heap_pos = a;
        self.slots[self.heap[b] as usize].heap_pos = b;
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key_at(pos) >= self.key_at(parent) {
                break;
            }
            self.heap_swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < self.heap.len() && self.key_at(right) < self.key_at(left) {
                    right
                } else {
                    left
                };
            if self.key_at(pos) <= self.key_at(smallest_child) {
                break;
            }
            self.heap_swap(pos, smallest_child);
            pos = smallest_child;
        }
    }
}

/// The context a [`Component`] interacts with the engine through during one
/// event dispatch.
#[derive(Debug)]
pub struct ComponentContext<Em> {
    id: u32,
    now: Timestamp,
    emissions: Vec<Em>,
}

impl<Em> ComponentContext<Em> {
    /// The dispatched component's identifier.
    pub fn component_id(&self) -> u32 {
        self.id
    }

    /// The engine's current time (= the dispatched event's time).
    pub fn time(&self) -> Timestamp {
        self.now
    }

    /// Queues an emission — a reaction the engine interprets after the
    /// callback returns (a transmission, a timer request, …).
    pub fn emit(&mut self, emission: Em) {
        self.emissions.push(emission);
    }
}

/// A user-defined simulation component: one per `target` id, receiving the
/// events addressed to it in [`EventKey`] order.
pub trait Component {
    /// The event payload type delivered to this component.
    type Event: EventPayload;
    /// What the component emits in reaction to an event; interpreted by the
    /// layer driving the [`SimCore`].
    type Emission;
    /// Read-only environment handed to every dispatch (e.g. the component's
    /// current neighbour list). Passed per call rather than cached so the
    /// driving layer can mutate it between events.
    type Env: ?Sized;

    /// Handles one event addressed to this component.
    fn on_event(
        &mut self,
        ctx: &mut ComponentContext<Self::Emission>,
        env: &Self::Env,
        event: Self::Event,
    );
}

/// The generic engine: a set of [`Component`]s plus one [`EventQueue`],
/// stepped by a driving layer that interprets popped events and emissions.
///
/// The core does **not** run a loop of its own — the domain layer (e.g.
/// [`crate::sim::Simulator`]) pops events, applies engine-side effects
/// (energy accounting, statistics), dispatches to components and interprets
/// their emissions. That split keeps this type free of any WSN knowledge.
pub struct SimCore<C: Component> {
    components: BTreeMap<u32, C>,
    queue: EventQueue<C::Event>,
    now: Timestamp,
    events_processed: u64,
    /// Per-component emission counters: the `source_seq` of the next event a
    /// component causes. Monotone per component, never reused.
    emission_seqs: BTreeMap<u32, u64>,
    /// Counter behind [`EXTERNAL_SOURCE`] keys.
    external_seq: u64,
}

impl<C: Component> SimCore<C> {
    /// Creates an empty core at time zero.
    pub fn new() -> Self {
        SimCore {
            components: BTreeMap::new(),
            queue: EventQueue::new(),
            now: Timestamp::ZERO,
            events_processed: 0,
            emission_seqs: BTreeMap::new(),
            external_seq: 0,
        }
    }

    /// Adds (or replaces) a component.
    pub fn insert_component(&mut self, id: u32, component: C) {
        self.components.insert(id, component);
    }

    /// Removes a component; its queued events are silently skipped when they
    /// fire. Returns the component if it existed.
    pub fn remove_component(&mut self, id: u32) -> Option<C> {
        self.components.remove(&id)
    }

    /// Immutable access to a component.
    pub fn component(&self, id: u32) -> Option<&C> {
        self.components.get(&id)
    }

    /// Mutable access to a component.
    pub fn component_mut(&mut self, id: u32) -> Option<&mut C> {
        self.components.get_mut(&id)
    }

    /// Iterates over components in ascending id order.
    pub fn components(&self) -> impl Iterator<Item = (u32, &C)> {
        self.components.iter().map(|(id, c)| (*id, c))
    }

    /// Mutable iteration over components in ascending id order.
    pub fn components_mut(&mut self) -> impl Iterator<Item = (u32, &mut C)> {
        self.components.iter_mut().map(|(id, c)| (*id, c))
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The engine's current time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Forces the clock forward (used by `run_until`-style drivers to charge
    /// idle time up to a deadline). Never moves the clock backwards.
    pub fn advance_now(&mut self, to: Timestamp) {
        if to > self.now {
            self.now = to;
        }
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The event queue.
    pub fn queue(&self) -> &EventQueue<C::Event> {
        &self.queue
    }

    /// Mutable access to the event queue (for the driving layer's
    /// scheduling paths).
    pub fn queue_mut(&mut self) -> &mut EventQueue<C::Event> {
        &mut self.queue
    }

    /// The next emission `source_seq` of component `source`, advancing its
    /// counter. Counters are a pure function of the component's own event
    /// history, which is what makes keys reproducible across engine
    /// topologies (one queue or many regional queues).
    pub fn next_emission_seq(&mut self, source: u32) -> u64 {
        let seq = self.emission_seqs.entry(source).or_insert(0);
        let current = *seq;
        *seq += 1;
        current
    }

    /// Allocates `count` consecutive external sequence numbers and returns
    /// the first. External keys order harness-scheduled events (timers,
    /// batches, removal notifications) identically in every engine topology,
    /// provided the harness makes the same calls in the same order.
    pub fn alloc_external_seqs(&mut self, count: u64) -> u64 {
        let base = self.external_seq;
        self.external_seq = base + count;
        base
    }

    /// Pops the earliest event and advances the clock to it. The driving
    /// layer interprets the payload (and typically calls [`SimCore::dispatch`]).
    pub fn pop_event(&mut self) -> Option<(EventKey, C::Event)> {
        let (key, event) = self.queue.pop()?;
        debug_assert!(key.time >= self.now, "events must pop in time order");
        self.now = key.time;
        self.events_processed += 1;
        if wsn_obs::enabled() {
            OBS_EVENTS_POPPED.add(1);
            OBS_QUEUE_DEPTH.record(self.queue.len() as u64);
        }
        Some((key, event))
    }

    /// Dispatches an event to a component and returns its emissions (empty
    /// if the component does not exist — events to removed components are
    /// skipped silently).
    pub fn dispatch(&mut self, target: u32, env: &C::Env, event: C::Event) -> Vec<C::Emission> {
        let Some(component) = self.components.get_mut(&target) else {
            return Vec::new();
        };
        let mut ctx = ComponentContext { id: target, now: self.now, emissions: Vec::new() };
        component.on_event(&mut ctx, env, event);
        ctx.emissions
    }
}

impl<C: Component> Default for SimCore<C> {
    fn default() -> Self {
        SimCore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time_us: u64, seq: u64) -> EventKey {
        EventKey::new(Timestamp::from_micros(time_us), CLASS_TIMER, EXTERNAL_SOURCE, seq, 0)
    }

    fn drain(q: &mut EventQueue<&'static str>) -> Vec<(u64, &'static str)> {
        std::iter::from_fn(|| q.pop()).map(|(k, e)| (k.time.as_micros(), e)).collect()
    }

    #[test]
    fn events_pop_in_key_order_regardless_of_push_order() {
        let mut q = EventQueue::new();
        q.push(key(30, 0), "c");
        q.push(key(10, 1), "a");
        q.push(key(20, 2), "b");
        q.push(key(10, 0), "first");
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(10, "first"), (10, "a"), (20, "b"), (30, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn key_order_breaks_time_ties_by_class_source_seq_target() {
        let t = Timestamp::from_micros(5);
        let reception = EventKey::new(t, CLASS_RECEPTION, 3, 0, 9);
        let timer = EventKey::new(t, CLASS_TIMER, EXTERNAL_SOURCE, 99, 9);
        let start = EventKey::new(t, CLASS_START, EXTERNAL_SOURCE, 0, 9);
        assert!(start < timer && timer < reception);
        // Same transmission, fan-out ordered by target.
        let a = EventKey::new(t, CLASS_RECEPTION, 3, 7, 1);
        let b = EventKey::new(t, CLASS_RECEPTION, 3, 7, 2);
        assert!(a < b);
    }

    #[test]
    fn cancellation_removes_exactly_the_handled_event() {
        let mut q = EventQueue::new();
        let _a = q.push(key(10, 0), "a");
        let b = q.push(key(20, 1), "b");
        let _c = q.push(key(30, 2), "c");
        assert!(q.cancel(b));
        assert_eq!(drain(&mut q), vec![(10, "a"), (30, "c")]);
    }

    #[test]
    fn cancelling_twice_or_after_firing_is_a_stale_no_op() {
        let mut q = EventQueue::new();
        let a = q.push(key(10, 0), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is stale");
        let b = q.push(key(20, 1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(b), "cancel after firing is stale");
    }

    #[test]
    fn handles_survive_slot_recycling() {
        let mut q = EventQueue::new();
        let a = q.push(key(10, 0), "a");
        assert!(q.cancel(a));
        // The freed slot is recycled for `b` with a bumped generation.
        let b = q.push(key(20, 1), "b");
        assert!(!q.cancel(a), "stale handle must not cancel the recycled slot");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelling_the_earliest_event_reheaps_correctly() {
        let mut q = EventQueue::new();
        let a = q.push(key(10, 0), "a");
        for (i, name) in [(2u64, "x"), (3, "y"), (4, "z"), (5, "w")] {
            q.push(key(10 * i, i), name);
        }
        assert!(q.cancel(a));
        assert_eq!(q.peek_key().unwrap().time, Timestamp::from_micros(20));
        assert_eq!(drain(&mut q).len(), 4);
    }

    #[test]
    fn batches_occupy_one_slot_and_self_advance() {
        let mut q = EventQueue::new();
        q.push(key(25, 9), "single");
        let entries: Vec<(EventKey, &str)> =
            (0..4).map(|i| (key(10 * (i + 1), i), "batch")).collect();
        q.push_batch(entries).unwrap();
        assert_eq!(q.len(), 2, "four batch entries share one slot");
        assert_eq!(q.pending_events(), 5);
        let order = drain(&mut q);
        assert_eq!(
            order,
            vec![(10, "batch"), (20, "batch"), (25, "single"), (30, "batch"), (40, "batch")]
        );
    }

    #[test]
    fn cancelling_a_batch_drops_its_remainder() {
        let mut q = EventQueue::new();
        let entries: Vec<(EventKey, u32)> =
            (0..3).map(|i| (key(10 * (i + 1), i), i as u32)).collect();
        let h = q.push_batch(entries).unwrap();
        assert_eq!(q.pop().unwrap().1, 0);
        assert!(q.cancel(h), "the advanced batch still cancels as one item");
        assert!(q.is_empty());
    }

    #[test]
    fn empty_batches_are_rejected_gracefully() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.push_batch(Vec::new()).is_none());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "ascending key")]
    fn unsorted_batches_panic() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let _ = q.push_batch(vec![(key(20, 0), 1), (key(10, 1), 2)]);
    }

    #[test]
    fn interleaved_push_pop_cancel_matches_a_reference_model() {
        // Randomised torture: the indexed heap must agree with a sorted-Vec
        // reference model under arbitrary interleavings.
        let mut rng = wsn_data::rng::SeededRng::seed_from_u64(2024);
        let mut q = EventQueue::new();
        let mut model: Vec<(EventKey, u64)> = Vec::new();
        let mut handles: Vec<(EventHandle, EventKey, u64)> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..2000 {
            match rng.gen_index(4) {
                0 | 1 => {
                    let k = key(rng.gen_range(0u64..500), seq);
                    let h = q.push(k, seq);
                    model.push((k, seq));
                    handles.push((h, k, seq));
                    seq += 1;
                }
                2 => {
                    let expected = model.iter().min().copied();
                    let got = q.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((mk, mv)), Some((gk, gv))) => {
                            assert_eq!((mk, mv), (gk, gv));
                            model.retain(|&(k, v)| (k, v) != (mk, mv));
                        }
                        other => panic!("model/queue disagree: {other:?}"),
                    }
                }
                _ => {
                    if !handles.is_empty() {
                        let (h, k, v) = handles.swap_remove(rng.gen_index(handles.len()));
                        let in_model = model.iter().any(|&(mk, mv)| (mk, mv) == (k, v));
                        assert_eq!(q.cancel(h), in_model);
                        model.retain(|&(mk, mv)| (mk, mv) != (k, v));
                    }
                }
            }
            assert_eq!(q.len(), model.len());
        }
        let mut rest: Vec<(EventKey, u64)> = std::iter::from_fn(|| q.pop()).collect();
        model.sort();
        rest.sort();
        assert_eq!(rest, model);
    }

    struct Echo {
        log: Vec<(Timestamp, u8)>,
    }

    impl Component for Echo {
        type Event = u8;
        type Emission = u8;
        type Env = str;

        fn on_event(&mut self, ctx: &mut ComponentContext<u8>, env: &str, event: u8) {
            assert_eq!(env, "env");
            self.log.push((ctx.time(), event));
            ctx.emit(event + 1);
        }
    }

    #[test]
    fn core_dispatches_components_and_collects_emissions() {
        let mut core: SimCore<Echo> = SimCore::new();
        core.insert_component(1, Echo { log: Vec::new() });
        let seq = core.alloc_external_seqs(2);
        assert_eq!((seq, core.alloc_external_seqs(1)), (0, 2));
        core.queue_mut()
            .push(EventKey::new(Timestamp::from_micros(5), CLASS_TIMER, EXTERNAL_SOURCE, 0, 1), 10);
        core.queue_mut()
            .push(EventKey::new(Timestamp::from_micros(9), CLASS_TIMER, EXTERNAL_SOURCE, 1, 7), 99);
        let (k, e) = core.pop_event().unwrap();
        assert_eq!(core.now(), Timestamp::from_micros(5));
        let emissions = core.dispatch(k.target, "env", e);
        assert_eq!(emissions, vec![11]);
        // Events to unknown components are skipped silently.
        let (k, e) = core.pop_event().unwrap();
        assert!(core.dispatch(k.target, "env", e).is_empty());
        assert_eq!(core.events_processed(), 2);
        assert_eq!(core.component(1).unwrap().log, vec![(Timestamp::from_micros(5), 10)]);
        assert_eq!(core.component_count(), 1);
        // Emission counters advance per component.
        assert_eq!(core.next_emission_seq(1), 0);
        assert_eq!(core.next_emission_seq(1), 1);
        assert_eq!(core.next_emission_seq(2), 0);
    }
}
