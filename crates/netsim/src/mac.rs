//! Broadcast MAC with promiscuous listening.
//!
//! The distributed algorithms rely on the broadcast nature of the wireless
//! medium: one transmission reaches every neighbour, and neighbours listen
//! promiscuously (§5.2). The MAC layer here decides, for a given
//! transmission, which nodes are in range, which of them successfully decode
//! the payload (packet loss is sampled per receiver), and how long the
//! channel is occupied. Every in-range node pays receive energy for the whole
//! airtime whether or not it is the addressee and whether or not decoding
//! succeeds — that is what promiscuous listening costs, and it is the reason
//! the funnel around the centralized sink burns energy so quickly (§8).

use crate::packet::Destination;
use crate::radio::{LossModel, RadioConfig};
use crate::topology::Topology;
use std::collections::BTreeMap;
use wsn_data::rng::{SeededRng, SplitMix64};
use wsn_data::SensorId;

/// The outcome of one transmission for one in-range node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceptionOutcome {
    /// The node that heard the transmission.
    pub receiver: SensorId,
    /// Whether the payload should be delivered to the receiver's application
    /// (in range, addressed to it — or broadcast — and not dropped).
    pub delivers_payload: bool,
    /// Whether the packet was lost for this receiver despite being addressed
    /// to it.
    pub dropped: bool,
}

/// The full outcome of one transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionOutcome {
    /// Seconds of channel time the transmission occupies.
    pub airtime_secs: f64,
    /// One entry per node within radio range of the sender.
    pub receptions: Vec<ReceptionOutcome>,
}

impl TransmissionOutcome {
    /// The receivers whose application should see the payload.
    pub fn delivered_to(&self) -> Vec<SensorId> {
        self.receptions.iter().filter(|r| r.delivers_payload).map(|r| r.receiver).collect()
    }

    /// How many addressed receivers lost the packet.
    pub fn drop_count(&self) -> usize {
        self.receptions.iter().filter(|r| r.dropped).count()
    }
}

/// The per-directed-link Gilbert–Elliott chain state. Links start in the
/// good state at step 0; the chain advances exactly once per reception
/// computed on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LinkState {
    /// `true` while the link is in the bad (bursty-loss) state.
    bad: bool,
    /// How many transmissions the chain has been advanced over — the counter
    /// that keys the link's per-step random rolls.
    step: u64,
}

/// The four chain parameters of a Gilbert–Elliott link, copied out of the
/// [`LossModel::GilbertElliott`] variant for one transmission.
#[derive(Debug, Clone, Copy)]
struct GilbertElliottParams {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    drop_good: f64,
    drop_bad: f64,
}

/// The Gilbert–Elliott channel memory of one simulator: one Markov chain per
/// directed `(sender, receiver)` link, advanced in the sender's emission
/// order.
///
/// Determinism: each step's two rolls (drop, transition) are a pure function
/// of `(seed, sender, receiver, step)` — the same counter-keying trick as
/// the per-transmission Bernoulli RNG — and a given sender's transmissions
/// are computed in emission order by exactly one region, so the chain walks
/// the same path on the sequential and partitioned backends.
#[derive(Debug, Clone, Default)]
pub struct LinkChannels {
    links: BTreeMap<(SensorId, SensorId), LinkState>,
}

impl LinkChannels {
    /// Fresh channel memory: every link good, step 0.
    pub fn new() -> Self {
        LinkChannels::default()
    }

    /// Advances the `(sender, receiver)` chain one step and returns whether
    /// this transmission is lost on the link.
    fn sample(
        &mut self,
        seed: u64,
        sender: SensorId,
        receiver: SensorId,
        params: GilbertElliottParams,
    ) -> bool {
        let state = self.links.entry((sender, receiver)).or_default();
        // Two explicit gen_f64 draws per step (never gen_bool, whose p ≤ 0 /
        // p ≥ 1 shortcuts skip draws): the draw count per step is fixed, so
        // the chain's path depends only on the link identity and step count.
        let mut rng = link_step_rng(seed, sender, receiver, state.step);
        let drop_roll = rng.gen_f64();
        let transition_roll = rng.gen_f64();
        let (drop_probability, p_leave) = if state.bad {
            (params.drop_bad, params.p_bad_to_good)
        } else {
            (params.drop_good, params.p_good_to_bad)
        };
        let lost = drop_roll < drop_probability;
        if transition_roll < p_leave {
            state.bad = !state.bad;
        }
        state.step += 1;
        lost
    }
}

/// The RNG of one Gilbert–Elliott chain step, keyed by the directed link and
/// the link's step counter.
fn link_step_rng(seed: u64, sender: SensorId, receiver: SensorId, step: u64) -> SeededRng {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let link_key = seed
        .wrapping_add(GOLDEN.wrapping_mul(u64::from(sender.raw())))
        .wrapping_add(GOLDEN.wrapping_mul(u64::from(receiver.raw()) << 32 | 1));
    let keyed = SplitMix64::new(link_key).next_u64() ^ step;
    SeededRng::seed_from_u64(SplitMix64::new(keyed).next_u64())
}

/// Computes the outcome of a transmission from `sender` over the given
/// topology and radio configuration, sampling per-receiver losses from `rng`.
///
/// Stateless convenience over [`transmit_with_channels`]: under a
/// Gilbert–Elliott loss model every link's chain starts fresh here, so
/// long-lived simulations must hold their own [`LinkChannels`].
pub fn transmit(
    topology: &Topology,
    radio: &RadioConfig,
    rng: &mut SeededRng,
    sender: SensorId,
    destination: Destination,
    payload_bytes: usize,
) -> TransmissionOutcome {
    let mut channels = LinkChannels::new();
    transmit_with_channels(
        topology,
        radio,
        rng,
        &mut channels,
        0,
        sender,
        destination,
        payload_bytes,
    )
}

/// [`transmit`] with explicit channel memory: Gilbert–Elliott links advance
/// their persistent per-link chains in `channels` (keyed by `seed`), while
/// the Reliable and Bernoulli models behave exactly as before and never
/// touch `channels`.
#[allow(clippy::too_many_arguments)]
pub fn transmit_with_channels(
    topology: &Topology,
    radio: &RadioConfig,
    rng: &mut SeededRng,
    channels: &mut LinkChannels,
    seed: u64,
    sender: SensorId,
    destination: Destination,
    payload_bytes: usize,
) -> TransmissionOutcome {
    let airtime_secs = radio.airtime_secs(payload_bytes);
    let mut receptions = Vec::new();
    for receiver in topology.neighbors_iter(sender) {
        let addressed = match destination {
            Destination::Broadcast => true,
            Destination::Unicast(target) => receiver == target,
        };
        let lost = match radio.loss {
            LossModel::Reliable => false,
            LossModel::Bernoulli { drop_probability } => rng.gen_bool(drop_probability),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, drop_good, drop_bad } => {
                channels.sample(
                    seed,
                    sender,
                    receiver,
                    GilbertElliottParams { p_good_to_bad, p_bad_to_good, drop_good, drop_bad },
                )
            }
        };
        receptions.push(ReceptionOutcome {
            receiver,
            delivers_payload: addressed && !lost,
            dropped: addressed && lost,
        });
    }
    TransmissionOutcome { airtime_secs, receptions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::stream::SensorSpec;
    use wsn_data::Position;

    fn chain(n: u32) -> Topology {
        let specs: Vec<SensorSpec> = (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    #[test]
    fn broadcast_reaches_every_neighbor_and_only_neighbors() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Broadcast, 100);
        let mut delivered = out.delivered_to();
        delivered.sort();
        assert_eq!(delivered, vec![SensorId(0), SensorId(2)]);
        assert_eq!(out.drop_count(), 0);
        assert!(out.airtime_secs > 0.0);
    }

    #[test]
    fn unicast_delivers_payload_only_to_the_target_but_everyone_listens() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out =
            transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Unicast(SensorId(2)), 50);
        assert_eq!(out.delivered_to(), vec![SensorId(2)]);
        // Both neighbours appear in the reception list (they pay RX energy).
        assert_eq!(out.receptions.len(), 2);
    }

    #[test]
    fn unicast_to_a_non_neighbor_delivers_nothing() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out =
            transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Unicast(SensorId(3)), 50);
        assert!(out.delivered_to().is_empty());
    }

    #[test]
    fn certain_loss_drops_every_addressed_packet() {
        let topo = chain(3);
        let radio = RadioConfig::paper_default().with_loss(LossModel::bernoulli(1.0));
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Broadcast, 10);
        assert!(out.delivered_to().is_empty());
        assert_eq!(out.drop_count(), 2);
    }

    #[test]
    fn partial_loss_drops_roughly_the_configured_fraction() {
        let topo = chain(2);
        let radio = RadioConfig::paper_default().with_loss(LossModel::bernoulli(0.3));
        let mut rng = SeededRng::seed_from_u64(42);
        let mut drops = 0;
        let trials = 2000;
        for _ in 0..trials {
            let out = transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Broadcast, 10);
            drops += out.drop_count();
        }
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn gilbert_elliott_drops_are_deterministic_and_bursty() {
        let topo = chain(2);
        // Good state never drops, bad state always does: the observed drop
        // sequence is exactly the chain's state sequence.
        let radio =
            RadioConfig::paper_default().with_loss(LossModel::gilbert_elliott(0.2, 0.3, 0.0, 1.0));
        let run = |seed: u64| {
            let mut channels = LinkChannels::new();
            let mut rng = SeededRng::seed_from_u64(7);
            (0..400)
                .map(|_| {
                    let out = transmit_with_channels(
                        &topo,
                        &radio,
                        &mut rng,
                        &mut channels,
                        seed,
                        SensorId(0),
                        Destination::Broadcast,
                        10,
                    );
                    out.drop_count() == 1
                })
                .collect::<Vec<bool>>()
        };
        let drops = run(99);
        assert_eq!(drops, run(99), "same seed, same chain path");
        assert_ne!(drops, run(100), "a different seed walks a different path");
        // The chain visits both states …
        let drop_count = drops.iter().filter(|d| **d).count();
        assert!(drop_count > 50 && drop_count < 350, "dropped {drop_count}/400");
        // … and losses cluster: a drop is far more likely after a drop than
        // the unconditional rate (the signature i.i.d. loss cannot show).
        let after_drop = drops.windows(2).filter(|w| w[0]).count();
        let drop_after_drop = drops.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = drop_after_drop as f64 / after_drop as f64;
        let unconditional = drop_count as f64 / drops.len() as f64;
        assert!(
            conditional > unconditional + 0.15,
            "P(drop|drop) = {conditional:.2} vs P(drop) = {unconditional:.2}"
        );
    }

    #[test]
    fn gilbert_elliott_links_evolve_independently() {
        let topo = chain(3);
        let radio =
            RadioConfig::paper_default().with_loss(LossModel::gilbert_elliott(0.5, 0.5, 0.0, 1.0));
        let mut channels = LinkChannels::new();
        let mut rng = SeededRng::seed_from_u64(7);
        let mut per_link: BTreeMap<SensorId, Vec<bool>> = BTreeMap::new();
        for _ in 0..200 {
            let out = transmit_with_channels(
                &topo,
                &radio,
                &mut rng,
                &mut channels,
                5,
                SensorId(1),
                Destination::Broadcast,
                10,
            );
            for r in &out.receptions {
                per_link.entry(r.receiver).or_default().push(r.dropped);
            }
        }
        assert_ne!(per_link[&SensorId(0)], per_link[&SensorId(2)], "distinct per-link chains");
    }

    #[test]
    fn airtime_matches_the_radio_configuration() {
        let topo = chain(2);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Broadcast, 123);
        assert_eq!(out.airtime_secs, radio.airtime_secs(123));
    }
}
