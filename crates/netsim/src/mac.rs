//! Broadcast MAC with promiscuous listening.
//!
//! The distributed algorithms rely on the broadcast nature of the wireless
//! medium: one transmission reaches every neighbour, and neighbours listen
//! promiscuously (§5.2). The MAC layer here decides, for a given
//! transmission, which nodes are in range, which of them successfully decode
//! the payload (packet loss is sampled per receiver), and how long the
//! channel is occupied. Every in-range node pays receive energy for the whole
//! airtime whether or not it is the addressee and whether or not decoding
//! succeeds — that is what promiscuous listening costs, and it is the reason
//! the funnel around the centralized sink burns energy so quickly (§8).

use crate::packet::Destination;
use crate::radio::{LossModel, RadioConfig};
use crate::topology::Topology;
use wsn_data::rng::SeededRng;
use wsn_data::SensorId;

/// The outcome of one transmission for one in-range node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceptionOutcome {
    /// The node that heard the transmission.
    pub receiver: SensorId,
    /// Whether the payload should be delivered to the receiver's application
    /// (in range, addressed to it — or broadcast — and not dropped).
    pub delivers_payload: bool,
    /// Whether the packet was lost for this receiver despite being addressed
    /// to it.
    pub dropped: bool,
}

/// The full outcome of one transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionOutcome {
    /// Seconds of channel time the transmission occupies.
    pub airtime_secs: f64,
    /// One entry per node within radio range of the sender.
    pub receptions: Vec<ReceptionOutcome>,
}

impl TransmissionOutcome {
    /// The receivers whose application should see the payload.
    pub fn delivered_to(&self) -> Vec<SensorId> {
        self.receptions.iter().filter(|r| r.delivers_payload).map(|r| r.receiver).collect()
    }

    /// How many addressed receivers lost the packet.
    pub fn drop_count(&self) -> usize {
        self.receptions.iter().filter(|r| r.dropped).count()
    }
}

/// Computes the outcome of a transmission from `sender` over the given
/// topology and radio configuration, sampling per-receiver losses from `rng`.
pub fn transmit(
    topology: &Topology,
    radio: &RadioConfig,
    rng: &mut SeededRng,
    sender: SensorId,
    destination: Destination,
    payload_bytes: usize,
) -> TransmissionOutcome {
    let airtime_secs = radio.airtime_secs(payload_bytes);
    let mut receptions = Vec::new();
    for receiver in topology.neighbors_iter(sender) {
        let addressed = match destination {
            Destination::Broadcast => true,
            Destination::Unicast(target) => receiver == target,
        };
        let lost = match radio.loss {
            LossModel::Reliable => false,
            LossModel::Bernoulli { drop_probability } => rng.gen_bool(drop_probability),
        };
        receptions.push(ReceptionOutcome {
            receiver,
            delivers_payload: addressed && !lost,
            dropped: addressed && lost,
        });
    }
    TransmissionOutcome { airtime_secs, receptions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::stream::SensorSpec;
    use wsn_data::Position;

    fn chain(n: u32) -> Topology {
        let specs: Vec<SensorSpec> = (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    #[test]
    fn broadcast_reaches_every_neighbor_and_only_neighbors() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Broadcast, 100);
        let mut delivered = out.delivered_to();
        delivered.sort();
        assert_eq!(delivered, vec![SensorId(0), SensorId(2)]);
        assert_eq!(out.drop_count(), 0);
        assert!(out.airtime_secs > 0.0);
    }

    #[test]
    fn unicast_delivers_payload_only_to_the_target_but_everyone_listens() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out =
            transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Unicast(SensorId(2)), 50);
        assert_eq!(out.delivered_to(), vec![SensorId(2)]);
        // Both neighbours appear in the reception list (they pay RX energy).
        assert_eq!(out.receptions.len(), 2);
    }

    #[test]
    fn unicast_to_a_non_neighbor_delivers_nothing() {
        let topo = chain(4);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out =
            transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Unicast(SensorId(3)), 50);
        assert!(out.delivered_to().is_empty());
    }

    #[test]
    fn certain_loss_drops_every_addressed_packet() {
        let topo = chain(3);
        let radio = RadioConfig::paper_default().with_loss(LossModel::bernoulli(1.0));
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(1), Destination::Broadcast, 10);
        assert!(out.delivered_to().is_empty());
        assert_eq!(out.drop_count(), 2);
    }

    #[test]
    fn partial_loss_drops_roughly_the_configured_fraction() {
        let topo = chain(2);
        let radio = RadioConfig::paper_default().with_loss(LossModel::bernoulli(0.3));
        let mut rng = SeededRng::seed_from_u64(42);
        let mut drops = 0;
        let trials = 2000;
        for _ in 0..trials {
            let out = transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Broadcast, 10);
            drops += out.drop_count();
        }
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn airtime_matches_the_radio_configuration() {
        let topo = chain(2);
        let radio = RadioConfig::paper_default();
        let mut rng = SeededRng::seed_from_u64(1);
        let out = transmit(&topo, &radio, &mut rng, SensorId(0), Destination::Broadcast, 123);
        assert_eq!(out.airtime_secs, radio.airtime_secs(123));
    }
}
