//! Per-node and network-wide traffic / energy statistics.
//!
//! The evaluation reports energy per node per sampling round (Figs. 4, 7–9),
//! the min/avg/max spread across nodes (Figs. 5–6), and traffic-imbalance
//! observations (§8). This module collects the raw per-node counters during a
//! simulation and provides the aggregations the harness prints.

use crate::energy::EnergyReport;
use std::collections::BTreeMap;
use wsn_data::SensorId;

/// Link-layer counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Packets this node transmitted.
    pub packets_sent: u64,
    /// Packets whose payload was delivered to this node's application.
    pub packets_received: u64,
    /// Packets this node overheard (in range) without being an addressee or
    /// after a loss — it still paid receive energy for them.
    pub packets_overheard: u64,
    /// Packets addressed to this node that were lost.
    pub packets_dropped: u64,
    /// Packets that arrived while this node's radio was duty-cycled asleep —
    /// never heard at all (no receive energy, no overhearing).
    pub packets_dropped_asleep: u64,
    /// Payload bytes transmitted.
    pub bytes_sent: u64,
    /// Payload bytes received (delivered payloads only).
    pub bytes_received: u64,
}

impl NodeStats {
    /// Total packets this node's radio handled (sent + heard).
    pub fn radio_activity(&self) -> u64 {
        self.packets_sent + self.packets_received + self.packets_overheard
    }

    /// Adds another counter set into this one. Counter addition is
    /// commutative and associative, so merging shards in any order yields
    /// the same totals.
    pub fn merge(&mut self, other: &NodeStats) {
        self.packets_sent += other.packets_sent;
        self.packets_received += other.packets_received;
        self.packets_overheard += other.packets_overheard;
        self.packets_dropped += other.packets_dropped;
        self.packets_dropped_asleep += other.packets_dropped_asleep;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

/// Execution counters of one region of the partitioned simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Events this region's engine processed.
    pub events_processed: u64,
    /// Events this region routed to other regions at epoch barriers
    /// (cross-region receptions originating here).
    pub boundary_crossings: u64,
}

impl RegionStats {
    /// Adds another region's counters into this one (commutative, like
    /// [`NodeStats::merge`]).
    pub fn merge(&mut self, other: &RegionStats) {
        self.events_processed += other.events_processed;
        self.boundary_crossings += other.boundary_crossings;
    }
}

/// A snapshot of the whole network's statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Per-node link counters.
    pub nodes: BTreeMap<SensorId, NodeStats>,
    /// Per-node energy reports.
    pub energy: BTreeMap<SensorId, EnergyReport>,
    /// Per-region execution counters. Empty on the sequential engine **and**
    /// on [`NetworkStats`] snapshots meant for cross-backend equality checks;
    /// populated only by
    /// `PartitionedSimulator::network_stats_by_region`.
    pub regions: BTreeMap<u32, RegionStats>,
}

/// Minimum / average / maximum summary of a per-node quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinAvgMax {
    /// Smallest per-node value.
    pub min: f64,
    /// Mean per-node value.
    pub avg: f64,
    /// Largest per-node value.
    pub max: f64,
}

impl MinAvgMax {
    /// Summarises a list of values. Returns all zeros for an empty list.
    pub fn of(values: &[f64]) -> MinAvgMax {
        if values.is_empty() {
            return MinAvgMax::default();
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        MinAvgMax { min, avg, max }
    }

    /// The same summary normalised by its own average (the view of Fig. 6).
    /// Returns all zeros when the average is zero.
    pub fn normalized(&self) -> MinAvgMax {
        if self.avg == 0.0 {
            return MinAvgMax::default();
        }
        MinAvgMax { min: self.min / self.avg, avg: 1.0, max: self.max / self.avg }
    }
}

impl NetworkStats {
    /// Total packets transmitted in the network.
    pub fn total_packets_sent(&self) -> u64 {
        self.nodes.values().map(|n| n.packets_sent).sum()
    }

    /// Total payload bytes transmitted in the network.
    pub fn total_bytes_sent(&self) -> u64 {
        self.nodes.values().map(|n| n.bytes_sent).sum()
    }

    /// Total packets addressed-but-lost in the network.
    pub fn total_packets_dropped(&self) -> u64 {
        self.nodes.values().map(|n| n.packets_dropped).sum()
    }

    /// Total packets that arrived at sleeping radios in the network.
    pub fn total_packets_dropped_asleep(&self) -> u64 {
        self.nodes.values().map(|n| n.packets_dropped_asleep).sum()
    }

    /// Per-node transmit energy values, in ascending node order.
    pub fn tx_energy_per_node(&self) -> Vec<f64> {
        self.energy.values().map(|e| e.tx_joules).collect()
    }

    /// Per-node receive energy values, in ascending node order.
    pub fn rx_energy_per_node(&self) -> Vec<f64> {
        self.energy.values().map(|e| e.rx_joules).collect()
    }

    /// Per-node total energy values, in ascending node order.
    pub fn total_energy_per_node(&self) -> Vec<f64> {
        self.energy.values().map(|e| e.total()).collect()
    }

    /// Min/avg/max of per-node total energy (the quantity of Figs. 5–6).
    pub fn total_energy_summary(&self) -> MinAvgMax {
        MinAvgMax::of(&self.total_energy_per_node())
    }

    /// Min/avg/max of per-node transmit energy.
    pub fn tx_energy_summary(&self) -> MinAvgMax {
        MinAvgMax::of(&self.tx_energy_per_node())
    }

    /// Min/avg/max of per-node receive energy.
    pub fn rx_energy_summary(&self) -> MinAvgMax {
        MinAvgMax::of(&self.rx_energy_per_node())
    }

    /// The ratio between the busiest node's radio activity and the average
    /// node's — the traffic-imbalance observation of §8.
    pub fn traffic_imbalance(&self) -> f64 {
        let activity: Vec<f64> = self.nodes.values().map(|n| n.radio_activity() as f64).collect();
        let summary = MinAvgMax::of(&activity);
        if summary.avg == 0.0 {
            0.0
        } else {
            summary.max / summary.avg
        }
    }

    /// Merges another snapshot (a shard of the network — e.g. one region of
    /// the partitioned simulator) into this one. Per-node counters add and
    /// energy reports accumulate, so the merge is order-independent: any
    /// permutation of shards produces identical totals. Disjoint shards
    /// (each node reported by exactly one) reassemble the exact sequential
    /// snapshot, including bit-identical energy floats.
    pub fn merge(&mut self, shard: &NetworkStats) {
        for (id, ns) in &shard.nodes {
            self.nodes.entry(*id).or_default().merge(ns);
        }
        for (id, e) in &shard.energy {
            self.energy.entry(*id).or_default().accumulate(e);
        }
        for (r, rs) in &shard.regions {
            self.regions.entry(*r).or_default().merge(rs);
        }
    }

    /// Total events processed across all reported regions.
    pub fn total_region_events(&self) -> u64 {
        self.regions.values().map(|r| r.events_processed).sum()
    }

    /// Total cross-region boundary crossings across all reported regions.
    pub fn total_boundary_crossings(&self) -> u64 {
        self.regions.values().map(|r| r.boundary_crossings).sum()
    }

    /// Energy delta between two snapshots (`self − earlier`), per node.
    pub fn energy_delta_since(&self, earlier: &NetworkStats) -> BTreeMap<SensorId, EnergyReport> {
        self.energy
            .iter()
            .map(|(id, e)| {
                let base = earlier.energy.get(id).copied().unwrap_or_default();
                (*id, e.delta_since(&base))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_energy(values: &[(u32, f64, f64)]) -> NetworkStats {
        let mut s = NetworkStats::default();
        for (id, tx, rx) in values {
            s.nodes.insert(SensorId(*id), NodeStats::default());
            s.energy.insert(
                SensorId(*id),
                EnergyReport { tx_joules: *tx, rx_joules: *rx, idle_joules: 0.0 },
            );
        }
        s
    }

    #[test]
    fn min_avg_max_of_values() {
        let m = MinAvgMax::of(&[1.0, 2.0, 6.0]);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.avg, 3.0);
        assert_eq!(m.max, 6.0);
        assert_eq!(MinAvgMax::of(&[]), MinAvgMax::default());
    }

    #[test]
    fn normalization_divides_by_the_average() {
        let m = MinAvgMax::of(&[1.0, 2.0, 6.0]).normalized();
        assert!((m.min - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.avg, 1.0);
        assert!((m.max - 2.0).abs() < 1e-12);
        assert_eq!(MinAvgMax::default().normalized(), MinAvgMax::default());
    }

    #[test]
    fn energy_summaries_aggregate_per_node_values() {
        let s = stats_with_energy(&[(0, 1.0, 2.0), (1, 3.0, 4.0)]);
        assert_eq!(s.tx_energy_summary().avg, 2.0);
        assert_eq!(s.rx_energy_summary().max, 4.0);
        assert_eq!(s.total_energy_summary().min, 3.0);
        assert_eq!(s.total_energy_per_node(), vec![3.0, 7.0]);
    }

    #[test]
    fn totals_sum_node_counters() {
        let mut s = stats_with_energy(&[(0, 0.0, 0.0), (1, 0.0, 0.0)]);
        s.nodes.insert(
            SensorId(0),
            NodeStats {
                packets_sent: 3,
                bytes_sent: 100,
                packets_dropped: 1,
                ..Default::default()
            },
        );
        s.nodes.insert(
            SensorId(1),
            NodeStats { packets_sent: 2, bytes_sent: 50, ..Default::default() },
        );
        assert_eq!(s.total_packets_sent(), 5);
        assert_eq!(s.total_bytes_sent(), 150);
        assert_eq!(s.total_packets_dropped(), 1);
    }

    #[test]
    fn traffic_imbalance_is_max_over_average_activity() {
        let mut s = NetworkStats::default();
        s.nodes.insert(SensorId(0), NodeStats { packets_sent: 10, ..Default::default() });
        s.nodes.insert(SensorId(1), NodeStats { packets_sent: 2, ..Default::default() });
        s.nodes.insert(SensorId(2), NodeStats { packets_sent: 0, ..Default::default() });
        assert!((s.traffic_imbalance() - 10.0 / 4.0).abs() < 1e-12);
        assert_eq!(NetworkStats::default().traffic_imbalance(), 0.0);
    }

    #[test]
    fn energy_delta_subtracts_earlier_snapshot() {
        let earlier = stats_with_energy(&[(0, 1.0, 1.0)]);
        let later = stats_with_energy(&[(0, 3.0, 4.0), (1, 2.0, 2.0)]);
        let delta = later.energy_delta_since(&earlier);
        assert_eq!(delta[&SensorId(0)].tx_joules, 2.0);
        assert_eq!(delta[&SensorId(0)].rx_joules, 3.0);
        assert_eq!(delta[&SensorId(1)].tx_joules, 2.0);
    }

    #[test]
    fn merging_shuffled_shards_matches_the_sequential_totals() {
        // Build 8 single-node shards with distinct counters and energy.
        let shard = |i: u32| {
            let mut s = NetworkStats::default();
            s.nodes.insert(
                SensorId(i % 5),
                NodeStats {
                    packets_sent: u64::from(i) + 1,
                    packets_received: u64::from(i) * 2,
                    packets_overheard: 3,
                    packets_dropped: u64::from(i % 2),
                    packets_dropped_asleep: u64::from(i % 3),
                    bytes_sent: 10 * u64::from(i),
                    bytes_received: 7,
                },
            );
            s.energy.insert(
                SensorId(i % 5),
                EnergyReport {
                    tx_joules: f64::from(i) * 0.125,
                    rx_joules: 0.25,
                    idle_joules: f64::from(i),
                },
            );
            s.regions.insert(
                i % 3,
                RegionStats {
                    events_processed: u64::from(i) * 11 + 1,
                    boundary_crossings: u64::from(i % 4),
                },
            );
            s
        };
        let shards: Vec<NetworkStats> = (0..8).map(shard).collect();
        let mut sequential = NetworkStats::default();
        for s in &shards {
            sequential.merge(s);
        }
        // Any shard permutation must reassemble the same snapshot exactly
        // (the energy values are powers of two, so float addition is exact
        // and even reassociation cannot hide behind rounding).
        let mut rng = wsn_data::rng::SeededRng::seed_from_u64(7);
        for _ in 0..16 {
            let mut shuffled = shards.clone();
            rng.shuffle(&mut shuffled);
            let mut merged = NetworkStats::default();
            for s in &shuffled {
                merged.merge(s);
            }
            assert_eq!(merged, sequential);
        }
        assert_eq!(sequential.total_packets_sent(), (1..=8).sum::<u64>());
        // Region aggregates merge like node counters: order-independent sums.
        assert_eq!(sequential.regions.len(), 3);
        assert_eq!(sequential.total_region_events(), (0..8).map(|i| i * 11 + 1).sum::<u64>());
        assert_eq!(sequential.total_boundary_crossings(), (0..8).map(|i| i % 4).sum::<u64>());
    }

    #[test]
    fn radio_activity_counts_all_packet_handling() {
        let n = NodeStats {
            packets_sent: 1,
            packets_received: 2,
            packets_overheard: 3,
            ..Default::default()
        };
        assert_eq!(n.radio_activity(), 6);
    }
}
