//! Link-layer packet representation.
//!
//! Applications hand the simulator *payloads* (their own message type) plus a
//! payload size in bytes; the simulator wraps them into [`OutgoingPacket`]s
//! and charges airtime and energy based on the byte count. Keeping the byte
//! count explicit (rather than serialising payloads) lets the protocols
//! account for exactly the wire format the paper assumes — data points plus
//! recipient tags — without paying for a serialisation layer in the hot loop.

use wsn_data::SensorId;

/// Where a transmission is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Single-hop broadcast: every node in radio range receives the payload
    /// (the transmission mode of the distributed algorithms, §5.2).
    Broadcast,
    /// Link-layer unicast to one neighbour (the transmission mode of the
    /// AODV-routed centralized baseline). Other nodes in range still overhear
    /// the packet and pay receive energy, but do not see the payload.
    Unicast(SensorId),
}

impl Destination {
    /// Returns `true` if the destination is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Destination::Broadcast)
    }

    /// The unicast target, if any.
    pub fn unicast_target(&self) -> Option<SensorId> {
        match self {
            Destination::Broadcast => None,
            Destination::Unicast(id) => Some(*id),
        }
    }
}

/// A packet queued for transmission by an application callback.
#[derive(Debug, Clone, PartialEq)]
pub struct OutgoingPacket<M> {
    /// Where the packet is addressed.
    pub destination: Destination,
    /// The application payload.
    pub payload: M,
    /// Size of the payload in bytes (drives airtime and energy accounting).
    pub payload_bytes: usize,
}

impl<M> OutgoingPacket<M> {
    /// Creates a broadcast packet.
    pub fn broadcast(payload: M, payload_bytes: usize) -> Self {
        OutgoingPacket { destination: Destination::Broadcast, payload, payload_bytes }
    }

    /// Creates a unicast packet addressed to a neighbour.
    pub fn unicast(to: SensorId, payload: M, payload_bytes: usize) -> Self {
        OutgoingPacket { destination: Destination::Unicast(to), payload, payload_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_helpers() {
        assert!(Destination::Broadcast.is_broadcast());
        assert!(!Destination::Unicast(SensorId(3)).is_broadcast());
        assert_eq!(Destination::Broadcast.unicast_target(), None);
        assert_eq!(Destination::Unicast(SensorId(3)).unicast_target(), Some(SensorId(3)));
    }

    #[test]
    fn constructors_set_fields() {
        let b = OutgoingPacket::broadcast("hello", 5);
        assert_eq!(b.destination, Destination::Broadcast);
        assert_eq!(b.payload_bytes, 5);
        let u = OutgoingPacket::unicast(SensorId(7), "hi", 2);
        assert_eq!(u.destination, Destination::Unicast(SensorId(7)));
        assert_eq!(u.payload, "hi");
    }
}
