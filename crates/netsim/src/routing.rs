//! AODV-style multi-hop routing with end-to-end acknowledgements.
//!
//! The centralized baseline of the evaluation ships every node's sliding
//! window to a sink over multiple hops, using "the well accepted AODV
//! wireless routing protocol" plus "a simple end-to-end acknowledgment
//! mechanism" (§7.1). This module provides a reusable, on-demand
//! distance-vector router that an [`crate::sim::Application`] embeds:
//!
//! * **Route discovery** — a node with data but no route floods a
//!   `RouteRequest`; intermediate nodes record the reverse path and
//!   re-broadcast; the target answers with a `RouteReply` that travels back
//!   along the reverse path, installing forward routes as it goes.
//! * **Data forwarding** — unicast hop by hop along the installed route;
//!   every hop also installs a reverse route to the data's source so the
//!   acknowledgement can travel back without a second discovery.
//! * **End-to-end acks** — the destination returns an `Ack` for every data
//!   packet it receives.
//!
//! Features of full RFC-3561 AODV that a static 53-node deployment never
//! exercises (sequence-number based freshness, RERR precursor lists, hello
//! beacons, route expiry) are intentionally omitted; the energy-relevant
//! behaviour — flooded discovery, hop-by-hop forwarding, ack traffic, and
//! every in-range node overhearing every hop — is fully modelled.

use crate::sim::NodeContext;
use std::collections::{BTreeMap, BTreeSet};
use wsn_data::SensorId;

/// Bytes of header carried by every routing-layer message.
pub const ROUTING_HEADER_BYTES: usize = 24;

/// Messages exchanged by the routing layer. `M` is the application payload
/// carried inside `Data` messages.
#[derive(Debug, Clone, PartialEq)]
pub enum AodvMessage<M> {
    /// Flooded request asking for a route from `origin` to `target`.
    RouteRequest {
        /// Discovery identifier, unique per origin.
        request_id: u64,
        /// The node looking for a route.
        origin: SensorId,
        /// The node it wants to reach.
        target: SensorId,
        /// Hops travelled so far.
        hop_count: u32,
    },
    /// Reply travelling back along the reverse path of the request.
    RouteReply {
        /// The node that asked for the route.
        origin: SensorId,
        /// The node the route leads to.
        target: SensorId,
        /// Hops travelled by the reply so far.
        hop_count: u32,
    },
    /// An application payload travelling from `source` to `target`.
    Data {
        /// The node that generated the payload.
        source: SensorId,
        /// The node the payload is addressed to.
        target: SensorId,
        /// Source-assigned sequence number (used by the acknowledgement).
        sequence: u64,
        /// Hops travelled so far (installs reverse routes for the ack).
        hop_count: u32,
        /// Size of the application payload in bytes.
        payload_bytes: usize,
        /// The application payload.
        payload: M,
    },
    /// End-to-end acknowledgement for a `Data` message.
    Ack {
        /// The node that received the data (and generated the ack).
        source: SensorId,
        /// The original data source the ack must reach.
        target: SensorId,
        /// Sequence number being acknowledged.
        sequence: u64,
        /// Hops travelled so far.
        hop_count: u32,
    },
}

impl<M> AodvMessage<M> {
    /// Bytes this message occupies on the air.
    pub fn wire_size(&self) -> usize {
        match self {
            AodvMessage::Data { payload_bytes, .. } => ROUTING_HEADER_BYTES + payload_bytes,
            _ => ROUTING_HEADER_BYTES,
        }
    }
}

/// A payload delivered to this node by the routing layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredData<M> {
    /// The node that originally sent the payload.
    pub source: SensorId,
    /// The source's sequence number.
    pub sequence: u64,
    /// The payload itself.
    pub payload: M,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RouteEntry {
    next_hop: SensorId,
    hop_count: u32,
}

#[derive(Debug, Clone)]
struct PendingData<M> {
    source: SensorId,
    target: SensorId,
    sequence: u64,
    hop_count: u32,
    payload_bytes: usize,
    payload: M,
}

/// Per-node AODV routing state.
///
/// The owning application forwards every received [`AodvMessage`] to
/// [`AodvRouter::handle`] and sends its own payloads with
/// [`AodvRouter::send`]; both methods queue any necessary transmissions on
/// the provided [`NodeContext`].
#[derive(Debug, Clone)]
pub struct AodvRouter<M> {
    id: SensorId,
    routes: BTreeMap<SensorId, RouteEntry>,
    seen_requests: BTreeSet<(SensorId, u64)>,
    discoveries_in_progress: BTreeSet<SensorId>,
    pending: Vec<PendingData<M>>,
    next_request_id: u64,
    next_sequence: u64,
    acked: BTreeSet<u64>,
    sent: u64,
    delivered_here: u64,
    forwarded: u64,
    dropped_no_route: u64,
}

impl<M: Clone> AodvRouter<M> {
    /// Creates the routing state for the node with the given id.
    pub fn new(id: SensorId) -> Self {
        AodvRouter {
            id,
            routes: BTreeMap::new(),
            seen_requests: BTreeSet::new(),
            discoveries_in_progress: BTreeSet::new(),
            pending: Vec::new(),
            next_request_id: 0,
            next_sequence: 0,
            acked: BTreeSet::new(),
            sent: 0,
            delivered_here: 0,
            forwarded: 0,
            dropped_no_route: 0,
        }
    }

    /// Returns `true` if a route to `target` is currently installed.
    pub fn has_route(&self, target: SensorId) -> bool {
        self.routes.contains_key(&target)
    }

    /// Hop count of the installed route to `target`, if any.
    pub fn route_hops(&self, target: SensorId) -> Option<u32> {
        self.routes.get(&target).map(|r| r.hop_count)
    }

    /// Number of payloads sent by this node (as the original source).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Number of payloads delivered to this node (as the final target).
    pub fn delivered_count(&self) -> u64 {
        self.delivered_here
    }

    /// Number of data packets this node forwarded on behalf of others.
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded
    }

    /// Number of data packets dropped because no route could be used.
    pub fn dropped_count(&self) -> u64 {
        self.dropped_no_route
    }

    /// Sequence numbers of this node's own payloads that have been
    /// acknowledged end-to-end.
    pub fn acked_sequences(&self) -> &BTreeSet<u64> {
        &self.acked
    }

    /// Number of payloads queued waiting for a route.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Sends `payload` to `target`, discovering a route first if necessary.
    /// Returns the sequence number assigned to the payload.
    pub fn send(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<M>>,
        target: SensorId,
        payload: M,
        payload_bytes: usize,
    ) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.sent += 1;
        let data =
            PendingData { source: self.id, target, sequence, hop_count: 0, payload_bytes, payload };
        self.forward_or_discover(ctx, data);
        sequence
    }

    /// Processes a routing-layer message received from a single-hop
    /// neighbour, returning any payloads whose final destination is this
    /// node.
    pub fn handle(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<M>>,
        from: SensorId,
        message: AodvMessage<M>,
    ) -> Vec<DeliveredData<M>> {
        match message {
            AodvMessage::RouteRequest { request_id, origin, target, hop_count } => {
                self.handle_route_request(ctx, from, request_id, origin, target, hop_count);
                Vec::new()
            }
            AodvMessage::RouteReply { origin, target, hop_count } => {
                self.handle_route_reply(ctx, from, origin, target, hop_count);
                Vec::new()
            }
            AodvMessage::Data { source, target, sequence, hop_count, payload_bytes, payload } => {
                self.install_route(source, from, hop_count + 1);
                if target == self.id {
                    self.delivered_here += 1;
                    // End-to-end acknowledgement back to the source.
                    self.route_control(
                        ctx,
                        source,
                        AodvMessage::Ack {
                            source: self.id,
                            target: source,
                            sequence,
                            hop_count: 0,
                        },
                    );
                    vec![DeliveredData { source, sequence, payload }]
                } else {
                    self.forwarded += 1;
                    self.forward_or_discover(
                        ctx,
                        PendingData {
                            source,
                            target,
                            sequence,
                            hop_count: hop_count + 1,
                            payload_bytes,
                            payload,
                        },
                    );
                    Vec::new()
                }
            }
            AodvMessage::Ack { source, target, sequence, hop_count } => {
                self.install_route(source, from, hop_count + 1);
                if target == self.id {
                    self.acked.insert(sequence);
                } else {
                    self.route_control(
                        ctx,
                        target,
                        AodvMessage::Ack { source, target, sequence, hop_count: hop_count + 1 },
                    );
                }
                Vec::new()
            }
        }
    }

    fn handle_route_request(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<M>>,
        from: SensorId,
        request_id: u64,
        origin: SensorId,
        target: SensorId,
        hop_count: u32,
    ) {
        if origin == self.id || !self.seen_requests.insert((origin, request_id)) {
            return; // our own flood coming back, or a duplicate
        }
        // The path the request travelled is a route back to its origin.
        self.install_route(origin, from, hop_count + 1);
        if target == self.id {
            let reply = AodvMessage::RouteReply { origin, target, hop_count: 0 };
            let size = reply.wire_size();
            ctx.unicast(from, reply, size);
        } else {
            let forwarded =
                AodvMessage::RouteRequest { request_id, origin, target, hop_count: hop_count + 1 };
            let size = forwarded.wire_size();
            ctx.broadcast(forwarded, size);
        }
    }

    fn handle_route_reply(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<M>>,
        from: SensorId,
        origin: SensorId,
        target: SensorId,
        hop_count: u32,
    ) {
        // The reply came from the direction of the route's target.
        self.install_route(target, from, hop_count + 1);
        if origin == self.id {
            self.discoveries_in_progress.remove(&target);
            self.flush_pending(ctx);
        } else if let Some(route) = self.routes.get(&origin).copied() {
            let reply = AodvMessage::RouteReply { origin, target, hop_count: hop_count + 1 };
            let size = reply.wire_size();
            ctx.unicast(route.next_hop, reply, size);
        }
        // Without a reverse route the reply dies here; the origin will retry
        // discovery when it next has data to send.
    }

    fn forward_or_discover(&mut self, ctx: &mut NodeContext<AodvMessage<M>>, data: PendingData<M>) {
        if data.target == self.id {
            // Degenerate case: sending to ourselves needs no radio at all.
            self.delivered_here += 1;
            self.acked.insert(data.sequence);
            return;
        }
        if let Some(route) = self.routes.get(&data.target).copied() {
            let message = AodvMessage::Data {
                source: data.source,
                target: data.target,
                sequence: data.sequence,
                hop_count: data.hop_count,
                payload_bytes: data.payload_bytes,
                payload: data.payload,
            };
            let size = message.wire_size();
            ctx.unicast(route.next_hop, message, size);
        } else {
            let target = data.target;
            self.pending.push(data);
            if self.discoveries_in_progress.insert(target) {
                let request_id = self.next_request_id;
                self.next_request_id += 1;
                let request =
                    AodvMessage::RouteRequest { request_id, origin: self.id, target, hop_count: 0 };
                let size = request.wire_size();
                ctx.broadcast(request, size);
            }
        }
    }

    /// Routes a small control message (reply/ack) toward `target`, dropping
    /// it if no route is known.
    fn route_control(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<M>>,
        target: SensorId,
        message: AodvMessage<M>,
    ) {
        if let Some(route) = self.routes.get(&target).copied() {
            let size = message.wire_size();
            ctx.unicast(route.next_hop, message, size);
        } else {
            self.dropped_no_route += 1;
        }
    }

    fn flush_pending(&mut self, ctx: &mut NodeContext<AodvMessage<M>>) {
        let ready: Vec<PendingData<M>> = {
            let (ready, waiting): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|p| self.routes.contains_key(&p.target));
            self.pending = waiting;
            ready
        };
        for data in ready {
            self.forward_or_discover(ctx, data);
        }
    }

    fn install_route(&mut self, destination: SensorId, next_hop: SensorId, hop_count: u32) {
        if destination == self.id {
            return;
        }
        match self.routes.get(&destination) {
            Some(existing) if existing.hop_count <= hop_count => {}
            _ => {
                self.routes.insert(destination, RouteEntry { next_hop, hop_count });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Application, NodeContext, SimConfig, Simulator, TimerId};
    use crate::topology::Topology;
    use wsn_data::stream::SensorSpec;
    use wsn_data::{Position, Timestamp};

    /// Test application: every node routes a greeting to the sink (node 0)
    /// when its start timer fires; the sink records what it received.
    struct RoutedGreeter {
        router: AodvRouter<String>,
        sink: SensorId,
        received: Vec<DeliveredData<String>>,
    }

    impl RoutedGreeter {
        fn new(id: SensorId, sink: SensorId) -> Self {
            RoutedGreeter { router: AodvRouter::new(id), sink, received: Vec::new() }
        }
    }

    impl Application for RoutedGreeter {
        type Message = AodvMessage<String>;

        fn on_start(&mut self, ctx: &mut NodeContext<Self::Message>) {
            if ctx.id() != self.sink {
                let greeting = format!("hello from {}", ctx.id());
                let bytes = greeting.len();
                self.router.send(ctx, self.sink, greeting, bytes);
            }
        }

        fn on_message(
            &mut self,
            ctx: &mut NodeContext<Self::Message>,
            from: SensorId,
            message: Self::Message,
        ) {
            let delivered = self.router.handle(ctx, from, message);
            self.received.extend(delivered);
        }

        fn on_timer(&mut self, _ctx: &mut NodeContext<Self::Message>, _timer: TimerId) {}
    }

    fn chain_topology(n: u32) -> Topology {
        let specs: Vec<SensorSpec> = (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    fn run_chain(n: u32) -> Simulator<RoutedGreeter> {
        let sink = SensorId(0);
        let mut sim = Simulator::new(SimConfig::default(), chain_topology(n), |id| {
            RoutedGreeter::new(id, sink)
        });
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        sim
    }

    #[test]
    fn every_node_reaches_the_sink_over_multiple_hops() {
        let sim = run_chain(5);
        let sink = sim.app(SensorId(0)).unwrap();
        assert_eq!(sink.received.len(), 4);
        let mut sources: Vec<SensorId> = sink.received.iter().map(|d| d.source).collect();
        sources.sort();
        assert_eq!(sources, vec![SensorId(1), SensorId(2), SensorId(3), SensorId(4)]);
    }

    #[test]
    fn sources_receive_end_to_end_acks() {
        let sim = run_chain(5);
        for (id, app) in sim.apps() {
            if id != SensorId(0) {
                assert_eq!(app.router.acked_sequences().len(), 1, "node {id} not acked");
                assert_eq!(app.router.sent_count(), 1);
                assert_eq!(app.router.pending_count(), 0);
            }
        }
    }

    #[test]
    fn routes_follow_the_chain_hop_counts() {
        let sim = run_chain(5);
        let far = sim.app(SensorId(4)).unwrap();
        assert!(far.router.has_route(SensorId(0)));
        assert_eq!(far.router.route_hops(SensorId(0)), Some(4));
        let near = sim.app(SensorId(1)).unwrap();
        assert_eq!(near.router.route_hops(SensorId(0)), Some(1));
    }

    #[test]
    fn intermediate_nodes_forward_on_behalf_of_others() {
        let sim = run_chain(4);
        // Node 1 sits between the sink and nodes 2, 3: it forwards their data.
        let middle = sim.app(SensorId(1)).unwrap();
        assert!(middle.router.forwarded_count() >= 2);
        // The sink never forwards.
        assert_eq!(sim.app(SensorId(0)).unwrap().router.forwarded_count(), 0);
    }

    #[test]
    fn funnel_effect_sink_neighborhood_carries_the_most_traffic() {
        let sim = run_chain(6);
        let stats = sim.network_stats();
        // The sink's neighbour (node 1) transmits more packets than the most
        // distant node, which only sends its own data.
        let near = stats.nodes[&SensorId(1)].packets_sent;
        let far = stats.nodes[&SensorId(5)].packets_sent;
        assert!(near > far, "near {near} vs far {far}");
        assert!(stats.traffic_imbalance() > 1.0);
    }

    #[test]
    fn discovery_overhead_is_charged_to_the_energy_model() {
        let sim = run_chain(3);
        let stats = sim.network_stats();
        // Route requests, replies, data and acks all cost packets and energy.
        assert!(stats.total_packets_sent() >= 6);
        assert!(stats.energy.values().all(|e| e.total() > 0.0));
    }

    #[test]
    fn wire_sizes_distinguish_control_and_data() {
        let data: AodvMessage<Vec<u8>> = AodvMessage::Data {
            source: SensorId(1),
            target: SensorId(2),
            sequence: 0,
            hop_count: 0,
            payload_bytes: 100,
            payload: vec![0; 100],
        };
        assert_eq!(data.wire_size(), ROUTING_HEADER_BYTES + 100);
        let rreq: AodvMessage<Vec<u8>> = AodvMessage::RouteRequest {
            request_id: 0,
            origin: SensorId(1),
            target: SensorId(2),
            hop_count: 0,
        };
        assert_eq!(rreq.wire_size(), ROUTING_HEADER_BYTES);
    }

    #[test]
    fn sending_to_self_needs_no_radio() {
        let topo = chain_topology(2);
        let mut sim = Simulator::new(SimConfig::default(), topo, |id| {
            // Both nodes think the sink is themselves: no traffic at all.
            RoutedGreeter::new(id, id)
        });
        sim.run_until_quiescent(Timestamp::from_secs(10));
        assert_eq!(sim.network_stats().total_packets_sent(), 0);
    }

    #[test]
    fn repeated_sends_reuse_the_installed_route() {
        // After the first exchange, a second send from node 2 must not emit
        // another route request.
        let sink = SensorId(0);
        let mut sim = Simulator::new(SimConfig::default(), chain_topology(3), |id| {
            RoutedGreeter::new(id, sink)
        });
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        let packets_after_first = sim.network_stats().total_packets_sent();
        // Drive a second greeting from node 2 via an external timer... the
        // test application ignores timers, so instead check route reuse
        // directly: node 2 already has a route and a hypothetical second send
        // would unicast immediately.
        let app = sim.app(SensorId(2)).unwrap();
        assert!(app.router.has_route(sink));
        assert!(packets_after_first > 0);
    }
}
