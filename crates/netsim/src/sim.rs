//! The WSN domain layer of the simulator, built on the generic event core.
//!
//! The simulator owns one [`Application`] instance per sensor and delivers
//! four kinds of events to it — start-up, timer expiry, message arrival and
//! neighbourhood change — in global [`EventKey`] order. Every transmission an
//! application requests is run through the MAC/radio model, charged to the
//! per-node energy meters, and scheduled for reception one airtime later.
//! The design mirrors how the paper's protocols are specified: entirely
//! event-driven, with all communication restricted to single-hop neighbours
//! (§4.2, §5.2).
//!
//! Since the restructuring onto [`crate::event`], this type is a *domain
//! layer* over [`SimCore`]: applications are wrapped in a [`Component`]
//! adapter, the old hand-rolled heap is gone, and three properties were made
//! engine-topology-independent so the same `Simulator` can serve either as
//! the whole simulation or as one region of a [`crate::region`] partition:
//!
//! 1. **Intrinsic event order.** Events are ordered by `(time, class,
//!    source, source_seq, target)`, never by queue-insertion sequence.
//! 2. **Event-keyed packet loss.** The loss model's RNG is derived per
//!    transmission from `(seed, sender, sender's emission counter)` instead
//!    of a single shared stream, so the outcome of a transmission does not
//!    depend on which other transmissions happened to be sampled before it.
//! 3. **Reception-time effects.** Receive energy and the overheard/dropped
//!    counters are charged when the reception event *fires* at the receiver
//!    (one airtime after the transmission), not when the sender transmits —
//!    a receiver may live in a different region than the sender.

use crate::energy::{EnergyMeter, EnergyModel};
use crate::event::{
    Component, ComponentContext, EventHandle, EventKey, SimCore, CLASS_CONTROL, CLASS_RECEPTION,
    CLASS_START, CLASS_TIMER, EXTERNAL_SOURCE,
};
use crate::fault::DutyCycle;
use crate::mac;
use crate::packet::{Destination, OutgoingPacket};
use crate::radio::RadioConfig;
use crate::stats::{NetworkStats, NodeStats};
use crate::topology::Topology;
use std::collections::BTreeMap;
use std::sync::Arc;
use wsn_data::rng::{SeededRng, SplitMix64};
use wsn_data::{Position, SensorId, Timestamp};

/// Telemetry ([`wsn_obs`]): fault-model activity — node deaths and (re)joins
/// applied to the simulation, and packets that arrived at duty-cycled
/// sleeping radios. On the partitioned backend a death/join is counted once,
/// by the coordinator, not once per region.
pub(crate) static OBS_NODE_DEATHS: wsn_obs::Counter = wsn_obs::Counter::new("sim.node_deaths");
pub(crate) static OBS_NODE_JOINS: wsn_obs::Counter = wsn_obs::Counter::new("sim.node_joins");
static OBS_DROPPED_ASLEEP: wsn_obs::Counter = wsn_obs::Counter::new("sim.dropped_asleep");

/// Identifier an application assigns to a timer it sets.
pub type TimerId = u64;

/// A per-node protocol implementation run by the simulator.
///
/// All methods receive a [`NodeContext`] through which the application reads
/// its identity, the current time and its single-hop neighbourhood, and
/// queues transmissions and timers. Effects are applied by the simulator
/// after the callback returns.
pub trait Application {
    /// The message type exchanged between application instances.
    type Message: Clone;

    /// Called once at simulation start (the paper's "algorithm is
    /// initialized" event).
    fn on_start(&mut self, ctx: &mut NodeContext<Self::Message>);

    /// Called when a message from a single-hop neighbour is delivered.
    fn on_message(
        &mut self,
        ctx: &mut NodeContext<Self::Message>,
        from: SensorId,
        message: Self::Message,
    );

    /// Called when a timer previously set through the context expires.
    fn on_timer(&mut self, ctx: &mut NodeContext<Self::Message>, timer: TimerId);

    /// Called when the node's single-hop neighbourhood changes (a link or a
    /// neighbour went up or down — the paper's event (iv)).
    fn on_neighborhood_change(&mut self, ctx: &mut NodeContext<Self::Message>) {
        let _ = ctx;
    }
}

/// The interface an application uses to interact with the simulated world
/// during a callback.
#[derive(Debug)]
pub struct NodeContext<M> {
    id: SensorId,
    now: Timestamp,
    /// Shared handle into the simulator's adjacency cache — no per-event
    /// allocation.
    neighbors: Arc<Vec<SensorId>>,
    outgoing: Vec<OutgoingPacket<M>>,
    timers: Vec<(u64, TimerId)>,
}

impl<M> NodeContext<M> {
    /// This node's identifier.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The current simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The node's current single-hop neighbours.
    pub fn neighbors(&self) -> &[SensorId] {
        &self.neighbors
    }

    /// Queues a single-hop broadcast of `payload` occupying `payload_bytes`
    /// bytes on the air.
    pub fn broadcast(&mut self, payload: M, payload_bytes: usize) {
        self.outgoing.push(OutgoingPacket::broadcast(payload, payload_bytes));
    }

    /// Queues a link-layer unicast to a neighbour. If `to` is not currently
    /// within radio range the transmission still occupies the channel and
    /// costs energy, but nothing is delivered.
    pub fn unicast(&mut self, to: SensorId, payload: M, payload_bytes: usize) {
        self.outgoing.push(OutgoingPacket::unicast(to, payload, payload_bytes));
    }

    /// Schedules `timer` to fire `delay_micros` microseconds from now.
    pub fn set_timer_after_micros(&mut self, delay_micros: u64, timer: TimerId) {
        self.timers.push((delay_micros, timer));
    }

    /// Schedules `timer` to fire `delay_secs` seconds from now.
    pub fn set_timer_after_secs(&mut self, delay_secs: f64, timer: TimerId) {
        self.set_timer_after_micros((delay_secs * 1e6).round() as u64, timer);
    }
}

/// Simulation-wide configuration.
///
/// The derived default is the paper's setup: `paper_default` radio,
/// Crossbow-mote energy model, seed 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// Radio / channel model.
    pub radio: RadioConfig,
    /// Energy model charged for radio activity.
    pub energy: EnergyModel,
    /// Seed of the simulation's random number generator (packet loss).
    pub seed: u64,
}

/// One entry of a pre-planned timer batch: fire `timer` at `node` at `time`.
pub type BatchTimerEntry = (Timestamp, SensorId, TimerId);

/// A cancellation handle for an externally scheduled timer (see
/// [`Simulator::schedule_timer`] / [`Simulator::cancel_timer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    handle: EventHandle,
}

/// The event payload delivered through the generic core. The engine (not the
/// node component) interprets the accounting fields of `Reception`; the
/// component only ever sees receptions that carry a payload.
pub(crate) enum NetEvent<M> {
    /// The node's start-up event.
    Start,
    /// An expiring timer.
    Timer(TimerId),
    /// A radio reception, one airtime after its transmission. `payload` is
    /// `None` for overheard / lost packets, which cost receive energy and
    /// count in the overheard (and possibly dropped) statistics but deliver
    /// nothing to the application. The payload is interned behind an
    /// [`Arc`]: one transmission heard by `r` receivers queues `r` handles
    /// to a single allocation instead of `r` deep copies.
    Reception {
        from: SensorId,
        payload: Option<Arc<M>>,
        payload_bytes: usize,
        airtime_secs: f64,
        dropped: bool,
    },
    /// The node's single-hop neighbourhood changed.
    NeighborhoodChanged,
}

impl<M> Clone for NetEvent<M> {
    fn clone(&self) -> Self {
        match self {
            NetEvent::Start => NetEvent::Start,
            NetEvent::Timer(t) => NetEvent::Timer(*t),
            NetEvent::Reception { from, payload, payload_bytes, airtime_secs, dropped } => {
                NetEvent::Reception {
                    from: *from,
                    payload: payload.clone(),
                    payload_bytes: *payload_bytes,
                    airtime_secs: *airtime_secs,
                    dropped: *dropped,
                }
            }
            NetEvent::NeighborhoodChanged => NetEvent::NeighborhoodChanged,
        }
    }
}

/// What a node asks the engine to do in reaction to an event, in emission
/// order (packets before timers, matching the pre-refactor dispatch order).
pub(crate) enum NodeEmission<M> {
    Packet(OutgoingPacket<M>),
    Timer { delay_micros: u64, timer: TimerId },
}

/// The [`Component`] adapter wrapping one [`Application`] instance.
pub(crate) struct NodeComponent<A: Application> {
    pub(crate) app: A,
}

impl<A: Application> Component for NodeComponent<A> {
    type Event = NetEvent<A::Message>;
    type Emission = NodeEmission<A::Message>;
    /// The node's cached neighbour list, shared with the context.
    type Env = Arc<Vec<SensorId>>;

    fn on_event(
        &mut self,
        ctx: &mut ComponentContext<Self::Emission>,
        env: &Arc<Vec<SensorId>>,
        event: NetEvent<A::Message>,
    ) {
        let mut node_ctx = NodeContext {
            id: SensorId(ctx.component_id()),
            now: ctx.time(),
            neighbors: Arc::clone(env),
            outgoing: Vec::new(),
            timers: Vec::new(),
        };
        match event {
            NetEvent::Start => self.app.on_start(&mut node_ctx),
            NetEvent::Timer(timer) => self.app.on_timer(&mut node_ctx, timer),
            NetEvent::Reception { from, payload: Some(payload), .. } => {
                // The last receiver of an interned payload takes it by move;
                // earlier ones clone.
                let payload = Arc::try_unwrap(payload).unwrap_or_else(|shared| (*shared).clone());
                self.app.on_message(&mut node_ctx, from, payload);
            }
            // Payload-less receptions are pure accounting; the engine handles
            // them before dispatch and never routes them here.
            NetEvent::Reception { payload: None, .. } => {}
            NetEvent::NeighborhoodChanged => self.app.on_neighborhood_change(&mut node_ctx),
        }
        let NodeContext { outgoing, timers, .. } = node_ctx;
        for packet in outgoing {
            ctx.emit(NodeEmission::Packet(packet));
        }
        for (delay_micros, timer) in timers {
            ctx.emit(NodeEmission::Timer { delay_micros, timer });
        }
    }
}

/// The discrete-event simulator.
///
/// One `Simulator` instance runs either the whole network (the sequential
/// backend) or the *owned* subset of it — one region of a
/// [`crate::region::PartitionedSimulator`]. A region holds the full
/// [`Topology`] (needed to compute every transmission's fan-out) but
/// applications, energy meters and statistics only for its owned nodes;
/// receptions addressed to nodes owned elsewhere are diverted to an outbox
/// the partition coordinator routes at epoch barriers.
pub struct Simulator<A: Application> {
    config: SimConfig,
    topology: Topology,
    /// Per-node neighbour lists, derived from the topology once and shared
    /// with every [`NodeContext`]; rebuilt only on topology changes.
    adjacency: BTreeMap<SensorId, Arc<Vec<SensorId>>>,
    core: SimCore<NodeComponent<A>>,
    meters: BTreeMap<SensorId, EnergyMeter>,
    node_stats: BTreeMap<SensorId, NodeStats>,
    pending_deliveries: usize,
    /// Receptions addressed to nodes this engine does not own, keyed and
    /// ready for the coordinator to inject into the owner's queue.
    outbox: Vec<(EventKey, NetEvent<A::Message>)>,
    /// Per-node radio duty cycles (empty = everyone always on), shared by
    /// every region of a partitioned run. Sleep is evaluated at reception
    /// time in the receiver's owning engine, so the map being identical
    /// everywhere keeps the backends bit-identical.
    duty_cycles: Arc<BTreeMap<SensorId, DutyCycle>>,
    /// Gilbert–Elliott channel memory for this engine's senders. A sender's
    /// transmissions are computed by exactly one engine in emission order,
    /// so per-region channel maps walk the same chains as one global map.
    link_channels: mac::LinkChannels,
}

impl<A: Application> Simulator<A> {
    /// Builds a simulator over `topology`, constructing one application per
    /// sensor with `make_app`, and schedules every node's start event at
    /// time zero.
    pub fn new(config: SimConfig, topology: Topology, make_app: impl FnMut(SensorId) -> A) -> Self {
        let ids = topology.sensor_ids();
        let mut sim = Self::new_owned(config, topology, ids.clone(), make_app);
        let base = sim.core.alloc_external_seqs(ids.len() as u64);
        for (i, id) in ids.into_iter().enumerate() {
            let key = EventKey::new(
                Timestamp::ZERO,
                CLASS_START,
                EXTERNAL_SOURCE,
                base + i as u64,
                id.raw(),
            );
            sim.core.queue_mut().push(key, NetEvent::Start);
        }
        sim
    }

    /// Builds a simulator that owns only `owned` (applications, meters and
    /// statistics), while carrying the full `topology` for fan-out
    /// computation. Schedules **no** start events and allocates **no**
    /// external sequence numbers — the partition coordinator does both, with
    /// one shared counter, so event keys come out identical to the
    /// sequential engine's.
    pub(crate) fn new_owned(
        config: SimConfig,
        topology: Topology,
        owned: impl IntoIterator<Item = SensorId>,
        mut make_app: impl FnMut(SensorId) -> A,
    ) -> Self {
        let adjacency = Self::build_adjacency(&topology);
        let mut core = SimCore::new();
        let mut meters = BTreeMap::new();
        let mut node_stats = BTreeMap::new();
        for id in owned {
            core.insert_component(id.raw(), NodeComponent { app: make_app(id) });
            meters.insert(id, EnergyMeter::new());
            node_stats.insert(id, NodeStats::default());
        }
        Simulator {
            config,
            topology,
            adjacency,
            core,
            meters,
            node_stats,
            pending_deliveries: 0,
            outbox: Vec::new(),
            duty_cycles: Arc::new(BTreeMap::new()),
            link_channels: mac::LinkChannels::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.core.now()
    }

    /// Installs the per-node radio duty cycles. Nodes without an entry are
    /// always awake. The map is shared ([`Arc`]) so a partitioned run hands
    /// the identical schedule to every region; sleep is evaluated at
    /// reception time as a pure function of `(cycle, event time)`, keeping
    /// the backends bit-identical.
    pub fn set_duty_cycles(&mut self, cycles: Arc<BTreeMap<SensorId, DutyCycle>>) {
        self.duty_cycles = cycles;
    }

    /// The communication topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Immutable access to a node's application.
    pub fn app(&self, id: SensorId) -> Option<&A> {
        self.core.component(id.raw()).map(|c| &c.app)
    }

    /// Iterates over all applications in ascending node order.
    pub fn apps(&self) -> impl Iterator<Item = (SensorId, &A)> {
        self.core.components().map(|(id, c)| (SensorId(id), &c.app))
    }

    /// Mutable access to all applications, for harnesses that need to
    /// configure the apps after construction (e.g. switching them to an
    /// externally installed timer schedule).
    pub fn apps_mut(&mut self) -> impl Iterator<Item = (SensorId, &mut A)> {
        self.core.components_mut().map(|(id, c)| (SensorId(id), &mut c.app))
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// Number of payload-carrying transmissions currently in flight
    /// (scheduled deliveries).
    pub fn messages_in_flight(&self) -> usize {
        self.pending_deliveries
    }

    /// Number of queue slots occupied (a timer batch counts as one however
    /// many entries it still carries).
    pub fn queued_events(&self) -> usize {
        self.core.queue().len()
    }

    /// Schedules a timer for `node` at absolute time `at` from outside the
    /// application (used by harnesses to drive sampling rounds). Returns a
    /// handle that can cancel the timer while it is still pending.
    pub fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) -> TimerHandle {
        let seq = self.core.alloc_external_seqs(1);
        let key = EventKey::new(at, CLASS_TIMER, EXTERNAL_SOURCE, seq, node.raw());
        let handle = self.core.queue_mut().push(key, NetEvent::Timer(timer));
        TimerHandle { handle }
    }

    /// Cancels a timer scheduled through [`Simulator::schedule_timer`].
    /// Returns `false` if it already fired or was cancelled before.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.core.queue_mut().cancel(handle.handle)
    }

    /// Schedules a whole batch of timers behind a **single** queue entry.
    ///
    /// The entries must be sorted by ascending time (equal times fire in
    /// vector order); the batch dispatches them one by one, re-queuing
    /// itself at the next entry's time after each dispatch, so an arbitrary
    /// per-round fan-out (one sampling timer per node, say) never occupies
    /// more than one slot in the event heap. Entries addressed to nodes
    /// removed before their time are skipped silently, exactly like an
    /// ordinary timer of a removed node.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted by time.
    pub fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        assert!(
            entries.windows(2).all(|pair| pair[0].0 <= pair[1].0),
            "timer batch entries must be sorted by ascending time"
        );
        if entries.is_empty() {
            return;
        }
        let base = self.core.alloc_external_seqs(entries.len() as u64);
        let keyed = Self::keyed_batch(&entries, base);
        self.core.queue_mut().push_batch(keyed);
    }

    /// Derives the event keys of a timer batch from its external base
    /// sequence. Time-sorted entries yield key-sorted events because the
    /// sequence numbers ascend with the entry index.
    pub(crate) fn keyed_batch(
        entries: &[BatchTimerEntry],
        base_seq: u64,
    ) -> Vec<(EventKey, NetEvent<A::Message>)> {
        entries
            .iter()
            .enumerate()
            .map(|(i, (time, node, timer))| {
                let key = EventKey::new(
                    *time,
                    CLASS_TIMER,
                    EXTERNAL_SOURCE,
                    base_seq + i as u64,
                    node.raw(),
                );
                (key, NetEvent::Timer(*timer))
            })
            .collect()
    }

    /// Removes a node from the simulation: its application stops receiving
    /// events and every remaining neighbour is notified through
    /// [`Application::on_neighborhood_change`] (the paper's link-down
    /// event). The notifications are ordinary control-class events at the
    /// current time, delivered by the event core on the next run.
    ///
    /// Only the adjacency entries of the removed node and its former
    /// neighbours are re-derived; the rest of the cached neighbour lists are
    /// untouched, so a node failure costs `O(degree)` map updates instead of
    /// a full rebuild over every sensor.
    pub fn remove_node(&mut self, id: SensorId) {
        OBS_NODE_DEATHS.add(1);
        let former_neighbors = self.remove_node_local(id);
        let base = self.core.alloc_external_seqs(former_neighbors.len() as u64);
        let now = self.core.now();
        for (i, n) in former_neighbors.into_iter().enumerate() {
            let key = EventKey::new(now, CLASS_CONTROL, EXTERNAL_SOURCE, base + i as u64, n.raw());
            self.core.queue_mut().push(key, NetEvent::NeighborhoodChanged);
        }
    }

    /// Adds (or re-adds) a node to the simulation — the dual of
    /// [`Simulator::remove_node`], modelling a late join or a rejoin after
    /// battery death. The node appears at `position`, running `app`; it
    /// receives an [`Application::on_start`] event at the current time, and
    /// every new neighbour is notified through
    /// [`Application::on_neighborhood_change`]. Returns the node's new
    /// single-hop neighbours in ascending order.
    ///
    /// A *rejoining* node (same id as a previously removed one) keeps its
    /// accumulated energy meter and link statistics — the battery history of
    /// the mote, not of the software instance.
    pub fn add_node(&mut self, id: SensorId, position: Position, app: A) -> Vec<SensorId> {
        OBS_NODE_JOINS.add(1);
        let new_neighbors = self.add_node_local(id, position, Some(app));
        let base = self.core.alloc_external_seqs(1 + new_neighbors.len() as u64);
        let now = self.core.now();
        let start = EventKey::new(now, CLASS_START, EXTERNAL_SOURCE, base, id.raw());
        self.core.queue_mut().push(start, NetEvent::Start);
        for (i, n) in new_neighbors.iter().enumerate() {
            let key =
                EventKey::new(now, CLASS_CONTROL, EXTERNAL_SOURCE, base + 1 + i as u64, n.raw());
            self.core.queue_mut().push(key, NetEvent::NeighborhoodChanged);
        }
        new_neighbors
    }

    /// The topology/adjacency/application surgery of [`Simulator::add_node`],
    /// without the notification events — the dual of
    /// [`Simulator::remove_node_local`]. `app` is `None` on regions that do
    /// not own the joining node (they still need the topology patch for
    /// fan-out computation). Returns the new neighbours in ascending order.
    pub(crate) fn add_node_local(
        &mut self,
        id: SensorId,
        position: Position,
        app: Option<A>,
    ) -> Vec<SensorId> {
        let new_neighbors = self.topology.add_sensor(id, position);
        self.adjacency.insert(id, Arc::new(new_neighbors.clone()));
        for n in &new_neighbors {
            self.adjacency.insert(*n, Arc::new(self.topology.neighbors(*n)));
        }
        if let Some(app) = app {
            self.adopt_component(id, app);
        }
        new_neighbors
    }

    /// Installs `app` as the component of `id` and ensures the node has an
    /// energy meter and statistics entry. Both persist across a death →
    /// rejoin cycle (`or_insert`/`or_default`), so accounting accumulates
    /// over the mote's whole lifetime on every backend identically.
    pub(crate) fn adopt_component(&mut self, id: SensorId, app: A) {
        self.core.insert_component(id.raw(), NodeComponent { app });
        self.meters.entry(id).or_default();
        self.node_stats.entry(id).or_default();
    }

    /// The topology/adjacency/application surgery of [`Simulator::remove_node`],
    /// without the notification events. Returns the former neighbours in
    /// ascending order; the caller (this engine, or the partition
    /// coordinator patching every region) schedules the notifications.
    pub(crate) fn remove_node_local(&mut self, id: SensorId) -> Vec<SensorId> {
        let former_neighbors = self.topology.neighbors(id);
        self.topology.remove_sensor(id);
        self.core.remove_component(id.raw());
        self.adjacency.remove(&id);
        for n in &former_neighbors {
            self.adjacency.insert(*n, Arc::new(self.topology.neighbors(*n)));
        }
        former_neighbors
    }

    /// Runs the simulation until `deadline` (inclusive), processing every
    /// event scheduled up to that time. Advances the clock to `deadline`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Timestamp) -> u64 {
        let mut processed = 0;
        while let Some(key) = self.core.queue().peek_key() {
            if key.time > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        self.core.advance_now(deadline);
        processed
    }

    /// Runs until the event queue is completely drained or the next event
    /// lies beyond `deadline`. Returns `true` if the queue drained (the
    /// network is quiescent: no messages in flight and no timers pending).
    pub fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        while let Some(key) = self.core.queue().peek_key() {
            if key.time > deadline {
                return false;
            }
            self.step();
        }
        true
    }

    /// Processes the single earliest queued event, if any. Returns `false`
    /// when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((key, event)) = self.core.pop_event() else {
            return false;
        };
        self.process(key, event);
        true
    }

    /// A snapshot of the per-node link counters and energy reports, with idle
    /// energy charged up to the current simulation time.
    pub fn network_stats(&self) -> NetworkStats {
        self.network_stats_at(self.core.now())
    }

    /// Like [`Simulator::network_stats`], but charging idle energy up to an
    /// explicit time — the partition coordinator passes the *global* clock so
    /// regions whose local clocks stopped at different last events still
    /// produce the idle totals the sequential engine would.
    pub(crate) fn network_stats_at(&self, at: Timestamp) -> NetworkStats {
        let mut stats = NetworkStats::default();
        let elapsed_secs = at.as_secs_f64();
        for (id, meter) in &self.meters {
            let mut report = meter.report();
            // Idle power is drawn for the whole run; the radio-active time is
            // negligible in comparison and the paper's idle draw (3 µW) makes
            // the distinction irrelevant at the reported precision.
            report.idle_joules += self.config.energy.idle_energy(elapsed_secs);
            stats.energy.insert(*id, report);
        }
        for (id, ns) in &self.node_stats {
            stats.nodes.insert(*id, *ns);
        }
        stats
    }

    // ------------------------------------------------------------------
    // Region hooks: the narrow surface the partition coordinator drives a
    // region through. All pub(crate); see crate::region for the protocol.
    // ------------------------------------------------------------------

    /// The time of the earliest queued event, if any.
    pub(crate) fn next_event_time(&self) -> Option<Timestamp> {
        self.core.queue().peek_key().map(|k| k.time)
    }

    /// Processes every queued event with `time < exclusive_bound` (one
    /// conservative epoch). Cross-region receptions generated inside the
    /// window land in the outbox.
    pub(crate) fn run_window(&mut self, exclusive_bound: Timestamp) {
        while let Some(key) = self.core.queue().peek_key() {
            if key.time >= exclusive_bound {
                break;
            }
            self.step();
        }
    }

    /// Injects an externally keyed event (a boundary reception routed from
    /// another region, or a coordinator-scheduled start/timer/control event).
    pub(crate) fn inject_keyed(&mut self, key: EventKey, event: NetEvent<A::Message>) {
        if matches!(&event, NetEvent::Reception { payload: Some(_), .. }) {
            self.pending_deliveries += 1;
        }
        self.core.queue_mut().push(key, event);
    }

    /// Injects a pre-keyed timer batch (one queue slot).
    pub(crate) fn inject_batch(&mut self, entries: Vec<(EventKey, NetEvent<A::Message>)>) {
        self.core.queue_mut().push_batch(entries);
    }

    /// Drains the receptions addressed to nodes owned by other regions.
    pub(crate) fn take_outbox(&mut self) -> Vec<(EventKey, NetEvent<A::Message>)> {
        std::mem::take(&mut self.outbox)
    }

    /// Moves the clock forward (never backwards) — the coordinator aligns
    /// every region on the global clock at deadlines.
    pub(crate) fn advance_clock(&mut self, to: Timestamp) {
        self.core.advance_now(to);
    }

    /// Whether this engine owns `id` (executes its events and accounts its
    /// energy). Meters are created for owned nodes only and survive node
    /// removal, exactly like the accounting state they guard.
    fn owns(&self, id: SensorId) -> bool {
        self.meters.contains_key(&id)
    }

    /// Materialises the per-node neighbour lists shared by every dispatch.
    fn build_adjacency(topology: &Topology) -> BTreeMap<SensorId, Arc<Vec<SensorId>>> {
        topology.sensor_ids().into_iter().map(|id| (id, Arc::new(topology.neighbors(id)))).collect()
    }

    /// Applies one popped event: engine-side accounting first, then (when the
    /// event concerns the application) component dispatch.
    fn process(&mut self, key: EventKey, event: NetEvent<A::Message>) {
        let target = SensorId(key.target);
        match event {
            NetEvent::Reception { from, payload, payload_bytes, airtime_secs, dropped } => {
                // A duty-cycled radio that is asleep at the reception instant
                // hears nothing at all: no receive energy, no overhearing, no
                // delivery. The check is a pure function of (plan, node,
                // event time), evaluated here — in the receiver's owning
                // engine — so both backends agree bit for bit.
                if let Some(cycle) = self.duty_cycles.get(&target) {
                    if !cycle.is_awake(key.time) {
                        if payload.is_some() {
                            self.pending_deliveries -= 1;
                        }
                        self.node_stats.entry(target).or_default().packets_dropped_asleep += 1;
                        OBS_DROPPED_ASLEEP.add(1);
                        return;
                    }
                }
                // Every in-range node pays receive energy (promiscuous
                // listening), whether or not the packet was addressed to it
                // or survived the loss model.
                if let Some(meter) = self.meters.get_mut(&target) {
                    meter.charge_rx(&self.config.energy, airtime_secs);
                }
                match payload {
                    Some(payload) => {
                        self.pending_deliveries -= 1;
                        if self.core.component(target.raw()).is_some() {
                            let stats = self.node_stats.entry(target).or_default();
                            stats.packets_received += 1;
                            stats.bytes_received += payload_bytes as u64;
                            self.dispatch_event(
                                target,
                                NetEvent::Reception {
                                    from,
                                    payload: Some(payload),
                                    payload_bytes,
                                    airtime_secs,
                                    dropped,
                                },
                            );
                        }
                    }
                    None => {
                        let stats = self.node_stats.entry(target).or_default();
                        stats.packets_overheard += 1;
                        if dropped {
                            stats.packets_dropped += 1;
                        }
                    }
                }
            }
            other => self.dispatch_event(target, other),
        }
    }

    /// Dispatches an event to a node's component and interprets its
    /// emissions (packets first, then timers).
    fn dispatch_event(&mut self, node: SensorId, event: NetEvent<A::Message>) {
        let env = self.adjacency.get(&node).cloned().unwrap_or_default();
        let emissions = self.core.dispatch(node.raw(), &env, event);
        for emission in emissions {
            match emission {
                NodeEmission::Packet(packet) => self.transmit(node, packet),
                NodeEmission::Timer { delay_micros, timer } => {
                    let at = self.core.now().advanced_by_micros(delay_micros);
                    let seq = self.core.next_emission_seq(node.raw());
                    let key = EventKey::new(at, CLASS_TIMER, node.raw(), seq, node.raw());
                    self.core.queue_mut().push(key, NetEvent::Timer(timer));
                }
            }
        }
    }

    /// The loss model's RNG for one transmission, derived from the seed, the
    /// sender and the sender's emission counter. A pure function of the
    /// transmission's identity: the outcome is the same whether the network
    /// runs on one queue or on many regional queues.
    fn transmission_rng(&self, sender: SensorId, seq: u64) -> SeededRng {
        let mut mix = SplitMix64::new(
            self.config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(sender.raw()))),
        );
        let keyed = mix.next_u64() ^ seq;
        SeededRng::seed_from_u64(SplitMix64::new(keyed).next_u64())
    }

    fn transmit(&mut self, sender: SensorId, packet: OutgoingPacket<A::Message>) {
        let OutgoingPacket { destination, payload, payload_bytes } = packet;
        let seq = self.core.next_emission_seq(sender.raw());
        let mut rng = self.transmission_rng(sender, seq);
        let outcome = mac::transmit_with_channels(
            &self.topology,
            &self.config.radio,
            &mut rng,
            &mut self.link_channels,
            self.config.seed,
            sender,
            destination,
            payload_bytes,
        );
        // Sender pays transmit energy for the airtime and logs the packet.
        if let Some(meter) = self.meters.get_mut(&sender) {
            meter.charge_tx(&self.config.energy, outcome.airtime_secs);
        }
        let sender_stats = self.node_stats.entry(sender).or_default();
        sender_stats.packets_sent += 1;
        sender_stats.bytes_sent += payload_bytes as u64;
        // Schedule one reception per in-range node, one airtime out. All
        // receiver-side effects (energy, statistics, delivery) happen when
        // the reception fires — possibly in another region's engine.
        let payload = Arc::new(payload);
        let delivery_time = self.core.now().advanced_by_secs_f64(outcome.airtime_secs);
        for reception in outcome.receptions {
            let key = EventKey::new(
                delivery_time,
                CLASS_RECEPTION,
                sender.raw(),
                seq,
                reception.receiver.raw(),
            );
            let event = NetEvent::Reception {
                from: sender,
                payload: reception.delivers_payload.then(|| Arc::clone(&payload)),
                payload_bytes,
                airtime_secs: outcome.airtime_secs,
                dropped: reception.dropped,
            };
            if self.owns(reception.receiver) {
                if reception.delivers_payload {
                    self.pending_deliveries += 1;
                }
                self.core.queue_mut().push(key, event);
            } else {
                self.outbox.push((key, event));
            }
        }

        // A destination that is not currently a neighbour simply never
        // receives the packet; the energy was still spent. Match the paper's
        // assumption that senders learn about undeliverable messages through
        // the link layer by notifying the application of a neighbourhood
        // change if it unicasts to a vanished neighbour. The notification is
        // sender-local and synchronous, so it is region-safe.
        if let Destination::Unicast(target) = destination {
            if !self.topology.are_neighbors(sender, target)
                && self.core.component(sender.raw()).is_some()
            {
                self.dispatch_event(sender, NetEvent::NeighborhoodChanged);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::LossModel;
    use wsn_data::stream::SensorSpec;
    use wsn_data::Position;

    /// A tiny flooding protocol used to exercise the engine: node 0 starts a
    /// flood; every node re-broadcasts the first copy it receives.
    struct Flood {
        is_origin: bool,
        seen: bool,
        received_from: Vec<SensorId>,
    }

    impl Flood {
        fn new(origin: bool) -> Self {
            Flood { is_origin: origin, seen: false, received_from: Vec::new() }
        }
    }

    impl Application for Flood {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut NodeContext<u32>) {
            if self.is_origin {
                self.seen = true;
                ctx.broadcast(7, 10);
            }
        }

        fn on_message(&mut self, ctx: &mut NodeContext<u32>, from: SensorId, message: u32) {
            self.received_from.push(from);
            if !self.seen {
                self.seen = true;
                ctx.broadcast(message, 10);
            }
        }

        fn on_timer(&mut self, ctx: &mut NodeContext<u32>, _timer: TimerId) {
            ctx.broadcast(99, 10);
        }
    }

    fn chain_topology(n: u32) -> Topology {
        let specs: Vec<SensorSpec> = (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    fn flood_sim(n: u32, config: SimConfig) -> Simulator<Flood> {
        Simulator::new(config, chain_topology(n), |id| Flood::new(id == SensorId(0)))
    }

    #[test]
    fn flood_reaches_every_node_on_a_chain() {
        let mut sim = flood_sim(5, SimConfig::default());
        assert!(sim.run_until_quiescent(Timestamp::from_secs(10)));
        for (id, app) in sim.apps() {
            assert!(app.seen, "node {id} did not receive the flood");
        }
        // Four hops of propagation happened after t=0.
        assert!(sim.now() > Timestamp::ZERO);
        assert_eq!(sim.messages_in_flight(), 0);
    }

    #[test]
    fn energy_is_charged_to_senders_and_listeners() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let stats = sim.network_stats();
        // Every node broadcast exactly once.
        assert_eq!(stats.total_packets_sent(), 3);
        for (id, report) in &stats.energy {
            assert!(report.tx_joules > 0.0, "node {id} should have transmit energy");
            assert!(report.rx_joules > 0.0, "node {id} should have receive energy");
        }
        // The middle node hears both ends: its receive energy is the largest.
        let rx = |i: u32| stats.energy[&SensorId(i)].rx_joules;
        assert!(rx(1) >= rx(0));
        assert!(rx(1) >= rx(2));
    }

    #[test]
    fn receive_energy_exceeds_transmit_energy_with_crossbow_model() {
        // RX power > TX power and every broadcast is heard by >= 1 node, so
        // network-wide RX energy must exceed TX energy.
        let mut sim = flood_sim(5, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let stats = sim.network_stats();
        let tx: f64 = stats.tx_energy_per_node().iter().sum();
        let rx: f64 = stats.rx_energy_per_node().iter().sum();
        assert!(rx > tx);
    }

    #[test]
    fn total_loss_stops_the_flood_at_the_origin() {
        let config = SimConfig {
            radio: RadioConfig::paper_default().with_loss(LossModel::bernoulli(1.0)),
            ..Default::default()
        };
        let mut sim = flood_sim(4, config);
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let reached = sim.apps().filter(|(_, a)| a.seen).count();
        assert_eq!(reached, 1, "only the origin has seen the flood");
        let stats = sim.network_stats();
        assert!(stats.total_packets_dropped() > 0);
        // Listeners still paid receive energy for the dropped packet.
        assert!(stats.energy[&SensorId(1)].rx_joules > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let config = SimConfig {
                radio: RadioConfig::paper_default().with_loss(LossModel::bernoulli(0.3)),
                seed,
                ..Default::default()
            };
            let mut sim = flood_sim(6, config);
            sim.run_until_quiescent(Timestamp::from_secs(10));
            let stats = sim.network_stats();
            (
                stats.total_packets_sent(),
                stats.total_packets_dropped(),
                sim.apps().filter(|(_, a)| a.seen).count(),
            )
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn run_until_advances_the_clock_even_without_events() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until(Timestamp::from_secs(100));
        assert_eq!(sim.now(), Timestamp::from_secs(100));
        // Idle energy accrues with the clock.
        let stats = sim.network_stats();
        assert!(stats.energy[&SensorId(0)].idle_joules > 0.0);
    }

    #[test]
    fn externally_scheduled_timers_fire() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let before = sim.network_stats().total_packets_sent();
        sim.schedule_timer(SensorId(1), Timestamp::from_secs(5), 42);
        sim.run_until(Timestamp::from_secs(6));
        let after = sim.network_stats().total_packets_sent();
        assert_eq!(after, before + 1, "the timer callback broadcast one packet");
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let before = sim.network_stats().total_packets_sent();
        let keep = sim.schedule_timer(SensorId(0), Timestamp::from_secs(5), 1);
        let cancel = sim.schedule_timer(SensorId(1), Timestamp::from_secs(5), 2);
        assert!(sim.cancel_timer(cancel));
        assert!(!sim.cancel_timer(cancel), "double cancel is a stale no-op");
        sim.run_until(Timestamp::from_secs(6));
        assert_eq!(sim.network_stats().total_packets_sent(), before + 1);
        assert!(!sim.cancel_timer(keep), "a fired timer can no longer be cancelled");
    }

    #[test]
    fn removing_a_node_notifies_neighbors_and_stops_its_events() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.remove_node(SensorId(1));
        assert!(sim.app(SensorId(1)).is_none());
        assert_eq!(sim.topology().len(), 2);
        // Timers scheduled for the removed node are ignored.
        sim.schedule_timer(SensorId(1), Timestamp::from_secs(2), 1);
        let sent_before = sim.network_stats().total_packets_sent();
        sim.run_until(Timestamp::from_secs(3));
        assert_eq!(sim.network_stats().total_packets_sent(), sent_before);
    }

    #[test]
    fn removal_notifications_are_delivered_as_control_events() {
        struct CountChanges {
            changes: u32,
        }
        impl Application for CountChanges {
            type Message = ();
            fn on_start(&mut self, _ctx: &mut NodeContext<()>) {}
            fn on_message(&mut self, _ctx: &mut NodeContext<()>, _from: SensorId, _m: ()) {}
            fn on_timer(&mut self, _ctx: &mut NodeContext<()>, _t: TimerId) {}
            fn on_neighborhood_change(&mut self, _ctx: &mut NodeContext<()>) {
                self.changes += 1;
            }
        }
        let mut sim = Simulator::new(SimConfig::default(), chain_topology(3), |_| CountChanges {
            changes: 0,
        });
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.remove_node(SensorId(1));
        // The notification is an ordinary queued event at the current time…
        assert_eq!(sim.queued_events(), 2);
        sim.run_until(Timestamp::from_secs(1));
        // …delivered to both former neighbours, and only to them.
        assert_eq!(sim.app(SensorId(0)).unwrap().changes, 1);
        assert_eq!(sim.app(SensorId(2)).unwrap().changes, 1);
    }

    #[test]
    fn timer_batches_occupy_one_queue_slot_and_fire_in_order() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let baseline = sim.network_stats().total_packets_sent();
        // Six timers (two rounds over three nodes) behind one queue entry.
        let entries: Vec<BatchTimerEntry> =
            (0..6).map(|i| (Timestamp::from_secs(10 + i), SensorId(i as u32 % 3), i)).collect();
        sim.schedule_timer_batch(entries);
        assert_eq!(sim.queued_events(), 1, "the whole fan-out is one queue entry");
        sim.run_until(Timestamp::from_secs(12));
        assert_eq!(sim.network_stats().total_packets_sent(), baseline + 3);
        // Besides the in-flight deliveries, the remaining entries still
        // share a single queue slot.
        assert_eq!(sim.queued_events() - sim.messages_in_flight(), 1);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        assert_eq!(sim.network_stats().total_packets_sent(), baseline + 6);
    }

    #[test]
    fn timer_batch_entries_for_removed_nodes_are_skipped() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.schedule_timer_batch(vec![
            (Timestamp::from_secs(5), SensorId(1), 0),
            (Timestamp::from_secs(6), SensorId(2), 1),
        ]);
        sim.remove_node(SensorId(1));
        let before = sim.network_stats().total_packets_sent();
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        // Only the surviving node's timer broadcast.
        assert_eq!(sim.network_stats().total_packets_sent(), before + 1);
    }

    #[test]
    fn empty_timer_batches_are_a_no_op() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.schedule_timer_batch(Vec::new());
        assert_eq!(sim.queued_events(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by ascending time")]
    fn unsorted_timer_batches_are_rejected() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.schedule_timer_batch(vec![
            (Timestamp::from_secs(5), SensorId(0), 0),
            (Timestamp::from_secs(4), SensorId(1), 1),
        ]);
    }

    #[test]
    fn removing_a_node_patches_only_affected_adjacency_entries() {
        let mut sim = flood_sim(4, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let untouched = Arc::clone(&sim.adjacency[&SensorId(3)]);
        sim.remove_node(SensorId(1));
        assert!(!sim.adjacency.contains_key(&SensorId(1)));
        assert_eq!(sim.adjacency[&SensorId(0)].as_slice(), &[] as &[SensorId]);
        assert_eq!(sim.adjacency[&SensorId(2)].as_slice(), &[SensorId(3)]);
        // Node 3 was not adjacent to node 1: its cached list is reused as-is.
        assert!(Arc::ptr_eq(&untouched, &sim.adjacency[&SensorId(3)]));
    }

    #[test]
    fn quiescence_respects_the_deadline() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.schedule_timer(SensorId(0), Timestamp::from_secs(50), 9);
        // The timer at t=50 lies beyond the deadline: not quiescent.
        assert!(!sim.run_until_quiescent(Timestamp::from_secs(10)));
        assert!(sim.queued_events() > 0);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(100)));
    }

    #[test]
    fn adding_a_node_schedules_start_and_notifies_new_neighbors() {
        struct Probe {
            starts: u32,
            changes: u32,
        }
        impl Application for Probe {
            type Message = ();
            fn on_start(&mut self, _ctx: &mut NodeContext<()>) {
                self.starts += 1;
            }
            fn on_message(&mut self, _ctx: &mut NodeContext<()>, _from: SensorId, _m: ()) {}
            fn on_timer(&mut self, _ctx: &mut NodeContext<()>, _t: TimerId) {}
            fn on_neighborhood_change(&mut self, _ctx: &mut NodeContext<()>) {
                self.changes += 1;
            }
        }
        let probe = || Probe { starts: 0, changes: 0 };
        let mut sim = Simulator::new(SimConfig::default(), chain_topology(3), |_| probe());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.remove_node(SensorId(1));
        sim.run_until(Timestamp::from_secs(1));
        let neighbors = sim.add_node(SensorId(1), Position::new(5.0, 0.0), probe());
        assert_eq!(neighbors, vec![SensorId(0), SensorId(2)]);
        sim.run_until(Timestamp::from_secs(1));
        assert_eq!(sim.app(SensorId(1)).unwrap().starts, 1, "the rejoined node restarted");
        // Former neighbours saw both the departure and the rejoin.
        assert_eq!(sim.app(SensorId(0)).unwrap().changes, 2);
        assert_eq!(sim.app(SensorId(2)).unwrap().changes, 2);
        assert_eq!(sim.topology().len(), 3);
        assert_eq!(sim.adjacency[&SensorId(1)].as_slice(), &[SensorId(0), SensorId(2)]);
    }

    #[test]
    fn a_rejoining_node_keeps_its_energy_and_link_history() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let before = sim.network_stats();
        assert!(before.energy[&SensorId(1)].tx_joules > 0.0);
        assert_eq!(before.nodes[&SensorId(1)].packets_sent, 1);
        sim.remove_node(SensorId(1));
        sim.run_until(Timestamp::from_secs(1));
        sim.add_node(SensorId(1), Position::new(5.0, 0.0), Flood::new(false));
        assert!(sim.run_until_quiescent(Timestamp::from_secs(2)));
        let after = sim.network_stats();
        // The meter and counters survived the death → rejoin cycle: the
        // battery history belongs to the mote, not the software instance.
        assert_eq!(after.energy[&SensorId(1)].tx_joules, before.energy[&SensorId(1)].tx_joules);
        assert_eq!(after.nodes[&SensorId(1)].packets_sent, 1);
    }

    #[test]
    fn sleeping_receivers_hear_nothing_and_pay_nothing() {
        // Node 1 is permanently asleep (awake 0 µs of every 1000 µs): the
        // flood dies on the first hop, and the sleeping radio is charged no
        // receive energy for the transmission it never heard.
        let mut cycles = BTreeMap::new();
        cycles.insert(SensorId(1), DutyCycle::from_micros(1_000, 0, 0));
        let mut sim = flood_sim(3, SimConfig::default());
        sim.set_duty_cycles(Arc::new(cycles));
        assert!(sim.run_until_quiescent(Timestamp::from_secs(10)));
        assert!(!sim.app(SensorId(1)).unwrap().seen);
        assert!(!sim.app(SensorId(2)).unwrap().seen);
        let stats = sim.network_stats();
        assert_eq!(stats.nodes[&SensorId(1)].packets_dropped_asleep, 1);
        assert_eq!(stats.total_packets_dropped_asleep(), 1);
        assert_eq!(stats.energy[&SensorId(1)].rx_joules, 0.0);
        assert_eq!(sim.messages_in_flight(), 0, "the sleeping drop settled the delivery");
    }

    #[test]
    fn always_awake_duty_cycles_change_nothing() {
        let cycles: BTreeMap<SensorId, DutyCycle> =
            (0..5).map(|i| (SensorId(i), DutyCycle::from_micros(1_000, 1_000, 0))).collect();
        let mut sim = flood_sim(5, SimConfig::default());
        sim.set_duty_cycles(Arc::new(cycles));
        assert!(sim.run_until_quiescent(Timestamp::from_secs(10)));
        for (id, app) in sim.apps() {
            assert!(app.seen, "node {id} did not receive the flood");
        }
        assert_eq!(sim.network_stats().total_packets_dropped_asleep(), 0);
    }

    #[test]
    fn gilbert_elliott_loss_is_deterministic_in_the_simulator() {
        let run = |seed: u64| {
            let config = SimConfig {
                radio: RadioConfig::paper_default()
                    .with_loss(LossModel::gilbert_elliott(0.3, 0.3, 0.05, 0.95)),
                seed,
                ..Default::default()
            };
            let mut sim = flood_sim(6, config);
            sim.run_until_quiescent(Timestamp::from_secs(10));
            let stats = sim.network_stats();
            (
                stats.total_packets_sent(),
                stats.total_packets_dropped(),
                sim.apps().filter(|(_, a)| a.seen).count(),
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn event_counters_track_processing() {
        let mut sim = flood_sim(3, SimConfig::default());
        assert_eq!(sim.events_processed(), 0);
        sim.run_until_quiescent(Timestamp::from_secs(10));
        // 3 start events + 1 origin broadcast delivered to 1 neighbour,
        // re-broadcast delivered to 2, final re-broadcast delivered to 1.
        assert!(sim.events_processed() >= 6);
        assert!(!sim.step(), "queue is drained");
    }
}
