//! The discrete-event simulation engine.
//!
//! The simulator owns one [`Application`] instance per sensor and delivers
//! three kinds of events to it — start-up, timer expiry, and message arrival
//! — in global timestamp order. Every transmission an application requests is
//! run through the MAC/radio model, charged to the per-node energy meters,
//! and (when it survives the loss model) scheduled for delivery one airtime
//! later. The design mirrors how the paper's protocols are specified:
//! entirely event-driven, with all communication restricted to single-hop
//! neighbours (§4.2, §5.2).

use crate::energy::{EnergyMeter, EnergyModel};
use crate::mac;
use crate::packet::{Destination, OutgoingPacket};
use crate::radio::RadioConfig;
use crate::stats::{NetworkStats, NodeStats};
use crate::topology::Topology;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use wsn_data::rng::SeededRng;
use wsn_data::{SensorId, Timestamp};

/// Identifier an application assigns to a timer it sets.
pub type TimerId = u64;

/// A per-node protocol implementation run by the simulator.
///
/// All methods receive a [`NodeContext`] through which the application reads
/// its identity, the current time and its single-hop neighbourhood, and
/// queues transmissions and timers. Effects are applied by the simulator
/// after the callback returns.
pub trait Application {
    /// The message type exchanged between application instances.
    type Message: Clone;

    /// Called once at simulation start (the paper's "algorithm is
    /// initialized" event).
    fn on_start(&mut self, ctx: &mut NodeContext<Self::Message>);

    /// Called when a message from a single-hop neighbour is delivered.
    fn on_message(
        &mut self,
        ctx: &mut NodeContext<Self::Message>,
        from: SensorId,
        message: Self::Message,
    );

    /// Called when a timer previously set through the context expires.
    fn on_timer(&mut self, ctx: &mut NodeContext<Self::Message>, timer: TimerId);

    /// Called when the node's single-hop neighbourhood changes (a link or a
    /// neighbour went up or down — the paper's event (iv)).
    fn on_neighborhood_change(&mut self, ctx: &mut NodeContext<Self::Message>) {
        let _ = ctx;
    }
}

/// The interface an application uses to interact with the simulated world
/// during a callback.
#[derive(Debug)]
pub struct NodeContext<M> {
    id: SensorId,
    now: Timestamp,
    /// Shared handle into the simulator's adjacency cache — no per-event
    /// allocation.
    neighbors: Arc<Vec<SensorId>>,
    outgoing: Vec<OutgoingPacket<M>>,
    timers: Vec<(u64, TimerId)>,
}

impl<M> NodeContext<M> {
    /// This node's identifier.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The current simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The node's current single-hop neighbours.
    pub fn neighbors(&self) -> &[SensorId] {
        &self.neighbors
    }

    /// Queues a single-hop broadcast of `payload` occupying `payload_bytes`
    /// bytes on the air.
    pub fn broadcast(&mut self, payload: M, payload_bytes: usize) {
        self.outgoing.push(OutgoingPacket::broadcast(payload, payload_bytes));
    }

    /// Queues a link-layer unicast to a neighbour. If `to` is not currently
    /// within radio range the transmission still occupies the channel and
    /// costs energy, but nothing is delivered.
    pub fn unicast(&mut self, to: SensorId, payload: M, payload_bytes: usize) {
        self.outgoing.push(OutgoingPacket::unicast(to, payload, payload_bytes));
    }

    /// Schedules `timer` to fire `delay_micros` microseconds from now.
    pub fn set_timer_after_micros(&mut self, delay_micros: u64, timer: TimerId) {
        self.timers.push((delay_micros, timer));
    }

    /// Schedules `timer` to fire `delay_secs` seconds from now.
    pub fn set_timer_after_secs(&mut self, delay_secs: f64, timer: TimerId) {
        self.set_timer_after_micros((delay_secs * 1e6).round() as u64, timer);
    }
}

/// Simulation-wide configuration.
///
/// The derived default is the paper's setup: `paper_default` radio,
/// Crossbow-mote energy model, seed 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// Radio / channel model.
    pub radio: RadioConfig,
    /// Energy model charged for radio activity.
    pub energy: EnergyModel,
    /// Seed of the simulation's random number generator (packet loss).
    pub seed: u64,
}

/// One entry of a pre-planned timer batch: fire `timer` at `node` at `time`.
pub type BatchTimerEntry = (Timestamp, SensorId, TimerId);

enum EventKind<M> {
    Start(SensorId),
    Timer {
        node: SensorId,
        timer: TimerId,
    },
    /// A pre-sorted sequence of timers sharing **one** queue entry: the
    /// batch sits in the heap at the time of its next undispatched entry and
    /// re-queues itself (same allocation, advanced cursor) after each
    /// dispatch. A periodic fan-out over every node — such as a sampling
    /// round — therefore costs one queued event instead of one per
    /// node × round.
    TimerBatch {
        entries: Arc<Vec<BatchTimerEntry>>,
        next: usize,
    },
    /// The payload is interned behind an [`Arc`]: one transmission heard by
    /// `r` receivers queues `r` handles to a single payload instead of `r`
    /// deep copies.
    Deliver {
        to: SensorId,
        from: SensorId,
        payload: Arc<M>,
        payload_bytes: usize,
    },
}

struct QueuedEvent<M> {
    time: Timestamp,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the std max-heap pops the *earliest* event first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator.
pub struct Simulator<A: Application> {
    config: SimConfig,
    topology: Topology,
    /// Per-node neighbour lists, derived from the topology once and shared
    /// with every [`NodeContext`]; rebuilt only on topology changes.
    adjacency: BTreeMap<SensorId, Arc<Vec<SensorId>>>,
    apps: BTreeMap<SensorId, A>,
    meters: BTreeMap<SensorId, EnergyMeter>,
    node_stats: BTreeMap<SensorId, NodeStats>,
    queue: BinaryHeap<QueuedEvent<A::Message>>,
    pending_deliveries: usize,
    now: Timestamp,
    seq: u64,
    rng: SeededRng,
    events_processed: u64,
}

impl<A: Application> Simulator<A> {
    /// Builds a simulator over `topology`, constructing one application per
    /// sensor with `make_app`, and schedules every node's start event at
    /// time zero.
    pub fn new(
        config: SimConfig,
        topology: Topology,
        mut make_app: impl FnMut(SensorId) -> A,
    ) -> Self {
        let ids = topology.sensor_ids();
        let apps: BTreeMap<SensorId, A> = ids.iter().map(|id| (*id, make_app(*id))).collect();
        let meters = ids.iter().map(|id| (*id, EnergyMeter::new())).collect();
        let node_stats = ids.iter().map(|id| (*id, NodeStats::default())).collect();
        let rng = SeededRng::seed_from_u64(config.seed);
        let adjacency = Self::build_adjacency(&topology);
        let mut sim = Simulator {
            config,
            topology,
            adjacency,
            apps,
            meters,
            node_stats,
            queue: BinaryHeap::new(),
            pending_deliveries: 0,
            now: Timestamp::ZERO,
            seq: 0,
            rng,
            events_processed: 0,
        };
        for id in ids {
            sim.push_event(Timestamp::ZERO, EventKind::Start(id));
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The communication topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Immutable access to a node's application.
    pub fn app(&self, id: SensorId) -> Option<&A> {
        self.apps.get(&id)
    }

    /// Iterates over all applications in ascending node order.
    pub fn apps(&self) -> impl Iterator<Item = (SensorId, &A)> {
        self.apps.iter().map(|(id, a)| (*id, a))
    }

    /// Mutable access to all applications, for harnesses that need to
    /// configure the apps after construction (e.g. switching them to an
    /// externally installed timer schedule).
    pub fn apps_mut(&mut self) -> impl Iterator<Item = (SensorId, &mut A)> {
        self.apps.iter_mut().map(|(id, a)| (*id, a))
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of transmissions currently in flight (scheduled deliveries).
    pub fn messages_in_flight(&self) -> usize {
        self.pending_deliveries
    }

    /// Number of events (of any kind) still queued.
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a timer for `node` at absolute time `at` from outside the
    /// application (used by harnesses to drive sampling rounds).
    pub fn schedule_timer(&mut self, node: SensorId, at: Timestamp, timer: TimerId) {
        self.push_event(at, EventKind::Timer { node, timer });
    }

    /// Schedules a whole batch of timers behind a **single** queue entry.
    ///
    /// The entries must be sorted by ascending time (equal times fire in
    /// vector order); the batch dispatches them one by one, re-queuing
    /// itself at the next entry's time after each dispatch, so an arbitrary
    /// per-round fan-out (one sampling timer per node, say) never occupies
    /// more than one slot in the event heap. Entries addressed to nodes
    /// removed before their time are skipped silently, exactly like an
    /// ordinary timer of a removed node.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted by time.
    pub fn schedule_timer_batch(&mut self, entries: Vec<BatchTimerEntry>) {
        assert!(
            entries.windows(2).all(|pair| pair[0].0 <= pair[1].0),
            "timer batch entries must be sorted by ascending time"
        );
        if entries.is_empty() {
            return;
        }
        let time = entries[0].0;
        self.push_event(time, EventKind::TimerBatch { entries: Arc::new(entries), next: 0 });
    }

    /// Removes a node from the simulation: its application stops receiving
    /// events and every remaining neighbour is notified through
    /// [`Application::on_neighborhood_change`] (the paper's link-down event).
    ///
    /// Only the adjacency entries of the removed node and its former
    /// neighbours are re-derived; the rest of the cached neighbour lists are
    /// untouched, so a node failure costs `O(degree)` map updates instead of
    /// a full rebuild over every sensor.
    pub fn remove_node(&mut self, id: SensorId) {
        let former_neighbors = self.topology.neighbors(id);
        self.topology.remove_sensor(id);
        self.apps.remove(&id);
        self.adjacency.remove(&id);
        for n in &former_neighbors {
            self.adjacency.insert(*n, Arc::new(self.topology.neighbors(*n)));
        }
        for n in former_neighbors {
            if self.apps.contains_key(&n) {
                self.dispatch(n, |app, ctx| app.on_neighborhood_change(ctx));
            }
        }
    }

    /// Runs the simulation until `deadline` (inclusive), processing every
    /// event scheduled up to that time. Advances the clock to `deadline`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Timestamp) -> u64 {
        let mut processed = 0;
        while let Some(next) = self.queue.peek() {
            if next.time > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        if deadline > self.now {
            self.now = deadline;
        }
        processed
    }

    /// Runs until the event queue is completely drained or the next event
    /// lies beyond `deadline`. Returns `true` if the queue drained (the
    /// network is quiescent: no messages in flight and no timers pending).
    pub fn run_until_quiescent(&mut self, deadline: Timestamp) -> bool {
        while let Some(next) = self.queue.peek() {
            if next.time > deadline {
                return false;
            }
            self.step();
        }
        true
    }

    /// Processes the single earliest queued event, if any. Returns `false`
    /// when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "events must be processed in time order");
        self.now = event.time;
        self.events_processed += 1;
        match event.kind {
            EventKind::Start(node) => {
                self.dispatch(node, |app, ctx| app.on_start(ctx));
            }
            EventKind::Timer { node, timer } => {
                self.dispatch(node, |app, ctx| app.on_timer(ctx, timer));
            }
            EventKind::TimerBatch { entries, next } => {
                let (_, node, timer) = entries[next];
                // Re-queue the batch for its next entry *before* dispatching,
                // so a callback that inspects the queue sees it pending.
                if next + 1 < entries.len() {
                    let time = entries[next + 1].0;
                    self.push_event(
                        time,
                        EventKind::TimerBatch { entries: Arc::clone(&entries), next: next + 1 },
                    );
                }
                self.dispatch(node, |app, ctx| app.on_timer(ctx, timer));
            }
            EventKind::Deliver { to, from, payload, payload_bytes } => {
                self.pending_deliveries -= 1;
                if self.apps.contains_key(&to) {
                    let stats = self.node_stats.entry(to).or_default();
                    stats.packets_received += 1;
                    stats.bytes_received += payload_bytes as u64;
                    // The last receiver of an interned payload takes it by
                    // move; earlier ones clone.
                    let payload =
                        Arc::try_unwrap(payload).unwrap_or_else(|shared| (*shared).clone());
                    self.dispatch(to, |app, ctx| app.on_message(ctx, from, payload));
                }
            }
        }
        true
    }

    /// A snapshot of the per-node link counters and energy reports, with idle
    /// energy charged up to the current simulation time.
    pub fn network_stats(&self) -> NetworkStats {
        let mut stats = NetworkStats::default();
        let elapsed_secs = self.now.as_secs_f64();
        for (id, meter) in &self.meters {
            let mut report = meter.report();
            // Idle power is drawn for the whole run; the radio-active time is
            // negligible in comparison and the paper's idle draw (3 µW) makes
            // the distinction irrelevant at the reported precision.
            report.idle_joules += self.config.energy.idle_energy(elapsed_secs);
            stats.energy.insert(*id, report);
        }
        for (id, ns) in &self.node_stats {
            stats.nodes.insert(*id, *ns);
        }
        stats
    }

    fn push_event(&mut self, time: Timestamp, kind: EventKind<A::Message>) {
        let seq = self.seq;
        self.seq += 1;
        if matches!(kind, EventKind::Deliver { .. }) {
            self.pending_deliveries += 1;
        }
        self.queue.push(QueuedEvent { time, seq, kind });
    }

    /// Materialises the per-node neighbour lists shared by every dispatch.
    fn build_adjacency(topology: &Topology) -> BTreeMap<SensorId, Arc<Vec<SensorId>>> {
        topology.sensor_ids().into_iter().map(|id| (id, Arc::new(topology.neighbors(id)))).collect()
    }

    fn dispatch(
        &mut self,
        node: SensorId,
        callback: impl FnOnce(&mut A, &mut NodeContext<A::Message>),
    ) {
        let mut ctx = NodeContext {
            id: node,
            now: self.now,
            neighbors: self.adjacency.get(&node).cloned().unwrap_or_default(),
            outgoing: Vec::new(),
            timers: Vec::new(),
        };
        let Some(app) = self.apps.get_mut(&node) else {
            return;
        };
        callback(app, &mut ctx);
        let NodeContext { outgoing, timers, .. } = ctx;
        for packet in outgoing {
            self.transmit(node, packet);
        }
        for (delay_micros, timer) in timers {
            let at = self.now.advanced_by_micros(delay_micros);
            self.push_event(at, EventKind::Timer { node, timer });
        }
    }

    fn transmit(&mut self, sender: SensorId, packet: OutgoingPacket<A::Message>) {
        let OutgoingPacket { destination, payload, payload_bytes } = packet;
        let outcome = mac::transmit(
            &self.topology,
            &self.config.radio,
            &mut self.rng,
            sender,
            destination,
            payload_bytes,
        );
        // Sender pays transmit energy for the airtime and logs the packet.
        if let Some(meter) = self.meters.get_mut(&sender) {
            meter.charge_tx(&self.config.energy, outcome.airtime_secs);
        }
        let sender_stats = self.node_stats.entry(sender).or_default();
        sender_stats.packets_sent += 1;
        sender_stats.bytes_sent += payload_bytes as u64;
        // Every in-range node pays receive energy (promiscuous listening);
        // addressed receivers that survive the loss model get the payload
        // delivered one airtime later. The payload itself is interned once —
        // receivers share the allocation until delivery.
        let payload = Arc::new(payload);
        let delivery_time = self.now.advanced_by_secs_f64(outcome.airtime_secs);
        for reception in outcome.receptions {
            if let Some(meter) = self.meters.get_mut(&reception.receiver) {
                meter.charge_rx(&self.config.energy, outcome.airtime_secs);
            }
            let stats = self.node_stats.entry(reception.receiver).or_default();
            if reception.delivers_payload {
                self.push_event(
                    delivery_time,
                    EventKind::Deliver {
                        to: reception.receiver,
                        from: sender,
                        payload: Arc::clone(&payload),
                        payload_bytes,
                    },
                );
            } else {
                stats.packets_overheard += 1;
                if reception.dropped {
                    stats.packets_dropped += 1;
                }
            }
        }

        // A destination that is not currently a neighbour simply never
        // receives the packet; the energy was still spent. Match the paper's
        // assumption that senders learn about undeliverable messages through
        // the link layer by notifying the application of a neighbourhood
        // change if it unicasts to a vanished neighbour.
        if let Destination::Unicast(target) = destination {
            if !self.topology.are_neighbors(sender, target) && self.apps.contains_key(&sender) {
                self.dispatch(sender, |app, ctx| app.on_neighborhood_change(ctx));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::LossModel;
    use wsn_data::stream::SensorSpec;
    use wsn_data::Position;

    /// A tiny flooding protocol used to exercise the engine: node 0 starts a
    /// flood; every node re-broadcasts the first copy it receives.
    struct Flood {
        is_origin: bool,
        seen: bool,
        received_from: Vec<SensorId>,
    }

    impl Flood {
        fn new(origin: bool) -> Self {
            Flood { is_origin: origin, seen: false, received_from: Vec::new() }
        }
    }

    impl Application for Flood {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut NodeContext<u32>) {
            if self.is_origin {
                self.seen = true;
                ctx.broadcast(7, 10);
            }
        }

        fn on_message(&mut self, ctx: &mut NodeContext<u32>, from: SensorId, message: u32) {
            self.received_from.push(from);
            if !self.seen {
                self.seen = true;
                ctx.broadcast(message, 10);
            }
        }

        fn on_timer(&mut self, ctx: &mut NodeContext<u32>, _timer: TimerId) {
            ctx.broadcast(99, 10);
        }
    }

    fn chain_topology(n: u32) -> Topology {
        let specs: Vec<SensorSpec> = (0..n)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    fn flood_sim(n: u32, config: SimConfig) -> Simulator<Flood> {
        Simulator::new(config, chain_topology(n), |id| Flood::new(id == SensorId(0)))
    }

    #[test]
    fn flood_reaches_every_node_on_a_chain() {
        let mut sim = flood_sim(5, SimConfig::default());
        assert!(sim.run_until_quiescent(Timestamp::from_secs(10)));
        for (id, app) in sim.apps() {
            assert!(app.seen, "node {id} did not receive the flood");
        }
        // Four hops of propagation happened after t=0.
        assert!(sim.now() > Timestamp::ZERO);
        assert_eq!(sim.messages_in_flight(), 0);
    }

    #[test]
    fn energy_is_charged_to_senders_and_listeners() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let stats = sim.network_stats();
        // Every node broadcast exactly once.
        assert_eq!(stats.total_packets_sent(), 3);
        for (id, report) in &stats.energy {
            assert!(report.tx_joules > 0.0, "node {id} should have transmit energy");
            assert!(report.rx_joules > 0.0, "node {id} should have receive energy");
        }
        // The middle node hears both ends: its receive energy is the largest.
        let rx = |i: u32| stats.energy[&SensorId(i)].rx_joules;
        assert!(rx(1) >= rx(0));
        assert!(rx(1) >= rx(2));
    }

    #[test]
    fn receive_energy_exceeds_transmit_energy_with_crossbow_model() {
        // RX power > TX power and every broadcast is heard by >= 1 node, so
        // network-wide RX energy must exceed TX energy.
        let mut sim = flood_sim(5, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let stats = sim.network_stats();
        let tx: f64 = stats.tx_energy_per_node().iter().sum();
        let rx: f64 = stats.rx_energy_per_node().iter().sum();
        assert!(rx > tx);
    }

    #[test]
    fn total_loss_stops_the_flood_at_the_origin() {
        let config = SimConfig {
            radio: RadioConfig::paper_default().with_loss(LossModel::bernoulli(1.0)),
            ..Default::default()
        };
        let mut sim = flood_sim(4, config);
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let reached = sim.apps().filter(|(_, a)| a.seen).count();
        assert_eq!(reached, 1, "only the origin has seen the flood");
        let stats = sim.network_stats();
        assert!(stats.total_packets_dropped() > 0);
        // Listeners still paid receive energy for the dropped packet.
        assert!(stats.energy[&SensorId(1)].rx_joules > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let config = SimConfig {
                radio: RadioConfig::paper_default().with_loss(LossModel::bernoulli(0.3)),
                seed,
                ..Default::default()
            };
            let mut sim = flood_sim(6, config);
            sim.run_until_quiescent(Timestamp::from_secs(10));
            let stats = sim.network_stats();
            (
                stats.total_packets_sent(),
                stats.total_packets_dropped(),
                sim.apps().filter(|(_, a)| a.seen).count(),
            )
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn run_until_advances_the_clock_even_without_events() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until(Timestamp::from_secs(100));
        assert_eq!(sim.now(), Timestamp::from_secs(100));
        // Idle energy accrues with the clock.
        let stats = sim.network_stats();
        assert!(stats.energy[&SensorId(0)].idle_joules > 0.0);
    }

    #[test]
    fn externally_scheduled_timers_fire() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let before = sim.network_stats().total_packets_sent();
        sim.schedule_timer(SensorId(1), Timestamp::from_secs(5), 42);
        sim.run_until(Timestamp::from_secs(6));
        let after = sim.network_stats().total_packets_sent();
        assert_eq!(after, before + 1, "the timer callback broadcast one packet");
    }

    #[test]
    fn removing_a_node_notifies_neighbors_and_stops_its_events() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.remove_node(SensorId(1));
        assert!(sim.app(SensorId(1)).is_none());
        assert_eq!(sim.topology().len(), 2);
        // Timers scheduled for the removed node are ignored.
        sim.schedule_timer(SensorId(1), Timestamp::from_secs(2), 1);
        let sent_before = sim.network_stats().total_packets_sent();
        sim.run_until(Timestamp::from_secs(3));
        assert_eq!(sim.network_stats().total_packets_sent(), sent_before);
    }

    #[test]
    fn timer_batches_occupy_one_queue_slot_and_fire_in_order() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        let baseline = sim.network_stats().total_packets_sent();
        // Six timers (two rounds over three nodes) behind one queue entry.
        let entries: Vec<BatchTimerEntry> =
            (0..6).map(|i| (Timestamp::from_secs(10 + i), SensorId(i as u32 % 3), i)).collect();
        sim.schedule_timer_batch(entries);
        assert_eq!(sim.queued_events(), 1, "the whole fan-out is one queue entry");
        sim.run_until(Timestamp::from_secs(12));
        assert_eq!(sim.network_stats().total_packets_sent(), baseline + 3);
        // Besides the in-flight deliveries, the remaining entries still
        // share a single queue slot.
        assert_eq!(sim.queued_events() - sim.messages_in_flight(), 1);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        assert_eq!(sim.network_stats().total_packets_sent(), baseline + 6);
    }

    #[test]
    fn timer_batch_entries_for_removed_nodes_are_skipped() {
        let mut sim = flood_sim(3, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.schedule_timer_batch(vec![
            (Timestamp::from_secs(5), SensorId(1), 0),
            (Timestamp::from_secs(6), SensorId(2), 1),
        ]);
        sim.remove_node(SensorId(1));
        let before = sim.network_stats().total_packets_sent();
        assert!(sim.run_until_quiescent(Timestamp::from_secs(60)));
        // Only the surviving node's timer broadcast.
        assert_eq!(sim.network_stats().total_packets_sent(), before + 1);
    }

    #[test]
    fn empty_timer_batches_are_a_no_op() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(1));
        sim.schedule_timer_batch(Vec::new());
        assert_eq!(sim.queued_events(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by ascending time")]
    fn unsorted_timer_batches_are_rejected() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.schedule_timer_batch(vec![
            (Timestamp::from_secs(5), SensorId(0), 0),
            (Timestamp::from_secs(4), SensorId(1), 1),
        ]);
    }

    #[test]
    fn removing_a_node_patches_only_affected_adjacency_entries() {
        let mut sim = flood_sim(4, SimConfig::default());
        sim.run_until_quiescent(Timestamp::from_secs(10));
        let untouched = Arc::clone(&sim.adjacency[&SensorId(3)]);
        sim.remove_node(SensorId(1));
        assert!(!sim.adjacency.contains_key(&SensorId(1)));
        assert_eq!(sim.adjacency[&SensorId(0)].as_slice(), &[] as &[SensorId]);
        assert_eq!(sim.adjacency[&SensorId(2)].as_slice(), &[SensorId(3)]);
        // Node 3 was not adjacent to node 1: its cached list is reused as-is.
        assert!(Arc::ptr_eq(&untouched, &sim.adjacency[&SensorId(3)]));
    }

    #[test]
    fn quiescence_respects_the_deadline() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.schedule_timer(SensorId(0), Timestamp::from_secs(50), 9);
        // The timer at t=50 lies beyond the deadline: not quiescent.
        assert!(!sim.run_until_quiescent(Timestamp::from_secs(10)));
        assert!(sim.queued_events() > 0);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(100)));
    }

    #[test]
    fn event_counters_track_processing() {
        let mut sim = flood_sim(3, SimConfig::default());
        assert_eq!(sim.events_processed(), 0);
        sim.run_until_quiescent(Timestamp::from_secs(10));
        // 3 start events + 1 origin broadcast delivered to 1 neighbour,
        // re-broadcast delivered to 2, final re-broadcast delivered to 1.
        assert!(sim.events_processed() >= 6);
        assert!(!sim.step(), "queue is drained");
    }
}
