//! Radio and channel model.
//!
//! The paper configures all nodes with a uniform transmission range of
//! ≈6.77 m and simulates the channel with the free-space propagation model
//! (§7.1): every node within range of a transmitter hears the transmission,
//! nodes outside the range hear nothing. Packet loss, when enabled, is an
//! independent Bernoulli drop per receiver — the paper assumes reliable
//! messages but observes that "modest violation of this assumption … did not
//! effect accuracy significantly", and the accuracy experiments exercise
//! exactly that.

/// Per-receiver packet loss model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No losses: every in-range receiver gets every packet (the paper's
    /// baseline assumption).
    #[default]
    Reliable,
    /// Each in-range receiver independently drops the packet with the given
    /// probability.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        drop_probability: f64,
    },
}

impl LossModel {
    /// Creates a Bernoulli loss model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn bernoulli(drop_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_probability), "drop probability must be in [0, 1]");
        LossModel::Bernoulli { drop_probability }
    }

    /// The drop probability of this model.
    pub fn drop_probability(&self) -> f64 {
        match self {
            LossModel::Reliable => 0.0,
            LossModel::Bernoulli { drop_probability } => *drop_probability,
        }
    }
}

/// Radio configuration shared by every node of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Transmission range in metres (unit-disc propagation).
    pub range_m: f64,
    /// Radio bitrate in bits per second. The Crossbow MICA2 radio the paper's
    /// energy model is based on transmits at 38.4 kbit/s.
    pub bitrate_bps: f64,
    /// Fixed per-packet overhead in bytes (preamble, MAC header, CRC).
    pub overhead_bytes: usize,
    /// Packet loss model applied per receiver.
    pub loss: LossModel,
}

impl RadioConfig {
    /// The configuration matching the paper's setup: 6.77 m range, MICA2
    /// bitrate, a small MAC header, reliable delivery.
    pub fn paper_default() -> Self {
        RadioConfig {
            range_m: 6.77,
            bitrate_bps: 38_400.0,
            overhead_bytes: 16,
            loss: LossModel::Reliable,
        }
    }

    /// Creates a configuration with a custom range, keeping the remaining
    /// paper defaults.
    pub fn with_range(range_m: f64) -> Self {
        RadioConfig { range_m, ..RadioConfig::paper_default() }
    }

    /// Returns a copy with the given loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Airtime in seconds needed to transmit `payload_bytes` of payload plus
    /// the per-packet overhead.
    pub fn airtime_secs(&self, payload_bytes: usize) -> f64 {
        ((payload_bytes + self.overhead_bytes) as f64 * 8.0) / self.bitrate_bps
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_7_1() {
        let c = RadioConfig::paper_default();
        assert!((c.range_m - 6.77).abs() < 1e-12);
        assert_eq!(c.loss, LossModel::Reliable);
        assert_eq!(RadioConfig::default(), c);
    }

    #[test]
    fn airtime_grows_linearly_with_payload() {
        let c = RadioConfig::paper_default();
        let empty = c.airtime_secs(0);
        let hundred = c.airtime_secs(100);
        let two_hundred = c.airtime_secs(200);
        assert!(empty > 0.0, "overhead alone takes air time");
        assert!((two_hundred - hundred) - (hundred - empty) < 1e-12);
        // 100 bytes at 38.4 kbit/s is about 24 ms including overhead.
        assert!((hundred - (116.0 * 8.0 / 38_400.0)).abs() < 1e-12);
    }

    #[test]
    fn with_range_and_with_loss_override_fields() {
        let c = RadioConfig::with_range(10.0).with_loss(LossModel::bernoulli(0.1));
        assert_eq!(c.range_m, 10.0);
        assert_eq!(c.loss.drop_probability(), 0.1);
        assert_eq!(c.bitrate_bps, RadioConfig::paper_default().bitrate_bps);
    }

    #[test]
    fn loss_model_probabilities() {
        assert_eq!(LossModel::Reliable.drop_probability(), 0.0);
        assert_eq!(LossModel::default(), LossModel::Reliable);
        assert_eq!(LossModel::bernoulli(0.25).drop_probability(), 0.25);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_drop_probability_is_rejected() {
        let _ = LossModel::bernoulli(1.5);
    }
}
