//! Radio and channel model.
//!
//! The paper configures all nodes with a uniform transmission range of
//! ≈6.77 m and simulates the channel with the free-space propagation model
//! (§7.1): every node within range of a transmitter hears the transmission,
//! nodes outside the range hear nothing. Packet loss, when enabled, is an
//! independent Bernoulli drop per receiver — the paper assumes reliable
//! messages but observes that "modest violation of this assumption … did not
//! effect accuracy significantly", and the accuracy experiments exercise
//! exactly that.

/// Per-receiver packet loss model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No losses: every in-range receiver gets every packet (the paper's
    /// baseline assumption).
    #[default]
    Reliable,
    /// Each in-range receiver independently drops the packet with the given
    /// probability.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        drop_probability: f64,
    },
    /// Bursty correlated loss: each directed link runs a two-state
    /// Gilbert–Elliott Markov chain (good ↔ bad), advanced once per
    /// transmission computed on that link, with a state-dependent drop
    /// probability. Losses cluster in time — the failure mode i.i.d.
    /// Bernoulli loss cannot model.
    GilbertElliott {
        /// Per-transmission probability of moving good → bad.
        p_good_to_bad: f64,
        /// Per-transmission probability of moving bad → good.
        p_bad_to_good: f64,
        /// Drop probability while the link is in the good state.
        drop_good: f64,
        /// Drop probability while the link is in the bad state.
        drop_bad: f64,
    },
}

impl LossModel {
    /// Creates a Bernoulli loss model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn bernoulli(drop_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_probability), "drop probability must be in [0, 1]");
        LossModel::Bernoulli { drop_probability }
    }

    /// Creates a Gilbert–Elliott bursty loss model.
    ///
    /// # Panics
    ///
    /// Panics if any of the four probabilities is outside `[0, 1]`.
    pub fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        drop_good: f64,
        drop_bad: f64,
    ) -> Self {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("drop_good", drop_good),
            ("drop_bad", drop_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, drop_good, drop_bad }
    }

    /// The (steady-state) drop probability of this model. For the
    /// Gilbert–Elliott chain this is the drop rate weighted by the
    /// stationary distribution of its two states; a chain that never
    /// transitions reports the good-state rate (links start good).
    pub fn drop_probability(&self) -> f64 {
        match self {
            LossModel::Reliable => 0.0,
            LossModel::Bernoulli { drop_probability } => *drop_probability,
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, drop_good, drop_bad } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return *drop_good;
                }
                let bad_fraction = p_good_to_bad / denom;
                drop_good * (1.0 - bad_fraction) + drop_bad * bad_fraction
            }
        }
    }
}

/// Radio configuration shared by every node of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Transmission range in metres (unit-disc propagation).
    pub range_m: f64,
    /// Radio bitrate in bits per second. The Crossbow MICA2 radio the paper's
    /// energy model is based on transmits at 38.4 kbit/s.
    pub bitrate_bps: f64,
    /// Fixed per-packet overhead in bytes (preamble, MAC header, CRC).
    pub overhead_bytes: usize,
    /// Packet loss model applied per receiver.
    pub loss: LossModel,
}

impl RadioConfig {
    /// The configuration matching the paper's setup: 6.77 m range, MICA2
    /// bitrate, a small MAC header, reliable delivery.
    pub fn paper_default() -> Self {
        RadioConfig {
            range_m: 6.77,
            bitrate_bps: 38_400.0,
            overhead_bytes: 16,
            loss: LossModel::Reliable,
        }
    }

    /// Creates a configuration with a custom range, keeping the remaining
    /// paper defaults.
    pub fn with_range(range_m: f64) -> Self {
        RadioConfig { range_m, ..RadioConfig::paper_default() }
    }

    /// Returns a copy with the given loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Airtime in seconds needed to transmit `payload_bytes` of payload plus
    /// the per-packet overhead.
    pub fn airtime_secs(&self, payload_bytes: usize) -> f64 {
        ((payload_bytes + self.overhead_bytes) as f64 * 8.0) / self.bitrate_bps
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_7_1() {
        let c = RadioConfig::paper_default();
        assert!((c.range_m - 6.77).abs() < 1e-12);
        assert_eq!(c.loss, LossModel::Reliable);
        assert_eq!(RadioConfig::default(), c);
    }

    #[test]
    fn airtime_grows_linearly_with_payload() {
        let c = RadioConfig::paper_default();
        let empty = c.airtime_secs(0);
        let hundred = c.airtime_secs(100);
        let two_hundred = c.airtime_secs(200);
        assert!(empty > 0.0, "overhead alone takes air time");
        assert!((two_hundred - hundred) - (hundred - empty) < 1e-12);
        // 100 bytes at 38.4 kbit/s is about 24 ms including overhead.
        assert!((hundred - (116.0 * 8.0 / 38_400.0)).abs() < 1e-12);
    }

    #[test]
    fn with_range_and_with_loss_override_fields() {
        let c = RadioConfig::with_range(10.0).with_loss(LossModel::bernoulli(0.1));
        assert_eq!(c.range_m, 10.0);
        assert_eq!(c.loss.drop_probability(), 0.1);
        assert_eq!(c.bitrate_bps, RadioConfig::paper_default().bitrate_bps);
    }

    #[test]
    fn loss_model_probabilities() {
        assert_eq!(LossModel::Reliable.drop_probability(), 0.0);
        assert_eq!(LossModel::default(), LossModel::Reliable);
        assert_eq!(LossModel::bernoulli(0.25).drop_probability(), 0.25);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_drop_probability_is_rejected() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_steady_state_drop_rate() {
        // Spends 1/3 of its time bad: 2/3 · 0.01 + 1/3 · 0.9 ≈ 0.3067.
        let ge = LossModel::gilbert_elliott(0.1, 0.2, 0.01, 0.9);
        assert!((ge.drop_probability() - (2.0 / 3.0 * 0.01 + 1.0 / 3.0 * 0.9)).abs() < 1e-12);
        // A chain that never transitions stays in its initial good state.
        let frozen = LossModel::gilbert_elliott(0.0, 0.0, 0.05, 1.0);
        assert_eq!(frozen.drop_probability(), 0.05);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_gilbert_elliott_probability_is_rejected() {
        let _ = LossModel::gilbert_elliott(0.1, 1.2, 0.0, 1.0);
    }
}
