//! The Crossbow-mote energy model (§7.1).
//!
//! The paper charges radio activity using the Crossbow MPR mote hardware
//! specification: 0.0159 W while transmitting, 0.021 W while receiving and
//! 3 µW while idle, assuming a 3 V supply. Energy is what every figure of the
//! evaluation reports, so the accounting here is the measurement instrument
//! of the whole reproduction.

/// Radio power draw in each state, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power drawn while transmitting, in watts.
    pub tx_power_w: f64,
    /// Power drawn while receiving, in watts.
    pub rx_power_w: f64,
    /// Power drawn while idle, in watts.
    pub idle_power_w: f64,
}

impl EnergyModel {
    /// The Crossbow mote numbers used in the paper (§7.1): transmit 0.0159 W,
    /// receive 0.021 W, idle 3 µW, at a 3 V supply.
    pub fn crossbow_mote() -> Self {
        EnergyModel { tx_power_w: 0.0159, rx_power_w: 0.021, idle_power_w: 3e-6 }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if any power value is negative or not finite.
    pub fn new(tx_power_w: f64, rx_power_w: f64, idle_power_w: f64) -> Self {
        for (name, v) in [("tx", tx_power_w), ("rx", rx_power_w), ("idle", idle_power_w)] {
            assert!(v.is_finite() && v >= 0.0, "{name} power must be finite and non-negative");
        }
        EnergyModel { tx_power_w, rx_power_w, idle_power_w }
    }

    /// Energy in joules for transmitting for `duration_secs` seconds.
    pub fn tx_energy(&self, duration_secs: f64) -> f64 {
        self.tx_power_w * duration_secs
    }

    /// Energy in joules for receiving for `duration_secs` seconds.
    pub fn rx_energy(&self, duration_secs: f64) -> f64 {
        self.rx_power_w * duration_secs
    }

    /// Energy in joules for idling for `duration_secs` seconds.
    pub fn idle_energy(&self, duration_secs: f64) -> f64 {
        self.idle_power_w * duration_secs
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::crossbow_mote()
    }
}

/// Accumulated energy usage of one node, broken down by radio activity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Joules spent transmitting.
    pub tx_joules: f64,
    /// Joules spent receiving.
    pub rx_joules: f64,
    /// Joules spent idle.
    pub idle_joules: f64,
}

impl EnergyReport {
    /// Total joules consumed.
    pub fn total(&self) -> f64 {
        self.tx_joules + self.rx_joules + self.idle_joules
    }

    /// Adds another report into this one.
    pub fn accumulate(&mut self, other: &EnergyReport) {
        self.tx_joules += other.tx_joules;
        self.rx_joules += other.rx_joules;
        self.idle_joules += other.idle_joules;
    }

    /// Element-wise difference (`self − other`), useful for per-round deltas.
    pub fn delta_since(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            tx_joules: self.tx_joules - other.tx_joules,
            rx_joules: self.rx_joules - other.rx_joules,
            idle_joules: self.idle_joules - other.idle_joules,
        }
    }
}

/// A per-node energy meter that the simulator charges as the radio is used.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    report: EnergyReport,
}

impl EnergyMeter {
    /// Creates a meter with no consumption recorded.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges a transmission of the given duration.
    pub fn charge_tx(&mut self, model: &EnergyModel, duration_secs: f64) {
        self.report.tx_joules += model.tx_energy(duration_secs);
    }

    /// Charges a reception of the given duration.
    pub fn charge_rx(&mut self, model: &EnergyModel, duration_secs: f64) {
        self.report.rx_joules += model.rx_energy(duration_secs);
    }

    /// Charges idle time of the given duration.
    pub fn charge_idle(&mut self, model: &EnergyModel, duration_secs: f64) {
        self.report.idle_joules += model.idle_energy(duration_secs);
    }

    /// The accumulated energy report.
    pub fn report(&self) -> EnergyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbow_numbers_match_the_paper() {
        let m = EnergyModel::crossbow_mote();
        assert_eq!(m.tx_power_w, 0.0159);
        assert_eq!(m.rx_power_w, 0.021);
        assert_eq!(m.idle_power_w, 3e-6);
        assert_eq!(EnergyModel::default(), m);
    }

    #[test]
    fn receive_costs_more_than_transmit_per_second() {
        // A perhaps-surprising property of the Crossbow radio the paper uses:
        // listening is more expensive than talking.
        let m = EnergyModel::crossbow_mote();
        assert!(m.rx_energy(1.0) > m.tx_energy(1.0));
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = EnergyModel::new(0.1, 0.2, 0.001);
        assert!((m.tx_energy(2.0) - 0.2).abs() < 1e-12);
        assert!((m.rx_energy(0.5) - 0.1).abs() < 1e-12);
        assert!((m.idle_energy(100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_is_rejected() {
        let _ = EnergyModel::new(-0.1, 0.2, 0.0);
    }

    #[test]
    fn meter_accumulates_by_activity() {
        let m = EnergyModel::new(1.0, 2.0, 0.5);
        let mut meter = EnergyMeter::new();
        meter.charge_tx(&m, 1.0);
        meter.charge_tx(&m, 1.0);
        meter.charge_rx(&m, 3.0);
        meter.charge_idle(&m, 2.0);
        let r = meter.report();
        assert_eq!(r.tx_joules, 2.0);
        assert_eq!(r.rx_joules, 6.0);
        assert_eq!(r.idle_joules, 1.0);
        assert_eq!(r.total(), 9.0);
    }

    #[test]
    fn report_accumulate_and_delta() {
        let a = EnergyReport { tx_joules: 1.0, rx_joules: 2.0, idle_joules: 3.0 };
        let mut b = EnergyReport::default();
        b.accumulate(&a);
        b.accumulate(&a);
        assert_eq!(b.total(), 12.0);
        let d = b.delta_since(&a);
        assert_eq!(d.tx_joules, 1.0);
        assert_eq!(d.rx_joules, 2.0);
        assert_eq!(d.idle_joules, 3.0);
    }
}
