//! # wsn-netsim
//!
//! A discrete-event wireless sensor network simulator — the substrate that
//! replaces the SENSE simulator used in *In-Network Outlier Detection in
//! Wireless Sensor Networks* (Branch et al., ICDCS 2006). See DESIGN.md §4
//! for the substitution rationale.
//!
//! The simulator reproduces the modelling choices the paper states in §7.1:
//!
//! * free-space (unit-disc) signal propagation with a uniform transmission
//!   range of ≈6.77 m ([`radio`]),
//! * broadcast transmission with promiscuous listening for the distributed
//!   algorithms, unicast forwarding for the centralized baseline ([`mac`],
//!   [`sim`]),
//! * the Crossbow-mote energy model — 0.0159 W transmit, 0.021 W receive,
//!   3 µW idle at 3 V ([`energy`]),
//! * an AODV-style multi-hop routing layer with end-to-end acknowledgements
//!   for the centralized baseline ([`routing`]),
//! * optional packet loss, i.i.d. or bursty ([`radio::LossModel`]),
//! * scheduled node churn and radio duty-cycling ([`fault`]), and
//! * per-node energy / traffic statistics ([`stats`]).
//!
//! Protocols are written against the [`sim::Application`] trait: the
//! simulator owns one application instance per sensor, delivers timer and
//! message events to it, and charges every transmission and reception to the
//! energy model.
//!
//! # Example
//!
//! ```
//! use wsn_data::lab::{LabDeployment, PAPER_TRANSMISSION_RANGE_M};
//! use wsn_netsim::topology::Topology;
//!
//! let deployment = LabDeployment::standard(7);
//! let topo = Topology::from_deployment(&deployment, PAPER_TRANSMISSION_RANGE_M);
//! assert!(topo.is_connected());
//! assert!(topo.diameter() > 1, "the lab network is multi-hop");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod event;
pub mod fault;
pub mod mac;
pub mod packet;
pub mod radio;
pub mod region;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod topology;

pub use energy::{EnergyModel, EnergyReport};
pub use event::{EventKey, EventQueue};
pub use fault::{DutyCycle, FaultAction, FaultEvent, FaultPlan};
pub use radio::{LossModel, RadioConfig};
pub use region::{AnySimulator, Partition, PartitionedSimulator, SimBackend, SimHandle};
pub use sim::{Application, NodeContext, SimConfig, Simulator};
pub use stats::{NetworkStats, NodeStats};
pub use topology::Topology;
