//! A std-only fixed-size worker pool.
//!
//! The pool has two independent customers in this workspace, which is why it
//! lives in its own leaf crate (below `wsn-netsim` *and* `wsn-bench` in the
//! dependency order):
//!
//! * **Sweep sharding** (`wsn_bench::sweep`). The paper's figures are grids
//!   of `(configuration, seed)` cells, each an independent simulation. The
//!   first parallel implementation spawned one thread per seed per cell,
//!   which serialises the grid and oversubscribes the machine as soon as the
//!   seed count exceeds the core count. [`WorkerPool`] replaces that: a
//!   fixed set of worker threads created once and shared across an entire
//!   sweep grid, so the machine runs exactly `size` simulations at a time.
//! * **Region execution** (`wsn_netsim::region`). The spatially partitioned
//!   simulator runs every region's event window of an epoch as one pool job
//!   and joins them at the epoch barrier.
//!
//! Results are returned through [`JobHandle`]s, so callers collect them in
//! whatever order they submitted — the pool's scheduling never influences
//! the aggregated output. `wsn_bench::sweep::run_averaged` is proven
//! bit-identical to its sequential reference implementation by an equality
//! test, and `tests/property_partitioned_sim.rs` proves the same for the
//! partitioned simulator.
//!
//! One rule: a job must never block on the [`JobHandle`] of another job of
//! the same pool (a worker waiting on work only a busy worker can do is a
//! deadlock). The sweep code satisfies this trivially — jobs are whole
//! simulations and only the submitting (non-worker) thread joins. The
//! partitioned simulator satisfies it by giving every simulator a dedicated
//! pool: its epoch jobs never land on the pool the sweep layer joins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_available: Condvar,
}

/// A fixed-size pool of worker threads executing submitted jobs in FIFO
/// order.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with exactly `size` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or a worker thread cannot be spawned.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "a worker pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            work_available: Condvar::new(),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wsn-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn a pool worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs submitted but not yet picked up by a worker.
    pub fn queued_jobs(&self) -> usize {
        self.shared.state.lock().expect("pool lock poisoned").queue.len()
    }

    /// Submits a job and returns the handle its result will arrive on.
    ///
    /// Jobs run in submission order as workers free up; the handle's
    /// [`JobHandle::join`] blocks until this job finished (re-raising its
    /// panic, if it panicked).
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(JobSlot { result: Mutex::new(None), done: Condvar::new() });
        let completion = Arc::clone(&slot);
        let boxed: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            *completion.result.lock().expect("job slot lock poisoned") = Some(result);
            completion.done.notify_all();
        });
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.queue.push_back(boxed);
        }
        self.shared.work_available.notify_one();
        JobHandle { slot }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Let the workers drain the queue, then exit.
        self.shared.state.lock().expect("pool lock poisoned").shutdown = true;
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({} workers, {} queued)", self.size(), self.queued_jobs())
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_available.wait(state).expect("pool lock poisoned");
            }
        };
        job();
    }
}

struct JobSlot<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// The receiving end of one submitted job.
#[must_use = "dropping a JobHandle discards the job's result"]
pub struct JobHandle<T> {
    slot: Arc<JobSlot<T>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job completed and returns its result. If the job
    /// panicked, the panic is resumed on the calling thread (mirroring
    /// [`std::thread::JoinHandle::join`] + unwrap, which the thread-per-seed
    /// implementation used).
    pub fn join(self) -> T {
        let mut guard = self.slot.result.lock().expect("job slot lock poisoned");
        while guard.is_none() {
            guard = self.slot.done.wait(guard).expect("job slot lock poisoned");
        }
        match guard.take().expect("checked above") {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// The default pool size: one worker per available hardware thread.
pub fn default_size() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool shared by every sweep of a figure binary, created
/// lazily with [`default_size`] workers. All `(configuration, seed)` cells
/// of a grid funnel through this one pool, which is what bounds the
/// process's simulation concurrency.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(default_size()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_on_the_right_handles_in_submission_order() {
        let pool = WorkerPool::new(3);
        let handles: Vec<JobHandle<usize>> = (0..32).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<usize> = handles.into_iter().map(JobHandle::join).collect();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<JobHandle<()>> = (0..100)
            .map(|_| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn queued_jobs_drain_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                // Handles dropped: results discarded, jobs still run.
                let _ = pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // Drop joins the workers after the queue drained.
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panics_propagate_to_join() {
        let pool = WorkerPool::new(1);
        let bad = pool.submit(|| panic!("job exploded"));
        let good = pool.submit(|| 7);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join())).is_err());
        // The worker survives a panicking job.
        assert_eq!(good.join(), 7);
    }

    #[test]
    fn pool_introspection() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.size(), 2);
        assert!(format!("{pool:?}").contains("2 workers"));
        assert!(default_size() >= 1);
        assert!(global().size() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_sized_pools_are_rejected() {
        let _ = WorkerPool::new(0);
    }
}
