//! The streaming (window-slide) experiment driver.
//!
//! [`crate::experiment::run_experiment`] judges a protocol once, at the end
//! of a batch — the paper's evaluation mode. A deployed network is never in
//! that state: data keeps arriving, the window keeps sliding, and what
//! matters is how the protocol tracks the moving answer *while it runs*.
//! [`StreamingExperiment`] drives the same simulator continuously and
//! evaluates at **every window slide** (every sampling round):
//!
//! * a per-slide [`AccuracyReport`] against the slide's own ground truth
//!   `O_n` (recomputed over what the nodes hold at that instant),
//! * a per-slide [`LabelReport`] (precision/recall against the injected
//!   ground-truth labels of `wsn-workload` scenarios),
//! * whether the estimates currently agree ([`estimates_agree`], Theorem 1's
//!   property — the convergence-latency clock), and
//! * the slide's marginal cost: packets, bytes, protocol data points and
//!   per-node TX/RX energy spent since the previous slide.
//!
//! The driver accepts any [`DeploymentTrace`] — synthetic, a `wsn-workload`
//! scenario, or a replayed Intel trace — and any [`AlgorithmConfig`]
//! (global, semi-global, centralized).
//!
//! # Crash safety
//!
//! [`StreamingExperiment::checkpoint_every_slides`] makes the driver write
//! an atomic, checksummed snapshot of every node's canonical state (plus the
//! slide reports, delta baseline and fault-plan cursor) every `k` slides;
//! [`StreamingExperiment::resume_from`] picks a killed run back up from the
//! latest checkpoint. Because the whole simulation is deterministic (seeded
//! RNG, intrinsic event order), the resume path **replays** the simulation
//! up to the checkpoint slide — which reconstructs transport state
//! (schedules, in-flight messages, AODV routes) exactly — then validates
//! the replayed detector state against the snapshot bit-for-bit and
//! installs the snapshot through the live restore path. A resumed run
//! therefore continues *bit-for-bit identical* to one that was never
//! stopped, on either backend, under any fault plan; a torn or mismatched
//! checkpoint is refused with a typed [`PersistError`], never loaded.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::app::{DetectorApp, SamplingSchedule, ScheduleDriven};
use crate::centralized::CentralizedApp;
use crate::detector::OutlierDetector;
use crate::error::CoreError;
use crate::experiment::{AlgorithmConfig, AnyDetector, ExperimentConfig, FaultDriver};
use crate::global::GlobalNode;
use crate::metrics::{estimates_agree, paired_truths, AccuracyReport, LabelReport};
use crate::persist::{self, PersistError};
use crate::semiglobal::SemiGlobalNode;
use wsn_data::impute::WindowMeanImputer;
use wsn_data::lab::LabDeployment;
use wsn_data::stream::{DeploymentTrace, SensorStream};
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, HopCount, PointKey, SensorId, Timestamp};
use wsn_json::JsonValue;
use wsn_netsim::radio::RadioConfig;
use wsn_netsim::region::{AnySimulator, SimHandle};
use wsn_netsim::sim::{Application, SimConfig};
use wsn_netsim::stats::NetworkStats;
use wsn_netsim::topology::Topology;
use wsn_ranking::{OutlierEstimate, RankingFunction};

/// What the streaming driver needs to read off a running application at
/// every slide, over and above [`Application`].
trait StreamingProbe {
    /// The node's current outlier estimate.
    fn streaming_estimate(&self) -> OutlierEstimate;
    /// The node's own current data `D_i` (what the ground truth is over).
    fn streaming_own_points(&self, id: SensorId) -> Vec<DataPoint>;
    /// Cumulative protocol data points this node has broadcast.
    fn streaming_points_sent(&self) -> u64;
    /// The node's canonical persisted state (see [`crate::persist`]).
    fn persist_snapshot(&self) -> JsonValue;
    /// Installs a snapshot previously taken by
    /// [`StreamingProbe::persist_snapshot`].
    fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError>;
}

impl StreamingProbe for DetectorApp<AnyDetector> {
    fn streaming_estimate(&self) -> OutlierEstimate {
        self.detector().estimate()
    }

    fn streaming_own_points(&self, id: SensorId) -> Vec<DataPoint> {
        self.detector().held_points().iter().filter(|p| p.key.origin == id).cloned().collect()
    }

    fn streaming_points_sent(&self) -> u64 {
        self.detector().points_sent()
    }

    fn persist_snapshot(&self) -> JsonValue {
        self.detector().persist_snapshot()
    }

    fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError> {
        self.detector_mut().persist_restore(dump)
    }
}

impl StreamingProbe for CentralizedApp<Arc<dyn RankingFunction>> {
    fn streaming_estimate(&self) -> OutlierEstimate {
        self.estimate()
    }

    fn streaming_own_points(&self, _id: SensorId) -> Vec<DataPoint> {
        self.local_window().to_vec()
    }

    fn streaming_points_sent(&self) -> u64 {
        0 // the centralized baseline ships windows, not protocol points
    }

    fn persist_snapshot(&self) -> JsonValue {
        CentralizedApp::persist_snapshot(self)
    }

    fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError> {
        CentralizedApp::persist_restore(self, dump)
    }
}

/// The measurements taken at one window slide.
#[derive(Debug, Clone, PartialEq)]
pub struct SlideReport {
    /// The slide (= sampling round) index, starting at 0.
    pub slide: usize,
    /// Simulation time at which the slide was evaluated (just before the
    /// next round's first sample).
    pub at: Timestamp,
    /// Number of points currently held across all nodes' own windows.
    pub window_points: usize,
    /// Per-node accuracy against this slide's ground truth `O_n`.
    pub accuracy: AccuracyReport,
    /// Per-node precision/recall against the injected ground-truth labels
    /// currently in scope.
    pub labels: LabelReport,
    /// Whether every node's estimate agreed with every other node's at this
    /// slide (global/centralized; for the semi-global algorithm, whether
    /// every node matched its own `d`-hop ground truth).
    pub estimates_agree: bool,
    /// Packets transmitted network-wide since the previous slide.
    pub packets_delta: u64,
    /// Payload bytes transmitted network-wide since the previous slide.
    pub bytes_delta: u64,
    /// Protocol data points broadcast since the previous slide (zero for
    /// the centralized baseline).
    pub data_points_delta: u64,
    /// Average per-node transmit energy spent this slide, in joules.
    pub avg_tx_energy_delta: f64,
    /// Average per-node receive energy spent this slide, in joules.
    pub avg_rx_energy_delta: f64,
}

/// Cumulative totals used to derive per-slide deltas.
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    packets: u64,
    bytes: u64,
    tx_joules: f64,
    rx_joules: f64,
    data_points: u64,
}

impl Totals {
    fn of(stats: &NetworkStats, data_points: u64) -> Totals {
        Totals {
            packets: stats.total_packets_sent(),
            bytes: stats.total_bytes_sent(),
            tx_joules: stats.tx_energy_per_node().iter().sum(),
            rx_joules: stats.rx_energy_per_node().iter().sum(),
            data_points,
        }
    }

    fn to_json(self) -> JsonValue {
        JsonValue::Object(vec![
            ("packets".into(), JsonValue::from(self.packets)),
            ("bytes".into(), JsonValue::from(self.bytes)),
            ("tx_joules".into(), JsonValue::Number(self.tx_joules)),
            ("rx_joules".into(), JsonValue::Number(self.rx_joules)),
            ("data_points".into(), JsonValue::from(self.data_points)),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Totals, PersistError> {
        Ok(Totals {
            packets: persist::u64_field(value, "packets")?,
            bytes: persist::u64_field(value, "bytes")?,
            tx_joules: persist::f64_field(value, "tx_joules")?,
            rx_joules: persist::f64_field(value, "rx_joules")?,
            data_points: persist::u64_field(value, "data_points")?,
        })
    }
}

fn accuracy_to_json(report: &AccuracyReport) -> JsonValue {
    JsonValue::Object(vec![
        ("total_nodes".into(), JsonValue::from(report.total_nodes)),
        ("correct_nodes".into(), JsonValue::from(report.correct_nodes)),
        ("incorrect".into(), persist::ids_to_json(report.incorrect.iter().copied())),
        ("missing".into(), persist::ids_to_json(report.missing.iter().copied())),
        ("recall_sum".into(), JsonValue::Number(report.recall_sum)),
    ])
}

fn accuracy_from_json(value: &JsonValue) -> Result<AccuracyReport, PersistError> {
    Ok(AccuracyReport {
        total_nodes: persist::usize_field(value, "total_nodes")?,
        correct_nodes: persist::usize_field(value, "correct_nodes")?,
        incorrect: persist::ids_from_json(persist::field(value, "incorrect")?)?,
        missing: persist::ids_from_json(persist::field(value, "missing")?)?,
        recall_sum: persist::f64_field(value, "recall_sum")?,
    })
}

fn labels_to_json(report: &LabelReport) -> JsonValue {
    JsonValue::Object(vec![
        ("total_nodes".into(), JsonValue::from(report.total_nodes)),
        ("labelled_nodes".into(), JsonValue::from(report.labelled_nodes)),
        ("precision_sum".into(), JsonValue::Number(report.precision_sum)),
        ("recall_sum".into(), JsonValue::Number(report.recall_sum)),
    ])
}

fn labels_from_json(value: &JsonValue) -> Result<LabelReport, PersistError> {
    Ok(LabelReport {
        total_nodes: persist::usize_field(value, "total_nodes")?,
        labelled_nodes: persist::usize_field(value, "labelled_nodes")?,
        precision_sum: persist::f64_field(value, "precision_sum")?,
        recall_sum: persist::f64_field(value, "recall_sum")?,
    })
}

fn slide_to_json(slide: &SlideReport) -> JsonValue {
    JsonValue::Object(vec![
        ("slide".into(), JsonValue::from(slide.slide)),
        ("at".into(), JsonValue::from(slide.at.as_micros())),
        ("window_points".into(), JsonValue::from(slide.window_points)),
        ("accuracy".into(), accuracy_to_json(&slide.accuracy)),
        ("labels".into(), labels_to_json(&slide.labels)),
        ("estimates_agree".into(), JsonValue::from(slide.estimates_agree)),
        ("packets_delta".into(), JsonValue::from(slide.packets_delta)),
        ("bytes_delta".into(), JsonValue::from(slide.bytes_delta)),
        ("data_points_delta".into(), JsonValue::from(slide.data_points_delta)),
        ("avg_tx_energy_delta".into(), JsonValue::Number(slide.avg_tx_energy_delta)),
        ("avg_rx_energy_delta".into(), JsonValue::Number(slide.avg_rx_energy_delta)),
    ])
}

fn slide_from_json(value: &JsonValue) -> Result<SlideReport, PersistError> {
    Ok(SlideReport {
        slide: persist::usize_field(value, "slide")?,
        at: Timestamp::from_micros(persist::u64_field(value, "at")?),
        window_points: persist::usize_field(value, "window_points")?,
        accuracy: accuracy_from_json(persist::field(value, "accuracy")?)?,
        labels: labels_from_json(persist::field(value, "labels")?)?,
        estimates_agree: persist::bool_field(value, "estimates_agree")?,
        packets_delta: persist::u64_field(value, "packets_delta")?,
        bytes_delta: persist::u64_field(value, "bytes_delta")?,
        data_points_delta: persist::u64_field(value, "data_points_delta")?,
        avg_tx_energy_delta: persist::f64_field(value, "avg_tx_energy_delta")?,
        avg_rx_energy_delta: persist::f64_field(value, "avg_rx_energy_delta")?,
    })
}

/// Where and how often the slide loop writes checkpoints.
struct CheckpointCtx {
    every: usize,
    dir: PathBuf,
    config_hash: u64,
}

/// Everything a checkpoint holds, parsed and validated, ready to install.
struct ResumeState {
    /// The next round to run (the checkpoint was taken after `cursor`
    /// slides completed).
    cursor: usize,
    /// The fault-plan cursor at checkpoint time.
    fault_cursor: usize,
    /// Simulation time at checkpoint time.
    at: Timestamp,
    /// Slide reports produced before the checkpoint.
    slides: Vec<SlideReport>,
    /// The delta baseline the next slide subtracts from.
    previous: Totals,
    /// The convergence latency, if reached before the checkpoint.
    convergence: Option<usize>,
    /// Per-node canonical state dumps.
    nodes: BTreeMap<SensorId, JsonValue>,
}

/// Reads and preflight-validates `dir/checkpoint.json` against the live
/// configuration: file header (format, version, checksum) via
/// [`persist::read_verified`], payload kind, and the configuration hash.
fn load_checkpoint(dir: &Path, config: &ExperimentConfig) -> Result<ResumeState, CoreError> {
    let path = dir.join("checkpoint.json");
    let (kind, payload) = persist::read_verified(&path)?;
    if kind != "checkpoint" {
        return Err(PersistError::Mismatch(format!(
            "expected a checkpoint file, found kind \"{kind}\""
        ))
        .into());
    }
    let stored_hash = persist::u64_field(&payload, "config_hash")?;
    let live_hash = persist::config_hash(config);
    if stored_hash != live_hash {
        return Err(PersistError::Mismatch(format!(
            "checkpoint was written by configuration {stored_hash:#x}, this run is {live_hash:#x}"
        ))
        .into());
    }
    let slides = persist::array_field(&payload, "slides")?
        .iter()
        .map(slide_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let mut nodes = BTreeMap::new();
    for entry in persist::array_field(&payload, "nodes")? {
        match entry.as_array() {
            Some([id, dump]) => {
                let id = id
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| PersistError::Schema("node entry id is not a u32".into()))?;
                nodes.insert(SensorId(id), dump.clone());
            }
            _ => {
                return Err(
                    PersistError::Schema("node entry is not an [id, dump] pair".into()).into()
                )
            }
        }
    }
    Ok(ResumeState {
        cursor: persist::usize_field(&payload, "cursor")?,
        fault_cursor: persist::usize_field(&payload, "fault_cursor")?,
        at: Timestamp::from_micros(persist::u64_field(&payload, "at")?),
        slides,
        previous: Totals::from_json(persist::field(&payload, "previous")?)?,
        convergence: persist::opt_u64_field(&payload, "convergence")?.map(|v| v as usize),
        nodes,
    })
}

/// The full time series a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingOutcome {
    /// The plot label of the algorithm that ran.
    pub label: String,
    /// One report per window slide, in time order.
    pub slides: Vec<SlideReport>,
    /// The first slide at which the estimates agreed (see
    /// [`SlideReport::estimates_agree`]) — the convergence latency in
    /// slides, `None` if they never did.
    pub convergence_latency_slides: Option<usize>,
    /// Whether the protocol reached quiescence after the last sample — the
    /// "quiescent tail": once injection (and sampling) stops, the chatter
    /// must die out before the deadline.
    pub quiescent_tail: bool,
    /// Link and energy statistics of the whole run (including the tail).
    pub final_stats: NetworkStats,
    /// Total protocol data points broadcast over the whole run.
    pub data_points_sent: u64,
    /// Number of sensors simulated.
    pub node_count: usize,
    /// Number of sampling rounds (= slides) simulated.
    pub rounds: usize,
}

impl StreamingOutcome {
    /// Mean, over slides, of the per-slide exact-match accuracy.
    pub fn mean_slide_accuracy(&self) -> f64 {
        self.mean_over_slides(|s| s.accuracy.accuracy())
    }

    /// Mean, over slides, of the per-slide label precision.
    pub fn mean_label_precision(&self) -> f64 {
        self.mean_over_slides(|s| s.labels.mean_precision())
    }

    /// Mean, over slides, of the per-slide label recall.
    pub fn mean_label_recall(&self) -> f64 {
        self.mean_over_slides(|s| s.labels.mean_recall())
    }

    /// Fraction of slides at which the estimates agreed.
    pub fn agreement_rate(&self) -> f64 {
        self.mean_over_slides(|s| if s.estimates_agree { 1.0 } else { 0.0 })
    }

    /// Average per-node transmit energy per slide, in joules.
    pub fn avg_tx_per_node_per_slide(&self) -> f64 {
        self.per_node_per_slide(self.final_stats.tx_energy_summary().avg)
    }

    /// Average per-node receive energy per slide, in joules.
    pub fn avg_rx_per_node_per_slide(&self) -> f64 {
        self.per_node_per_slide(self.final_stats.rx_energy_summary().avg)
    }

    /// The last slide's report, if any slides ran.
    pub fn final_slide(&self) -> Option<&SlideReport> {
        self.slides.last()
    }

    fn mean_over_slides(&self, f: impl Fn(&SlideReport) -> f64) -> f64 {
        if self.slides.is_empty() {
            return 1.0;
        }
        self.slides.iter().map(f).sum::<f64>() / self.slides.len() as f64
    }

    fn per_node_per_slide(&self, per_node_total: f64) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            per_node_total / self.rounds as f64
        }
    }
}

/// A continuously evaluated experiment: the streaming counterpart of
/// [`crate::experiment::run_experiment`].
#[derive(Debug, Clone)]
pub struct StreamingExperiment {
    config: ExperimentConfig,
    /// `(every, dir)`: write a checkpoint into `dir` every `every` slides.
    checkpoint: Option<(usize, PathBuf)>,
    /// Resume from the checkpoint in this directory before running.
    resume: Option<PathBuf>,
}

impl StreamingExperiment {
    /// Wraps an experiment configuration for streaming evaluation.
    pub fn new(config: ExperimentConfig) -> Self {
        StreamingExperiment { config, checkpoint: None, resume: None }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Writes a crash-safe checkpoint (`checkpoint.json`, atomic +
    /// checksummed; see [`crate::persist`]) into `dir` every `every` slides:
    /// all node state, the slide reports so far, the delta baseline and the
    /// fault-plan cursor. A run killed at any point can then be picked up
    /// with [`StreamingExperiment::resume_from`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn checkpoint_every_slides(mut self, every: usize, dir: impl Into<PathBuf>) -> Self {
        assert!(every > 0, "the checkpoint cadence must be at least one slide");
        self.checkpoint = Some((every, dir.into()));
        self
    }

    /// Resumes from the latest checkpoint in `dir` instead of starting at
    /// slide 0: the simulation is replayed (deterministically) up to the
    /// checkpoint slide, the replayed node state is validated against the
    /// snapshot, the snapshot is installed, and the run continues
    /// bit-for-bit as if it had never stopped. A torn, corrupt, or
    /// mismatched checkpoint fails with [`CoreError::Persist`] before any
    /// state is touched.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume = Some(dir.into());
        self
    }

    /// Generates the configured deployment and synthetic trace (exactly as
    /// [`crate::experiment::run_experiment`] would) and streams it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid parameters,
    /// [`CoreError::DisconnectedNetwork`] for a disconnected layout, and
    /// propagates trace-generation errors.
    pub fn run(&self) -> Result<StreamingOutcome, CoreError> {
        self.config.validate()?;
        let deployment = LabDeployment::with_sensor_count(
            self.config.sensor_count,
            self.config.deployment_seed,
        )?;
        let trace = deployment.generate_trace(&self.config.trace, self.config.trace_seed)?;
        self.run_on_trace(&trace)
    }

    /// Streams an explicit trace — a `wsn-workload` scenario, a replayed
    /// Intel trace, anything. The trace supplies the sensors (positions and
    /// count), the sampling interval and the number of rounds; the
    /// configuration supplies everything else (algorithm, `w`, `n`, radio
    /// range, loss model, seeds).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the trace is empty and
    /// [`CoreError::DisconnectedNetwork`] if the trace's sensor layout is
    /// not connected at the configured radio range.
    pub fn run_on_trace(&self, trace: &DeploymentTrace) -> Result<StreamingOutcome, CoreError> {
        let config = &self.config;
        config.validate()?;
        // Preflight the checkpoint before any simulation work: a torn file
        // or a different experiment's state must fail fast, untouched.
        let resume_state =
            self.resume.as_deref().map(|dir| load_checkpoint(dir, config)).transpose()?;
        let persist_ctx = self.checkpoint.as_ref().map(|(every, dir)| CheckpointCtx {
            every: *every,
            dir: dir.clone(),
            config_hash: persist::config_hash(config),
        });
        // Nodes whose first fault event is a join start outside the network;
        // the fault driver adds them when their time comes.
        let absent = config
            .fault_plan
            .as_ref()
            .map(wsn_netsim::fault::FaultPlan::initially_absent)
            .unwrap_or_default();
        let specs: Vec<wsn_data::stream::SensorSpec> =
            trace.sensor_specs().into_iter().filter(|s| !absent.contains(&s.id)).collect();
        let rounds = trace.round_count();
        if specs.is_empty() || rounds == 0 {
            return Err(CoreError::InvalidConfig(
                "a streaming run needs at least one sensor and one round".into(),
            ));
        }
        let topology = Topology::from_specs(&specs, config.transmission_range_m);
        if !topology.is_connected() {
            return Err(CoreError::DisconnectedNetwork);
        }
        let labels: BTreeSet<PointKey> = trace.anomaly_keys().into_iter().collect();
        let mut imputed = trace.clone();
        WindowMeanImputer::new(config.window_samples as usize).impute_trace(&mut imputed);

        let interval = trace.sample_interval_secs;
        let window = WindowConfig::from_samples(config.window_samples, interval)?;
        let schedule = SamplingSchedule::new(interval, rounds);
        let sim_config = SimConfig {
            radio: RadioConfig::with_range(config.transmission_range_m).with_loss(config.loss),
            seed: config.sim_seed,
            ..Default::default()
        };
        let ranking = config.algorithm.ranking().build();
        // The same settling margin run_experiment's deadline allows.
        let deadline = Timestamp::from_secs_f64(interval * (rounds as f64 + 2.0) + 600.0);

        let stream_for = |id: SensorId| -> SensorStream {
            imputed.stream(id).ok().cloned().unwrap_or_else(|| SensorStream::new(specs[0]))
        };

        match config.algorithm {
            AlgorithmConfig::Global { .. } | AlgorithmConfig::SemiGlobal { .. } => {
                let hop_diameter = match config.algorithm {
                    AlgorithmConfig::SemiGlobal { hop_diameter, .. } => Some(hop_diameter),
                    _ => None,
                };
                let make_app = |id: SensorId| {
                    let detector = match hop_diameter {
                        None => AnyDetector::Global(GlobalNode::new(
                            id,
                            ranking.clone(),
                            config.n,
                            window,
                        )),
                        Some(d) => AnyDetector::SemiGlobal(SemiGlobalNode::new(
                            id,
                            ranking.clone(),
                            config.n,
                            d,
                            window,
                        )),
                    };
                    let detector = match config.liveness_timeout_secs {
                        Some(t) => detector.with_liveness_timeout(t),
                        None => detector,
                    };
                    DetectorApp::new(detector, stream_for(id), schedule)
                };
                let mut sim: AnySimulator<DetectorApp<AnyDetector>> =
                    crate::app::any_simulator_with_sampling(
                        config.backend,
                        sim_config,
                        topology,
                        &schedule,
                        &make_app,
                    );
                let faults = config.fault_plan.as_ref().map(|plan| {
                    sim.set_duty_cycles(Arc::new(plan.duty_cycles().clone()));
                    FaultDriver::new(plan, &schedule, Box::new(make_app))
                });
                drive(
                    &mut sim,
                    &schedule,
                    &ranking,
                    config.n,
                    hop_diameter,
                    faults,
                    &labels,
                    deadline,
                    config.algorithm.label(),
                    persist_ctx.as_ref(),
                    resume_state,
                )
            }
            AlgorithmConfig::Centralized { .. } => {
                let sink = wsn_data::lab::default_sink(&specs).expect("at least one sensor exists");
                let mut sim: AnySimulator<CentralizedApp<Arc<dyn RankingFunction>>> =
                    crate::app::any_simulator_with_sampling(
                        config.backend,
                        sim_config,
                        topology,
                        &schedule,
                        |id| {
                            CentralizedApp::new(
                                id,
                                sink,
                                ranking.clone(),
                                config.n,
                                window,
                                stream_for(id),
                                schedule,
                            )
                        },
                    );
                drive(
                    &mut sim,
                    &schedule,
                    &ranking,
                    config.n,
                    None,
                    None,
                    &labels,
                    deadline,
                    config.algorithm.label(),
                    persist_ctx.as_ref(),
                    resume_state,
                )
            }
        }
    }
}

/// Runs the slide loop on a built simulator: advance to just before each
/// next sampling round, apply any fault-plan events that are due, snapshot
/// every node, grade over the **live** node set, and account the slide's
/// marginal cost.
#[allow(clippy::too_many_arguments)]
fn drive<A, S>(
    sim: &mut S,
    schedule: &SamplingSchedule,
    ranking: &Arc<dyn RankingFunction>,
    n: usize,
    hop_diameter: Option<HopCount>,
    mut faults: Option<FaultDriver<'_, A>>,
    labels: &BTreeSet<PointKey>,
    deadline: Timestamp,
    label: String,
    persist: Option<&CheckpointCtx>,
    resume: Option<ResumeState>,
) -> Result<StreamingOutcome, CoreError>
where
    A: Application + StreamingProbe + ScheduleDriven,
    S: SimHandle<A>,
{
    let mut slides = Vec::with_capacity(schedule.rounds);
    let mut previous = Totals::default();
    let mut convergence_latency = None;
    let node_count = sim.topology().len();
    let mut start_round = 0usize;
    if let Some(state) = resume {
        // Fast-forward the deterministic simulation through every slide the
        // checkpoint already covers. Fault events are *applied* (not
        // skipped) so the transport layer — routes, duty cycles, membership
        // — is reconstructed exactly; only the collect/grade work is
        // elided. Replay must land every node on the checkpointed detector
        // state byte-for-byte, otherwise the checkpoint belongs to a
        // different run and loading it would silently corrupt the results.
        let _resume_span = wsn_obs::span("resume");
        for round in 0..state.cursor {
            let next_round_start =
                Timestamp::from_secs_f64((round + 1) as f64 * schedule.sample_interval_secs);
            let eval_at = Timestamp::from_micros(next_round_start.as_micros().saturating_sub(1));
            if let Some(driver) = faults.as_mut() {
                driver.apply_through(sim, eval_at);
            }
            sim.run_until(eval_at);
        }
        let fault_cursor = faults.as_ref().map(FaultDriver::cursor).unwrap_or(0);
        if fault_cursor != state.fault_cursor {
            return Err(PersistError::Mismatch(format!(
                "replay applied {fault_cursor} fault events but the checkpoint recorded {}",
                state.fault_cursor
            ))
            .into());
        }
        if sim.now() != state.at {
            return Err(PersistError::Mismatch(format!(
                "replay reached t={} µs but the checkpoint was taken at t={} µs",
                sim.now().as_micros(),
                state.at.as_micros()
            ))
            .into());
        }
        let mut install: Result<(), PersistError> = Ok(());
        let mut seen = 0usize;
        sim.for_each_app_mut(&mut |id, app| {
            if install.is_err() {
                return;
            }
            seen += 1;
            match state.nodes.get(&id) {
                None => {
                    install = Err(PersistError::Mismatch(format!(
                        "live node {id} has no snapshot in the checkpoint"
                    )));
                }
                Some(dump) => {
                    if app.persist_snapshot() != *dump {
                        install = Err(PersistError::Mismatch(format!(
                            "replayed state of node {id} diverges from the checkpoint"
                        )));
                    } else {
                        install = app.persist_restore(dump);
                    }
                }
            }
        });
        install?;
        if seen != state.nodes.len() {
            return Err(PersistError::Mismatch(format!(
                "checkpoint holds {} node snapshots but the simulation has {seen} live apps",
                state.nodes.len()
            ))
            .into());
        }
        slides = state.slides;
        previous = state.previous;
        convergence_latency = state.convergence;
        start_round = state.cursor;
    }
    for round in start_round..schedule.rounds {
        // Evaluate 1 µs before the next round's earliest (unstaggered)
        // sample, so the slide sees everything of round `round` and nothing
        // of round `round + 1`.
        let next_round_start =
            Timestamp::from_secs_f64((round + 1) as f64 * schedule.sample_interval_secs);
        let eval_at = Timestamp::from_micros(next_round_start.as_micros().saturating_sub(1));
        // Telemetry spans: the per-slide latency breakdown. Children of
        // "slide" cover the whole body, so `slide/sim + slide/collect +
        // slide/evaluate ≈ slide` (detector and fixed-point time nests
        // under `slide/sim` via the dispatch-site spans).
        let _slide_span = wsn_obs::span("slide");
        {
            let _sim_span = wsn_obs::span("sim");
            if let Some(driver) = faults.as_mut() {
                driver.apply_through(sim, eval_at);
            }
            sim.run_until(eval_at);
        }

        let mut local_data: BTreeMap<SensorId, Vec<DataPoint>> = BTreeMap::new();
        let mut estimates: BTreeMap<SensorId, OutlierEstimate> = BTreeMap::new();
        let mut data_points = 0u64;
        {
            let _collect_span = wsn_obs::span("collect");
            sim.for_each_app(&mut |id, app| {
                local_data.insert(id, app.streaming_own_points(id));
                estimates.insert(id, app.streaming_estimate());
                data_points += app.streaming_points_sent();
            });
        }
        let window_points = local_data.values().map(Vec::len).sum();
        let eval_span = wsn_obs::span("evaluate");
        let (truth, label_truth) = paired_truths(
            ranking,
            n,
            labels,
            &local_data,
            // Under churn the radio graph changes between slides; each
            // slide's d-hop grading scopes come from what is deployed *now*.
            hop_diameter.map(|d| (sim.topology(), u32::from(d))),
        );
        let accuracy = truth.grade(&estimates);
        let label_report = label_truth.grade(&estimates);
        let agree = match hop_diameter {
            None => estimates_agree(&estimates),
            // Pairwise agreement is meaningless for hop-local answers; the
            // semi-global convergence event is "everyone matches their own
            // d-hop ground truth".
            Some(_) => accuracy.all_correct(),
        };
        if agree && convergence_latency.is_none() {
            convergence_latency = Some(round);
        }
        let stats = sim.network_stats();
        let totals = Totals::of(&stats, data_points);
        drop(eval_span);
        slides.push(SlideReport {
            slide: round,
            at: sim.now(),
            window_points,
            accuracy,
            labels: label_report,
            estimates_agree: agree,
            packets_delta: totals.packets - previous.packets,
            bytes_delta: totals.bytes - previous.bytes,
            data_points_delta: totals.data_points - previous.data_points,
            avg_tx_energy_delta: (totals.tx_joules - previous.tx_joules) / node_count as f64,
            avg_rx_energy_delta: (totals.rx_joules - previous.rx_joules) / node_count as f64,
        });
        previous = totals;
        if let Some(ctx) = persist {
            if (round + 1) % ctx.every == 0 {
                // Nested under the slide span, so telemetry reports the
                // checkpoint cost as `slide/checkpoint`.
                let _ckpt_span = wsn_obs::span("checkpoint");
                let mut nodes: Vec<JsonValue> = Vec::with_capacity(node_count);
                sim.for_each_app(&mut |id, app| {
                    nodes.push(JsonValue::Array(vec![
                        JsonValue::from(id.0),
                        app.persist_snapshot(),
                    ]));
                });
                let payload = JsonValue::Object(vec![
                    ("config_hash".to_string(), JsonValue::from(ctx.config_hash)),
                    ("cursor".to_string(), JsonValue::from(round + 1)),
                    (
                        "fault_cursor".to_string(),
                        JsonValue::from(faults.as_ref().map(FaultDriver::cursor).unwrap_or(0)),
                    ),
                    ("at".to_string(), JsonValue::from(sim.now().as_micros())),
                    (
                        "convergence".to_string(),
                        match convergence_latency {
                            Some(slide) => JsonValue::from(slide),
                            None => JsonValue::Null,
                        },
                    ),
                    ("previous".to_string(), previous.to_json()),
                    (
                        "slides".to_string(),
                        JsonValue::Array(slides.iter().map(slide_to_json).collect()),
                    ),
                    ("nodes".to_string(), JsonValue::Array(nodes)),
                ]);
                std::fs::create_dir_all(&ctx.dir).map_err(|e| {
                    PersistError::Io(format!("create checkpoint dir {}: {e}", ctx.dir.display()))
                })?;
                let bytes = persist::write_atomic(
                    &ctx.dir.join("checkpoint.json"),
                    "checkpoint",
                    &payload,
                )?;
                persist::OBS_SNAPSHOTS_WRITTEN.add(1);
                persist::OBS_SNAPSHOT_BYTES.add(bytes);
                persist::crash_point("persist.after_checkpoint");
            }
        }
    }
    let quiescent_tail = {
        let _tail_span = wsn_obs::span("tail");
        // Any fault events past the last slide still happen before the
        // network is required to settle.
        if let Some(driver) = faults.as_mut() {
            driver.finish(sim);
        }
        sim.run_until_quiescent(deadline)
    };
    let mut data_points_sent = 0;
    sim.for_each_app(&mut |_, a| data_points_sent += a.streaming_points_sent());
    Ok(StreamingOutcome {
        label,
        slides,
        convergence_latency_slides: convergence_latency,
        quiescent_tail,
        final_stats: sim.network_stats(),
        data_points_sent,
        node_count,
        rounds: schedule.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, RankingChoice};
    use wsn_data::synth::AnomalyModel;

    fn spiky_small(algorithm: AlgorithmConfig) -> ExperimentConfig {
        let mut config = ExperimentConfig::small().with_algorithm(algorithm);
        config.trace.rounds = 6;
        config.trace.anomalies =
            AnomalyModel { spike_probability: 0.08, spike_magnitude: 70.0, ..AnomalyModel::none() };
        config.trace.missing_probability = 0.0;
        config
    }

    #[test]
    fn streaming_produces_one_report_per_slide() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let outcome = StreamingExperiment::new(config).run().unwrap();
        assert_eq!(outcome.slides.len(), 6);
        assert_eq!(outcome.rounds, 6);
        assert_eq!(outcome.node_count, 9);
        for (i, slide) in outcome.slides.iter().enumerate() {
            assert_eq!(slide.slide, i);
            assert_eq!(slide.accuracy.total_nodes, 9);
        }
        // Reports are monotone in time.
        for pair in outcome.slides.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
        assert!(outcome.quiescent_tail, "chatter must die out after the last sample");
        assert!(outcome.data_points_sent > 0);
    }

    #[test]
    fn streaming_converges_and_matches_the_batch_experiment_at_the_end() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let streaming = StreamingExperiment::new(config.clone()).run().unwrap();
        // The protocol must have agreed at some slide.
        assert!(streaming.convergence_latency_slides.is_some());
        // And the whole run's energy matches the one-shot runner's (same
        // simulation, just observed mid-flight).
        let batch = run_experiment(&config).unwrap();
        let streaming_tx = streaming.final_stats.tx_energy_summary().avg;
        let batch_tx = batch.stats.tx_energy_summary().avg;
        assert!(
            (streaming_tx - batch_tx).abs() < 1e-9,
            "observing slides must not change what the network does: {streaming_tx} vs {batch_tx}"
        );
        assert_eq!(streaming.data_points_sent, batch.data_points_sent);
    }

    #[test]
    fn streaming_reports_label_precision_and_recall() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let outcome = StreamingExperiment::new(config).run().unwrap();
        let labelled_slides = outcome.slides.iter().filter(|s| s.labels.has_labels()).count();
        assert!(labelled_slides > 0, "8% spikes over 54 readings must label some slides");
        assert!(outcome.mean_label_precision() > 0.0);
        assert!(outcome.mean_label_recall() > 0.0);
    }

    #[test]
    fn streaming_supports_semi_global_and_centralized() {
        let semi = spiky_small(AlgorithmConfig::SemiGlobal {
            ranking: RankingChoice::Nn,
            hop_diameter: 2,
        });
        let outcome = StreamingExperiment::new(semi).run().unwrap();
        assert_eq!(outcome.slides.len(), 6);
        assert!(outcome.quiescent_tail);

        let central = spiky_small(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn });
        let outcome = StreamingExperiment::new(central).run().unwrap();
        assert_eq!(outcome.slides.len(), 6);
        assert_eq!(outcome.data_points_sent, 0);
        assert!(outcome.final_stats.total_packets_sent() > 0);
    }

    #[test]
    fn slide_deltas_sum_to_no_more_than_the_final_totals() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let outcome = StreamingExperiment::new(config).run().unwrap();
        let packets: u64 = outcome.slides.iter().map(|s| s.packets_delta).sum();
        let bytes: u64 = outcome.slides.iter().map(|s| s.bytes_delta).sum();
        // The tail (after the last slide) may still transmit, so the slide
        // deltas bound the totals from below.
        assert!(packets <= outcome.final_stats.total_packets_sent());
        assert!(bytes <= outcome.final_stats.total_bytes_sent());
        assert!(packets > 0);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsn-streaming-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_killed_run_resumes_bit_for_bit() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let baseline = StreamingExperiment::new(config.clone()).run().unwrap();

        // Kill the run right after its second checkpoint (slide 4 of 6).
        let dir = scratch_dir("kill");
        crate::persist::arm_crash_point("persist.after_checkpoint", 2);
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            StreamingExperiment::new(config.clone()).checkpoint_every_slides(2, &dir).run().unwrap()
        }));
        crate::persist::disarm_crash_points();
        let message = *killed.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains(crate::persist::CRASH_MARKER), "panic was {message:?}");

        // Resuming from the surviving checkpoint reproduces the
        // uninterrupted run exactly — slides, convergence, final stats.
        let resumed = StreamingExperiment::new(config).resume_from(&dir).run().unwrap();
        assert_eq!(resumed, baseline);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resuming_a_finished_run_replays_only_the_tail() {
        // With every=3 the final checkpoint lands after the last slide
        // (cursor == rounds), so resume skips the slide loop entirely.
        let config = spiky_small(AlgorithmConfig::SemiGlobal {
            ranking: RankingChoice::Nn,
            hop_diameter: 2,
        });
        let dir = scratch_dir("tail");
        let baseline = StreamingExperiment::new(config.clone())
            .checkpoint_every_slides(3, &dir)
            .run()
            .unwrap();
        let resumed = StreamingExperiment::new(config).resume_from(&dir).run().unwrap();
        assert_eq!(resumed, baseline);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_a_checkpoint_from_a_different_configuration() {
        let config = spiky_small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let dir = scratch_dir("mismatch");
        StreamingExperiment::new(config.clone()).checkpoint_every_slides(2, &dir).run().unwrap();

        let mut other = config.clone();
        other.n = config.n + 1;
        let err = StreamingExperiment::new(other).resume_from(&dir).run().unwrap_err();
        assert!(
            matches!(err, CoreError::Persist(crate::persist::PersistError::Mismatch(_))),
            "expected a config-hash mismatch, got {err:?}"
        );

        // A torn checkpoint is detected, not loaded.
        let path = dir.join("checkpoint.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let err = StreamingExperiment::new(config).resume_from(&dir).run().unwrap_err();
        assert!(
            matches!(err, CoreError::Persist(crate::persist::PersistError::Corrupt(_))),
            "expected corruption to be refused, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_streaming_configs_are_rejected() {
        let mut config = ExperimentConfig::small();
        config.transmission_range_m = 0.5;
        assert_eq!(
            StreamingExperiment::new(config).run().unwrap_err(),
            CoreError::DisconnectedNetwork
        );
        let empty = DeploymentTrace::new(30.0).unwrap();
        assert!(matches!(
            StreamingExperiment::new(ExperimentConfig::small()).run_on_trace(&empty),
            Err(CoreError::InvalidConfig(_))
        ));
    }
}
