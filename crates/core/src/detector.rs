//! The common interface of the distributed detectors.
//!
//! Both the global (§5) and semi-global (§6) algorithms react to the same
//! four local events — initialization, a change of the local data `D_i`,
//! receipt of points from a neighbour, and a neighbourhood change — by
//! recomputing, per neighbour, the points that still need to be sent.
//! [`OutlierDetector`] captures that shared shape so the simulator adapter
//! ([`crate::app`]), the metrics and the experiment runner can treat the two
//! algorithms (and any future variant) uniformly.

use crate::message::OutlierBroadcast;
use wsn_data::{DataPoint, PointSet, SensorId, Timestamp};
use wsn_ranking::OutlierEstimate;

/// A per-sensor outlier-detection protocol state machine.
///
/// The typical call sequence, driven by the host (simulator adapter or unit
/// test), mirrors the paper's event loop:
///
/// 1. [`advance_time`](OutlierDetector::advance_time) — slide the window,
/// 2. [`add_local_points`](OutlierDetector::add_local_points) or
///    [`receive`](OutlierDetector::receive) — apply the event,
/// 3. [`process`](OutlierDetector::process) — compute the per-neighbour
///    sufficient points and obtain the broadcast packet `M` (if any),
/// 4. [`estimate`](OutlierDetector::estimate) — read the node's current
///    outlier estimate.
pub trait OutlierDetector {
    /// The sensor this detector runs on.
    fn id(&self) -> SensorId;

    /// The number of outliers `n` being computed.
    fn n(&self) -> usize;

    /// Incorporates freshly sampled local observations (the paper's
    /// "`D_i` changes" event). Points are expected to carry hop count 0.
    fn add_local_points(&mut self, points: Vec<DataPoint>);

    /// Incorporates points received from the single-hop neighbour `from`
    /// (the paper's "message received" event).
    fn receive(&mut self, from: SensorId, points: Vec<DataPoint>);

    /// [`receive`](OutlierDetector::receive) for points already behind
    /// shared handles — the zero-copy path the simulator adapter feeds
    /// broadcast payloads through, so a delivered point shares one
    /// allocation with the sender's window and every other receiver. The
    /// default unwraps (or copies) each handle and delegates; both shipped
    /// detectors override it as their primary implementation.
    fn receive_arcs(&mut self, from: SensorId, points: Vec<std::sync::Arc<DataPoint>>) {
        self.receive(
            from,
            points
                .into_iter()
                .map(|p| std::sync::Arc::try_unwrap(p).unwrap_or_else(|shared| (*shared).clone()))
                .collect(),
        );
    }

    /// Advances the sliding-window clock to `now`, evicting points that have
    /// fallen out of the window everywhere they are tracked (§5.3).
    fn advance_time(&mut self, now: Timestamp);

    /// Reacts to the most recent event: computes, for every current
    /// neighbour, the sufficient points not yet known to be shared, records
    /// them as sent, and returns the combined broadcast packet. Returns
    /// `None` when no neighbour needs anything (the local termination
    /// condition of §5).
    fn process(&mut self, neighbors: &[SensorId]) -> Option<OutlierBroadcast>;

    /// Forgets every neighbour **not** in `live` — the self-healing reaction
    /// to a neighbourhood change (a neighbour died or moved out of range).
    /// All per-neighbour protocol state for the departed — shared-knowledge
    /// sets, revision bookkeeping, fixed-point chains — must be dropped, so
    /// no dead neighbour pins window points or suppresses convergence over
    /// the surviving live set. The default is a no-op (for detectors without
    /// per-neighbour state); both shipped detectors override it.
    fn retain_neighbors(&mut self, live: &[SensorId]) {
        let _ = live;
    }

    /// The node's current outlier estimate.
    fn estimate(&self) -> OutlierEstimate;

    /// The points the node currently holds (`P_i`).
    fn held_points(&self) -> &PointSet;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalNode;
    use crate::semiglobal::SemiGlobalNode;
    use wsn_data::window::WindowConfig;
    use wsn_ranking::NnDistance;

    /// The trait must stay object-safe so heterogeneous experiments can hold
    /// `Box<dyn OutlierDetector>`.
    #[test]
    fn detectors_are_object_safe() {
        let window = WindowConfig::from_secs(100).unwrap();
        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(GlobalNode::new(SensorId(1), NnDistance, 2, window)),
            Box::new(SemiGlobalNode::new(SensorId(2), NnDistance, 2, 1, window)),
        ];
        assert_eq!(detectors[0].id(), SensorId(1));
        assert_eq!(detectors[1].id(), SensorId(2));
        assert_eq!(detectors[0].n(), 2);
        assert!(detectors[1].held_points().is_empty());
    }
}
