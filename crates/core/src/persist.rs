//! Crash-safe persistence: snapshot/restore for detector and engine state.
//!
//! This module lets a long streaming run survive a process kill: every piece
//! of **canonical** node state — the sliding window, the per-neighbour
//! shared-knowledge sets, the quiet ledger, the liveness bookkeeping, the
//! fixed-point engine's per-neighbour `H` chains, and the centralized sink's
//! collected union — serializes to a [`wsn_json::JsonValue`] and back.
//! Derived state (spatial indexes, rank bounds, seed/support caches) is
//! deliberately *not* persisted: it is rebuilt cold on restore, and the
//! detectors' outputs are exact regardless of cache temperature (stale rank
//! bounds are still upper bounds; see [`crate::sufficient`]).
//!
//! # File format
//!
//! A snapshot file is two lines of text:
//!
//! ```text
//! {"format":"wsn-persist","kind":"checkpoint","version":1,"len":N,"checksum":C}
//! { ... payload JSON, exactly N bytes, FNV-1a 64 checksum C ... }
//! ```
//!
//! The header is written in the same compact JSON as the payload, so the
//! whole file stays greppable. `len` and `checksum` cover the payload bytes
//! only — a torn tail, a flipped bit, or a truncated file all fail
//! [`read_verified`] with a typed [`PersistError`] instead of silently
//! loading garbage.
//!
//! # Atomicity contract
//!
//! [`write_atomic`] never exposes a half-written file under the target name:
//! the bytes go to a `*.tmp` sibling, the file is fsynced, then renamed over
//! the target, then the directory is fsynced. A crash before the rename
//! leaves the previous snapshot intact; a crash after it leaves the new one.
//! There is no third state.
//!
//! # Versioning contract — how to add a field
//!
//! Snapshots carry [`PERSIST_VERSION`] in the header. To add a field to a
//! payload: emit it in the `persist_snapshot` of the owning type, read it in
//! the matching `persist_restore`, and — if old snapshots must keep loading —
//! read it with a default instead of [`PersistError::Schema`]. For any
//! change that alters the *meaning* of existing fields, bump
//! [`PERSIST_VERSION`]; [`read_verified`] refuses other versions with
//! [`PersistError::Version`], which is the wanted behaviour for state whose
//! misinterpretation would silently corrupt a resumed run.
//!
//! # Crash-injection harness
//!
//! Tests (and the `crash_resume` CI binary) call [`arm_crash_point`] to make
//! the *n*-th pass through a named [`crash_point`] hook panic, simulating a
//! kill at exactly that boundary. The armed state is thread-local, so
//! parallel tests cannot trip each other's crashes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

use crate::experiment::ExperimentConfig;
use crate::ledger::QuietLedger;
use crate::sufficient::{FixedPointEngine, NeighborStateDump};
use wsn_data::window::{SlidingWindow, WindowConfig};
use wsn_data::{DataPoint, Epoch, HopCount, PointKey, PointSet, SensorId, Timestamp};
/// The document model every snapshot serializes to, re-exported from
/// `wsn-json` so callers holding dumps (every `persist_snapshot` return
/// value) can name the type without depending on the JSON crate directly.
pub use wsn_json::JsonValue;

/// The `format` discriminator every persisted file's header carries.
pub const PERSIST_FORMAT: &str = "wsn-persist";

/// The current on-disk format version (see the module docs for the
/// compatibility contract).
pub const PERSIST_VERSION: u64 = 1;

/// Telemetry ([`wsn_obs`]): snapshots written and their total size.
pub(crate) static OBS_SNAPSHOTS_WRITTEN: wsn_obs::Counter =
    wsn_obs::Counter::new("persist.snapshots_written");
pub(crate) static OBS_SNAPSHOT_BYTES: wsn_obs::Counter =
    wsn_obs::Counter::new("persist.snapshot_bytes");

/// Errors of the persistence layer. Every failure to write, read, verify or
/// install persisted state is typed — a caller can distinguish "the disk
/// failed" from "the file is torn" from "this snapshot belongs to a
/// different experiment".
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(String),
    /// The file is torn, truncated, or fails its checksum — it must not be
    /// loaded.
    Corrupt(String),
    /// The file was written by an incompatible format version.
    Version {
        /// Version found in the file header.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The payload is well-formed JSON but missing or mistyping a field.
    Schema(String),
    /// The state is internally valid but belongs to a different experiment,
    /// node, or point in time than the one it is being restored into.
    Mismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "persistence I/O error: {msg}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persisted state: {msg}"),
            PersistError::Version { found, expected } => {
                write!(f, "unsupported snapshot version {found} (this build reads {expected})")
            }
            PersistError::Schema(msg) => write!(f, "malformed persisted state: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "mismatched persisted state: {msg}"),
        }
    }
}

impl Error for PersistError {}

/// FNV-1a, 64-bit: the dependency-free checksum guarding every snapshot
/// payload and journal row. Not cryptographic — it detects torn writes and
/// bit rot, which is all the crash model needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable fingerprint of an experiment configuration, stamped into every
/// checkpoint and journal row so state from a different experiment is
/// refused (not silently loaded) on resume.
pub fn config_hash(config: &ExperimentConfig) -> u64 {
    fnv1a64(format!("{config:?}").as_bytes())
}

// ---------------------------------------------------------------------------
// Crash-injection harness
// ---------------------------------------------------------------------------

/// Prefix of the panic message an armed [`crash_point`] fires with, so tests
/// can tell an injected kill from a genuine bug.
pub const CRASH_MARKER: &str = "injected crash at ";

thread_local! {
    /// The armed crash, if any: `(hook name, hits remaining)`.
    static ARMED_CRASH: RefCell<Option<(String, u32)>> = const { RefCell::new(None) };
}

/// Arms the crash harness: the `nth_hit`-th pass (1-based) through the
/// [`crash_point`] named `name` on **this thread** will panic with
/// [`CRASH_MARKER`]. Arming replaces any previously armed crash.
///
/// # Panics
///
/// Panics if `nth_hit` is zero.
pub fn arm_crash_point(name: &str, nth_hit: u32) {
    assert!(nth_hit >= 1, "nth_hit is 1-based");
    ARMED_CRASH.with(|cell| *cell.borrow_mut() = Some((name.to_string(), nth_hit)));
}

/// Disarms any armed crash point on this thread.
pub fn disarm_crash_points() {
    ARMED_CRASH.with(|cell| *cell.borrow_mut() = None);
}

/// A named kill site. No-op unless [`arm_crash_point`] armed this name on
/// this thread; then the armed hit count is decremented and, on reaching
/// zero, the process "dies" (panics with [`CRASH_MARKER`] — callers
/// simulating a kill catch the unwind or let the process abort).
///
/// Compiled-in sites: `persist.before_write`, `persist.before_rename`,
/// `persist.after_rename` (inside [`write_atomic`]) and
/// `persist.after_checkpoint` (after a streaming checkpoint completes).
pub fn crash_point(name: &str) {
    let fire = ARMED_CRASH.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some((armed, remaining)) if armed == name => {
                *remaining -= 1;
                if *remaining == 0 {
                    *slot = None;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    });
    if fire {
        panic!("{CRASH_MARKER}{name}");
    }
}

// ---------------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------------

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> PersistError {
    PersistError::Io(format!("{what} {}: {e}", path.display()))
}

/// Writes `payload` under `path` atomically: tmp-file sibling → fsync →
/// rename → directory fsync. Returns the number of bytes written. `kind`
/// names the payload schema in the header (`"checkpoint"`, …) and is
/// checked back by readers.
///
/// # Errors
///
/// Returns [`PersistError::Io`] if any filesystem step fails; on error the
/// target file is either absent or still the previous complete version.
pub fn write_atomic(path: &Path, kind: &str, payload: &JsonValue) -> Result<u64, PersistError> {
    crash_point("persist.before_write");
    let payload_text = payload.to_compact_string();
    let header = JsonValue::Object(vec![
        ("format".into(), JsonValue::from(PERSIST_FORMAT)),
        ("kind".into(), JsonValue::from(kind)),
        ("version".into(), JsonValue::from(PERSIST_VERSION)),
        ("len".into(), JsonValue::from(payload_text.len() as u64)),
        ("checksum".into(), JsonValue::from(fnv1a64(payload_text.as_bytes()))),
    ])
    .to_compact_string();
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io(format!("{} has no file name", path.display())))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, &e))?;
        file.write_all(header.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.write_all(payload_text.as_bytes()))
            .and_then(|()| file.write_all(b"\n"))
            .map_err(|e| io_err("cannot write", &tmp, &e))?;
        file.sync_all().map_err(|e| io_err("cannot fsync", &tmp, &e))?;
    }
    crash_point("persist.before_rename");
    fs::rename(&tmp, path).map_err(|e| io_err("cannot rename into", path, &e))?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems refuse to open directories for writing.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    crash_point("persist.after_rename");
    Ok((header.len() + payload_text.len() + 2) as u64)
}

/// Reads a file written by [`write_atomic`], verifying the header before a
/// single payload byte is interpreted: format tag, version, declared length,
/// checksum. Returns the header's `kind` and the parsed payload.
///
/// # Errors
///
/// [`PersistError::Io`] if the file cannot be read,
/// [`PersistError::Corrupt`] for a torn/truncated/bit-rotted file,
/// [`PersistError::Version`] for an incompatible format version.
pub fn read_verified(path: &Path) -> Result<(String, JsonValue), PersistError> {
    let text = fs::read_to_string(path).map_err(|e| io_err("cannot read", path, &e))?;
    let (header_line, body) =
        text.split_once('\n').ok_or_else(|| PersistError::Corrupt("missing header line".into()))?;
    let header = JsonValue::parse(header_line)
        .map_err(|e| PersistError::Corrupt(format!("unreadable header: {e}")))?;
    let corrupt = |e: PersistError| PersistError::Corrupt(format!("bad header: {e}"));
    if str_field(&header, "format").map_err(corrupt)? != PERSIST_FORMAT {
        return Err(PersistError::Corrupt("not a wsn-persist file".into()));
    }
    let version = u64_field(&header, "version").map_err(corrupt)?;
    if version != PERSIST_VERSION {
        return Err(PersistError::Version { found: version, expected: PERSIST_VERSION });
    }
    let kind = str_field(&header, "kind").map_err(corrupt)?.to_string();
    let len = u64_field(&header, "len").map_err(corrupt)? as usize;
    let bytes = body.as_bytes();
    if bytes.len() < len {
        return Err(PersistError::Corrupt(format!(
            "torn write: payload holds {} of {len} declared bytes",
            bytes.len()
        )));
    }
    let payload_bytes = &bytes[..len];
    let expected = u64_field(&header, "checksum").map_err(corrupt)?;
    let actual = fnv1a64(payload_bytes);
    if actual != expected {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch: header declares {expected}, payload hashes to {actual}"
        )));
    }
    let payload_text = std::str::from_utf8(payload_bytes)
        .map_err(|e| PersistError::Corrupt(format!("payload is not UTF-8: {e}")))?;
    let payload = JsonValue::parse(payload_text)
        .map_err(|e| PersistError::Corrupt(format!("unparsable payload: {e}")))?;
    Ok((kind, payload))
}

// ---------------------------------------------------------------------------
// Field accessors (decode side)
// ---------------------------------------------------------------------------
// The scalar accessors are `pub`: external persistence layers composing
// their own payloads around the snapshot dumps (e.g. `wsn-fleet`'s
// per-tenant checkpoints) parse with the same typed [`PersistError::Schema`]
// errors this module produces.

/// Looks up `key` in an object payload, as a typed [`PersistError::Schema`].
pub fn field<'v>(value: &'v JsonValue, key: &str) -> Result<&'v JsonValue, PersistError> {
    value.get(key).ok_or_else(|| PersistError::Schema(format!("missing field \"{key}\"")))
}

/// Reads `key` as an unsigned integer.
pub fn u64_field(value: &JsonValue, key: &str) -> Result<u64, PersistError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not an unsigned integer")))
}

pub(crate) fn u32_field(value: &JsonValue, key: &str) -> Result<u32, PersistError> {
    u32::try_from(u64_field(value, key)?)
        .map_err(|_| PersistError::Schema(format!("field \"{key}\" overflows u32")))
}

/// Reads `key` as a `usize`.
pub fn usize_field(value: &JsonValue, key: &str) -> Result<usize, PersistError> {
    usize::try_from(u64_field(value, key)?)
        .map_err(|_| PersistError::Schema(format!("field \"{key}\" overflows usize")))
}

pub(crate) fn f64_field(value: &JsonValue, key: &str) -> Result<f64, PersistError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not a number")))
}

pub(crate) fn bool_field(value: &JsonValue, key: &str) -> Result<bool, PersistError> {
    match field(value, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(PersistError::Schema(format!("field \"{key}\" is not a boolean"))),
    }
}

/// Reads `key` as a string slice.
pub fn str_field<'v>(value: &'v JsonValue, key: &str) -> Result<&'v str, PersistError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not a string")))
}

/// Reads `key` as an array slice.
pub fn array_field<'v>(value: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], PersistError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not an array")))
}

pub(crate) fn opt_u64_field(value: &JsonValue, key: &str) -> Result<Option<u64>, PersistError> {
    match field(value, key)? {
        JsonValue::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not null or u64"))),
    }
}

pub(crate) fn opt_f64_field(value: &JsonValue, key: &str) -> Result<Option<f64>, PersistError> {
    match field(value, key)? {
        JsonValue::Null => Ok(None),
        v => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| PersistError::Schema(format!("field \"{key}\" is not null or number"))),
    }
}

pub(crate) fn opt_u64_to_json(value: Option<u64>) -> JsonValue {
    match value {
        Some(v) => JsonValue::from(v),
        None => JsonValue::Null,
    }
}

pub(crate) fn opt_f64_to_json(value: Option<f64>) -> JsonValue {
    match value {
        Some(v) => JsonValue::Number(v),
        None => JsonValue::Null,
    }
}

/// Verifies a payload's embedded `kind` discriminator.
pub fn expect_kind(value: &JsonValue, kind: &str) -> Result<(), PersistError> {
    let found = str_field(value, "kind")?;
    if found != kind {
        return Err(PersistError::Mismatch(format!(
            "expected a \"{kind}\" payload, found \"{found}\""
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Data-model codecs
// ---------------------------------------------------------------------------

/// One data point as `{"o":origin,"e":epoch,"t":micros,"h":hop,"f":[..]}`.
pub(crate) fn point_to_json(point: &DataPoint) -> JsonValue {
    JsonValue::Object(vec![
        ("o".into(), JsonValue::from(point.key.origin.raw())),
        ("e".into(), JsonValue::from(point.key.epoch.raw())),
        ("t".into(), JsonValue::from(point.timestamp.as_micros())),
        ("h".into(), JsonValue::from(u32::from(point.hop))),
        (
            "f".into(),
            JsonValue::Array(point.features.iter().map(|&v| JsonValue::Number(v)).collect()),
        ),
    ])
}

pub(crate) fn point_from_json(value: &JsonValue) -> Result<DataPoint, PersistError> {
    let features = array_field(value, "f")?
        .iter()
        .map(|f| {
            f.as_f64().ok_or_else(|| PersistError::Schema("point feature is not a number".into()))
        })
        .collect::<Result<Vec<f64>, _>>()?;
    let hop = u32_field(value, "h")?;
    let hop = HopCount::try_from(hop)
        .map_err(|_| PersistError::Schema(format!("hop count {hop} overflows")))?;
    let mut point = DataPoint::new(
        SensorId(u32_field(value, "o")?),
        Epoch(u64_field(value, "e")?),
        Timestamp::from_micros(u64_field(value, "t")?),
        features,
    )
    .map_err(|e| PersistError::Schema(format!("invalid point: {e}")))?;
    point.hop = hop;
    Ok(point)
}

pub(crate) fn key_to_json(key: &PointKey) -> JsonValue {
    JsonValue::Array(vec![JsonValue::from(key.origin.raw()), JsonValue::from(key.epoch.raw())])
}

pub(crate) fn key_from_json(value: &JsonValue) -> Result<PointKey, PersistError> {
    match value.as_array() {
        Some([o, e]) => Ok(PointKey {
            origin: SensorId(
                o.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| PersistError::Schema("point key origin is not a u32".into()))?,
            ),
            epoch: Epoch(
                e.as_u64()
                    .ok_or_else(|| PersistError::Schema("point key epoch is not a u64".into()))?,
            ),
        }),
        _ => Err(PersistError::Schema("point key is not a two-element array".into())),
    }
}

pub(crate) fn set_to_json(set: &PointSet) -> JsonValue {
    JsonValue::Array(set.iter().map(point_to_json).collect())
}

pub(crate) fn set_from_json(value: &JsonValue) -> Result<PointSet, PersistError> {
    let entries =
        value.as_array().ok_or_else(|| PersistError::Schema("point set is not an array".into()))?;
    let mut set = PointSet::new();
    for entry in entries {
        set.insert(point_from_json(entry)?);
    }
    Ok(set)
}

/// A `SensorId → PointSet` map as `[[id, [points…]], …]`.
pub(crate) fn sets_by_id_to_json(map: &BTreeMap<SensorId, PointSet>) -> JsonValue {
    JsonValue::Array(
        map.iter()
            .map(|(id, set)| JsonValue::Array(vec![JsonValue::from(id.raw()), set_to_json(set)]))
            .collect(),
    )
}

pub(crate) fn sets_by_id_from_json(
    value: &JsonValue,
) -> Result<BTreeMap<SensorId, PointSet>, PersistError> {
    let entries = value
        .as_array()
        .ok_or_else(|| PersistError::Schema("per-neighbour set map is not an array".into()))?;
    let mut map = BTreeMap::new();
    for entry in entries {
        match entry.as_array() {
            Some([id, set]) => {
                let id = id
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| PersistError::Schema("map key is not a sensor id".into()))?;
                map.insert(SensorId(id), set_from_json(set)?);
            }
            _ => return Err(PersistError::Schema("map entry is not an [id, set] pair".into())),
        }
    }
    Ok(map)
}

/// A `SensorId → Timestamp` map as `[[id, micros], …]`.
pub(crate) fn times_by_id_to_json(map: &BTreeMap<SensorId, Timestamp>) -> JsonValue {
    JsonValue::Array(
        map.iter()
            .map(|(id, t)| {
                JsonValue::Array(vec![JsonValue::from(id.raw()), JsonValue::from(t.as_micros())])
            })
            .collect(),
    )
}

pub(crate) fn times_by_id_from_json(
    value: &JsonValue,
) -> Result<BTreeMap<SensorId, Timestamp>, PersistError> {
    let entries = value
        .as_array()
        .ok_or_else(|| PersistError::Schema("timestamp map is not an array".into()))?;
    let mut map = BTreeMap::new();
    for entry in entries {
        match entry.as_array() {
            Some([id, t]) => {
                let id = id
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| PersistError::Schema("map key is not a sensor id".into()))?;
                let t = t
                    .as_u64()
                    .ok_or_else(|| PersistError::Schema("timestamp is not a u64".into()))?;
                map.insert(SensorId(id), Timestamp::from_micros(t));
            }
            _ => return Err(PersistError::Schema("map entry is not an [id, time] pair".into())),
        }
    }
    Ok(map)
}

pub(crate) fn ids_to_json(ids: impl Iterator<Item = SensorId>) -> JsonValue {
    JsonValue::Array(ids.map(|id| JsonValue::from(id.raw())).collect())
}

pub(crate) fn ids_from_json(value: &JsonValue) -> Result<Vec<SensorId>, PersistError> {
    value
        .as_array()
        .ok_or_else(|| PersistError::Schema("id list is not an array".into()))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|raw| u32::try_from(raw).ok())
                .map(SensorId)
                .ok_or_else(|| PersistError::Schema("id list entry is not a sensor id".into()))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Window, ledger and engine codecs
// ---------------------------------------------------------------------------

/// Serializes a sliding window: configuration, clock, revision, contents.
pub fn snapshot_window(window: &SlidingWindow) -> JsonValue {
    JsonValue::Object(vec![
        ("length_micros".into(), JsonValue::from(window.config().length_micros)),
        ("now".into(), JsonValue::from(window.now().as_micros())),
        ("revision".into(), JsonValue::from(window.revision())),
        ("points".into(), set_to_json(window.contents())),
    ])
}

/// Rebuilds a sliding window from [`snapshot_window`] output.
///
/// # Errors
///
/// [`PersistError::Schema`] for missing/mistyped fields and
/// [`PersistError::Corrupt`] for internally inconsistent state (a point
/// behind the window's own cutoff).
pub fn restore_window(value: &JsonValue) -> Result<SlidingWindow, PersistError> {
    let config = WindowConfig::from_micros(u64_field(value, "length_micros")?)
        .map_err(|e| PersistError::Schema(format!("invalid window config: {e}")))?;
    SlidingWindow::from_parts(
        config,
        set_from_json(field(value, "points")?)?,
        Timestamp::from_micros(u64_field(value, "now")?),
        u64_field(value, "revision")?,
    )
    .map_err(|e| PersistError::Corrupt(format!("inconsistent window state: {e}")))
}

pub(crate) fn ledger_to_json(ledger: &QuietLedger) -> JsonValue {
    let (revisions, quiet) = ledger.export();
    JsonValue::Object(vec![
        (
            "revisions".into(),
            JsonValue::Array(
                revisions
                    .into_iter()
                    .map(|(j, r)| {
                        JsonValue::Array(vec![JsonValue::from(j.raw()), JsonValue::from(r)])
                    })
                    .collect(),
            ),
        ),
        (
            "quiet".into(),
            JsonValue::Array(
                quiet
                    .into_iter()
                    .map(|(j, (wr, br))| {
                        JsonValue::Array(vec![
                            JsonValue::from(j.raw()),
                            JsonValue::from(wr),
                            JsonValue::from(br),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn ledger_from_json(value: &JsonValue) -> Result<QuietLedger, PersistError> {
    let mut revisions = Vec::new();
    for entry in array_field(value, "revisions")? {
        match entry.as_array() {
            Some([j, r]) => revisions.push((
                SensorId(j.as_u64().and_then(|v| u32::try_from(v).ok()).ok_or_else(|| {
                    PersistError::Schema("ledger revision id is not a u32".into())
                })?),
                r.as_u64()
                    .ok_or_else(|| PersistError::Schema("ledger revision is not a u64".into()))?,
            )),
            _ => return Err(PersistError::Schema("ledger revision entry malformed".into())),
        }
    }
    let mut quiet = Vec::new();
    for entry in array_field(value, "quiet")? {
        match entry.as_array() {
            Some([j, wr, br]) => {
                quiet.push((
                    SensorId(j.as_u64().and_then(|v| u32::try_from(v).ok()).ok_or_else(|| {
                        PersistError::Schema("ledger quiet id is not a u32".into())
                    })?),
                    (
                        wr.as_u64().ok_or_else(|| {
                            PersistError::Schema("ledger quiet window revision is not a u64".into())
                        })?,
                        br.as_u64().ok_or_else(|| {
                            PersistError::Schema(
                                "ledger quiet bookkeeping revision is not a u64".into(),
                            )
                        })?,
                    ),
                ))
            }
            _ => return Err(PersistError::Schema("ledger quiet entry malformed".into())),
        }
    }
    Ok(QuietLedger::from_parts(revisions, quiet))
}

/// The per-neighbour `H` chains of one engine, canonical core only (see
/// [`FixedPointEngine::export_neighbor_states`]).
pub(crate) fn engine_to_json(engine: &FixedPointEngine) -> JsonValue {
    JsonValue::Array(
        engine
            .export_neighbor_states()
            .into_iter()
            .map(|dump| {
                JsonValue::Object(vec![
                    ("j".into(), JsonValue::from(dump.neighbor.raw())),
                    ("membership".into(), set_to_json(&dump.membership)),
                    ("synced_at".into(), opt_u64_to_json(dump.synced_at)),
                    ("seed_at".into(), opt_u64_to_json(dump.seed_at)),
                    (
                        "unrecorded".into(),
                        JsonValue::Array(dump.unrecorded.iter().map(key_to_json).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

pub(crate) fn engine_dumps_from_json(
    value: &JsonValue,
) -> Result<Vec<NeighborStateDump>, PersistError> {
    value
        .as_array()
        .ok_or_else(|| PersistError::Schema("engine state is not an array".into()))?
        .iter()
        .map(|entry| {
            Ok(NeighborStateDump {
                neighbor: SensorId(u32_field(entry, "j")?),
                membership: set_from_json(field(entry, "membership")?)?,
                synced_at: opt_u64_field(entry, "synced_at")?,
                seed_at: opt_u64_field(entry, "seed_at")?,
                unrecorded: array_field(entry, "unrecorded")?
                    .iter()
                    .map(key_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(origin: u32, epoch: u64, secs: u64, hop: u16, v: f64) -> DataPoint {
        let mut p =
            DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::from_secs(secs), vec![v])
                .unwrap();
        p.hop = hop;
        p
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn points_and_sets_round_trip_exactly() {
        let p = pt(7, u64::MAX - 3, 1234, 5, -17.25);
        let back = point_from_json(&point_to_json(&p)).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.hop, 5);
        let set: PointSet = vec![pt(1, 0, 1, 0, 1.0), pt(2, 9, 2, 3, -2.5)].into_iter().collect();
        let back = set_from_json(&set_to_json(&set)).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn windows_round_trip_through_snapshot_and_restore() {
        let mut w = SlidingWindow::new(WindowConfig::from_secs(50).unwrap());
        w.insert(pt(1, 0, 5, 0, 1.0));
        w.insert(pt(2, 0, 9, 1, 2.0));
        w.advance_to(Timestamp::from_secs(30));
        let restored = restore_window(&snapshot_window(&w)).unwrap();
        assert_eq!(restored, w);
        assert_eq!(restored.revision(), w.revision());
    }

    #[test]
    fn atomic_write_and_read_verify_round_trip() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let payload = JsonValue::Object(vec![
            ("kind".into(), JsonValue::from("demo")),
            ("seed".into(), JsonValue::from(u64::MAX)),
        ]);
        let bytes = write_atomic(&path, "demo", &payload).unwrap();
        assert!(bytes > 0);
        let (kind, back) = read_verified(&path).unwrap();
        assert_eq!(kind, "demo");
        assert_eq!(back, payload);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_corrupted_files_are_refused_with_typed_errors() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let payload = JsonValue::Object(vec![("x".into(), JsonValue::from(42u64))]);
        write_atomic(&path, "demo", &payload).unwrap();
        let full = fs::read_to_string(&path).unwrap();

        // Truncated payload (torn write).
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(read_verified(&path), Err(PersistError::Corrupt(_))));

        // Flipped payload byte (checksum).
        let flipped = full.replace("42", "43");
        assert_ne!(flipped, full);
        fs::write(&path, flipped).unwrap();
        assert!(matches!(read_verified(&path), Err(PersistError::Corrupt(_))));

        // Wrong version tag.
        let versioned = full.replace("\"version\":1", "\"version\":2");
        assert_ne!(versioned, full);
        fs::write(&path, versioned).unwrap();
        assert!(matches!(
            read_verified(&path),
            Err(PersistError::Version { found: 2, expected: PERSIST_VERSION })
        ));

        // Not a persist file at all.
        fs::write(&path, "{\"rows\": []}\n").unwrap();
        assert!(matches!(read_verified(&path), Err(PersistError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_points_fire_on_the_armed_hit_only() {
        disarm_crash_points();
        crash_point("persist.test_site"); // unarmed: no-op
        arm_crash_point("persist.test_site", 2);
        crash_point("persist.other_site"); // wrong site: no-op
        crash_point("persist.test_site"); // first hit: survives
        let result = std::panic::catch_unwind(|| crash_point("persist.test_site"));
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(CRASH_MARKER), "panic message was {msg:?}");
        // The armed crash is consumed.
        crash_point("persist.test_site");
    }

    #[test]
    fn config_hash_separates_configurations() {
        let a = ExperimentConfig::small();
        let mut b = a.clone();
        b.sim_seed += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a), config_hash(&a.clone()));
    }
}
