//! Revision-keyed caching of state derived from a sliding window.
//!
//! The detectors repeatedly derive expensive structures from their window
//! contents — most importantly the spatial neighbour index
//! ([`wsn_ranking::index::AnyIndex`]) that accelerates every ranking query of
//! one protocol step. The window contents only change on insertion, eviction
//! or origin removal, all of which bump
//! [`SlidingWindow::revision`](wsn_data::SlidingWindow::revision); a
//! [`RevisionCache`] pairs a derived value with the revision it was built
//! from and hands it back for free until the window slides.

use std::fmt;
use std::sync::Arc;

/// A single-slot cache of a value derived from revisioned state.
///
/// The cached value is shared behind an [`Arc`] so read paths (including
/// `&self` methods like a detector's `estimate`) can hold on to it without
/// cloning the underlying structure, and so cloning a detector clones the
/// cache by reference.
pub struct RevisionCache<T> {
    slot: Option<(u64, Arc<T>)>,
}

impl<T> RevisionCache<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RevisionCache { slot: None }
    }

    /// Returns the cached value if it was built from exactly `revision`.
    pub fn get(&self, revision: u64) -> Option<Arc<T>> {
        match &self.slot {
            Some((rev, value)) if *rev == revision => Some(Arc::clone(value)),
            _ => None,
        }
    }

    /// Stores `value` as the derivation of `revision`, returning the shared
    /// handle. Any previously cached revision is dropped.
    pub fn put(&mut self, revision: u64, value: T) -> Arc<T> {
        let value = Arc::new(value);
        self.slot = Some((revision, Arc::clone(&value)));
        value
    }

    /// Returns the value cached for `revision`, building and storing it with
    /// `build` on a miss.
    pub fn get_or_build(&mut self, revision: u64, build: impl FnOnce() -> T) -> Arc<T> {
        if let Some(value) = self.get(revision) {
            return value;
        }
        self.put(revision, build())
    }

    /// Drops any cached value.
    pub fn invalidate(&mut self) {
        self.slot = None;
    }
}

impl<T> Default for RevisionCache<T> {
    fn default() -> Self {
        RevisionCache::new()
    }
}

impl<T> Clone for RevisionCache<T> {
    fn clone(&self) -> Self {
        RevisionCache { slot: self.slot.as_ref().map(|(rev, v)| (*rev, Arc::clone(v))) }
    }
}

impl<T> fmt::Debug for RevisionCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.slot {
            Some((rev, _)) => write!(f, "RevisionCache(revision {rev})"),
            None => write!(f, "RevisionCache(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_only_on_the_exact_revision() {
        let mut cache: RevisionCache<String> = RevisionCache::new();
        assert!(cache.get(0).is_none());
        cache.put(3, "three".to_string());
        assert_eq!(cache.get(3).as_deref().map(String::as_str), Some("three"));
        assert!(cache.get(2).is_none());
        assert!(cache.get(4).is_none());
    }

    #[test]
    fn get_or_build_builds_once_per_revision() {
        let mut cache: RevisionCache<u32> = RevisionCache::default();
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_build(7, || {
                builds += 1;
                42
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(builds, 1);
        // A new revision replaces the slot.
        let v = cache.get_or_build(8, || {
            builds += 1;
            43
        });
        assert_eq!(*v, 43);
        assert_eq!(builds, 2);
        assert!(cache.get(7).is_none(), "only the latest revision is kept");
    }

    #[test]
    fn clones_share_the_cached_value_and_invalidate_independently() {
        let mut cache: RevisionCache<Vec<u8>> = RevisionCache::new();
        let original = cache.put(1, vec![1, 2, 3]);
        let mut copy = cache.clone();
        assert!(Arc::ptr_eq(&original, &copy.get(1).unwrap()));
        copy.invalidate();
        assert!(copy.get(1).is_none());
        assert!(cache.get(1).is_some(), "invalidating the clone leaves the original intact");
        assert!(format!("{cache:?}").contains("revision 1"));
        assert!(format!("{copy:?}").contains("empty"));
    }
}
