//! The sufficient-set computation of equation (2).
//!
//! Before talking to a neighbour `p_j`, a sensor `p_i` must decide which of
//! its points could change `p_j`'s estimate if sent. A set `Z_j ⊆ P_i` is
//! *sufficient* for `p_j` (eq. 2) if it contains
//!
//! 1. `p_i`'s own estimate and its support,
//!    `O_n(P_i) ∪ [P_i | O_n(P_i)]`, and
//! 2. the support (over `P_i`) of what `p_i` believes `p_j`'s estimate would
//!    become after receiving `Z_j`:
//!    `[P_i | O_n(D^i_{i,j} ∪ D^i_{j,i} ∪ Z_j)] ⊆ Z_j`.
//!
//! The second condition is self-referential, so the algorithm computes `Z_j`
//! as a least fixed point: start from (1) and keep adding the support of the
//! hypothetical estimate until nothing changes. Only `Z_j` minus what the
//! neighbour provably already has is transmitted.

use std::cmp::Ordering;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use wsn_data::order::total_order;
use wsn_data::{DataPoint, PointKey, PointSet, SensorId};
use wsn_ranking::function::support_of_set_indexed;
use wsn_ranking::index::{AnyIndex, DynamicIndex, IndexStrategy, NeighborIndex};
use wsn_ranking::{top_n_outliers, top_n_outliers_indexed, RankingFunction};

/// Telemetry ([`wsn_obs`]): engine calls.
static OBS_FP_CALLS: wsn_obs::Counter = wsn_obs::Counter::new("engine.calls");
/// Telemetry: calls served by the no-scan fast path (sync chain intact).
static OBS_FP_CHAIN_FAST: wsn_obs::Counter = wsn_obs::Counter::new("engine.chain_fast");
/// Telemetry: first-contact builds of a neighbour's hypothetical state.
static OBS_FP_COLD_BUILDS: wsn_obs::Counter = wsn_obs::Counter::new("engine.cold_builds");
/// Telemetry: desync re-scans whose reason was a bookkeeping-revision gap
/// (a missed delta note or an eviction bumping `known`'s revision).
static OBS_FP_RESCAN_REVISION_GAP: wsn_obs::Counter =
    wsn_obs::Counter::new("engine.desync_rescans_revision_gap");
/// Telemetry: desync re-scans whose reason was unrecorded points the caller
/// never folded into `known`.
static OBS_FP_RESCAN_UNRECORDED: wsn_obs::Counter =
    wsn_obs::Counter::new("engine.desync_rescans_unrecorded");
/// Telemetry: full per-neighbour rebuilds (the size check caught stale
/// identities — `known` shrank under the cached H, i.e. an eviction).
static OBS_FP_DESYNC_REBUILDS: wsn_obs::Counter = wsn_obs::Counter::new("engine.desync_rebuilds");
/// Telemetry: per-revision seed computed (miss) vs handed out cached (hit).
static OBS_SEED_BUILDS: wsn_obs::Counter = wsn_obs::Counter::new("engine.seed_builds");
static OBS_SEED_REUSES: wsn_obs::Counter = wsn_obs::Counter::new("engine.seed_reuses");
/// Telemetry: support-set cache lookups and the subset that computed.
static OBS_SUPPORT_QUERIES: wsn_obs::Counter = wsn_obs::Counter::new("engine.support_queries");
static OBS_SUPPORT_MISSES: wsn_obs::Counter = wsn_obs::Counter::new("engine.support_misses");

/// Computes a set `Z_j` satisfying equation (2) for one neighbour.
///
/// * `pi` — the points this sensor currently holds (`P_i`),
/// * `known_common` — the points this sensor knows it shares with the
///   neighbour (`D^i_{i,j} ∪ D^i_{j,i}`),
/// * `n` — the number of outliers to report.
///
/// The result always contains `O_n(P_i) ∪ [P_i|O_n(P_i)]`, is closed under
/// the fixed-point rule above, and is a subset of `pi`. The algorithm figure
/// notes the result "is not guaranteed to be the smallest set to do so" —
/// the same applies here.
///
/// A spatial neighbour index over `pi` is built once and reused by every
/// rank and support query of the fixed point; callers that evaluate several
/// neighbours against the same `P_i` (one per neighbour, as both detectors
/// do) should build the index once themselves and run a reusable
/// [`FixedPointEngine`] (or call [`sufficient_set_indexed`]).
pub fn sufficient_set<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    known_common: &PointSet,
) -> PointSet {
    let index = AnyIndex::build(IndexStrategy::Auto, pi);
    sufficient_set_indexed(ranking, n, pi, &index, known_common)
}

/// [`sufficient_set`] over a pre-built neighbour index of `pi`.
///
/// `index` must have been built over exactly `pi`. The result is
/// bit-identical to the unindexed computation: the index returns the same
/// deterministically tie-broken neighbour orderings as the brute path, so
/// the fixed point walks through the same intermediate sets. Runs a
/// throwaway [`FixedPointEngine`]; callers invoking this repeatedly for the
/// same `P_i` should hold on to one engine instead.
pub fn sufficient_set_indexed<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    index: &dyn NeighborIndex,
    known_common: &PointSet,
) -> PointSet {
    let z = FixedPointEngine::new().sufficient_set(
        ranking,
        n,
        pi,
        Some(index),
        SensorId(0),
        known_common,
        (0, 0),
    );
    Arc::try_unwrap(z).unwrap_or_else(|shared| (*shared).clone())
}

/// The pre-incremental fixed point, kept verbatim as the executable
/// specification of equation (2): every iteration re-materialises the union
/// `known ∪ Z`, re-runs [`top_n_outliers`] over it (which builds a fresh
/// throwaway index), and re-derives the support of the *whole* hypothetical
/// estimate. The incremental engine must agree with this loop bit for bit —
/// the equivalence tests here and in `tests/property_index.rs` assert it —
/// and the `fixed_point` microbench group measures one against the other.
pub fn sufficient_set_rebuild_reference<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    index: &dyn NeighborIndex,
    known_common: &PointSet,
) -> PointSet {
    let own_estimate = top_n_outliers_indexed(ranking, n, pi, index);
    let own_estimate_set = own_estimate.to_point_set();
    let mut z = own_estimate_set.union(&support_of_set_indexed(ranking, index, &own_estimate_set));

    // Fixed point: Z_j ← Z_j ∪ [P_i | O_n(D_ij ∪ D_ji ∪ Z_j)].
    loop {
        let hypothetical = known_common.union(&z);
        let neighbour_estimate = top_n_outliers(ranking, n, &hypothetical).to_point_set();
        let support = support_of_set_indexed(ranking, index, &neighbour_estimate);
        if support.is_subset_of(&z) {
            break;
        }
        z.extend_from(&support);
    }
    z
}

/// A reusable, rebuild-free evaluator of the equation (2) fixed point.
///
/// One engine serves one detector: the ranking function and `n` must stay
/// fixed across calls, and the `revision` argument of
/// [`FixedPointEngine::sufficient_set`] must pin `P_i` (and the index built
/// over it) exactly — both detectors pass their window revision, which is
/// bumped on every contents change. Under that contract the engine caches:
///
/// **Per revision** (shared by every neighbour of a protocol step and by
/// every later step that leaves the window untouched):
///
/// * the seed `O_n(P_i) ∪ [P_i|O_n(P_i)]` — a pure function of `P_i`,
///   previously recomputed per neighbour, and
/// * every support set `[P_i|x]` it has queried, keyed by the identity of
///   `x` (support sets depend only on the observation's identity and
///   features, which all copies of an observation share).
///
/// **Per neighbour** (surviving across calls *and* revisions): the
/// hypothetical set `H = D_ij ∪ D_ji ∪ Z` inside one long-lived
/// [`DynamicIndex`], together with a cached rank per point. This works
/// because at a detector `H` effectively only grows between window slides —
/// a non-empty `Z` is recorded into `D_ij` right after the call, so the next
/// call's `known` already covers the previous `H` — and because ranking
/// functions are **anti-monotone** (the axiom of §4.1 the whole protocol
/// rests on, verified for every shipped ranking by `wsn_ranking::axioms`):
/// a rank cached over a subset of the current `H` is a valid *upper bound*
/// on the current rank. Each iteration's estimate `O_n(H)` is therefore
/// selected lazily: candidates pop in upper-bound order and only the actual
/// contenders are re-ranked against the index, so a steady-state call ranks
/// a handful of points instead of all of `H`. If a call finds `H` out of
/// sync with `known ∪ Z` (bookkeeping eviction shrank `known` — the one
/// non-monotone transition), the per-neighbour state is rebuilt from
/// scratch; a cheap size check detects this exactly.
///
/// The result is bit-identical to [`sufficient_set_rebuild_reference`]: the
/// recurrence `Z ← Z ∪ [P_i | O_n(known ∪ Z)]` is evaluated with the same
/// distance arithmetic and the same `(rank, ≺)` tie-broken selection — lazy
/// validation re-queries a contender through the same index machinery the
/// eager path would have used, and floating-point rank computations are
/// monotone under set growth (pointwise-smaller sorted neighbour distances
/// sum to a smaller rank), so an upper bound can never understate a true
/// rank. No iteration builds an index or re-materialises the union, and
/// supports are queried only for estimate points not already folded into
/// `Z`.
#[derive(Debug, Clone, Default)]
pub struct FixedPointEngine {
    /// The `P_i` revision the two caches below were computed for.
    revision: Option<u64>,
    /// `O_n(P_i) ∪ [P_i|O_n(P_i)]` plus the estimate's keys (whose supports
    /// are already folded into the seed). Shared, so handing a caller the
    /// unchanged seed as its `Z` is a reference-count bump.
    own_seed: Option<(Arc<PointSet>, Arc<[PointKey]>)>,
    /// Memoized `[P_i|x]` support sets, keyed by the identity of `x`.
    support_cache: BTreeMap<PointKey, PointSet>,
    /// Per-neighbour hypothetical-set state (see the type-level docs).
    neighbors: BTreeMap<SensorId, HypotheticalState>,
    /// The same lazy-rank machinery over `P_i` itself, fed by
    /// [`FixedPointEngine::note_window_point`]: while its sync chain
    /// follows the window revision, the per-revision seed `O_n(P_i)` is
    /// re-selected lazily and its [`DynamicIndex`] answers every support
    /// query — the detector never builds a fresh window index again.
    own: Option<HypotheticalState>,
    /// Reusable scratch for the per-call processed-keys list (small: the
    /// seed plus a few support additions), saving one allocation per call.
    scratch_processed: Vec<PointKey>,
}

/// The long-lived `H = known ∪ Z` of one neighbour: a growing
/// [`DynamicIndex`], a rank upper bound per point, and the points ordered
/// by those bounds — all persistent across calls, so a steady-state call
/// does no `O(|H|)` work beyond cheap map lookups.
#[derive(Debug, Clone)]
struct HypotheticalState {
    index: DynamicIndex,
    /// Bumped on every insertion; a cached rank is exact (not merely an
    /// upper bound) iff it was validated at the current version *or* every
    /// later insertion provably lies outside its affection radius.
    version: u64,
    /// `(rank upper bound, version it was exact at)` per point, keyed in
    /// lockstep with the index contents.
    ranks: BTreeMap<PointKey, (f64, u64)>,
    /// The points ordered by `(rank upper bound, ≺)` — the outlier order.
    /// Every entry's rank mirrors `ranks` exactly; revalidating a point
    /// moves its entry, inserting a point adds an unknown-rank entry at the
    /// front.
    order: std::collections::BTreeSet<Contender>,
    /// The most recent insertions, tagged with the version they created —
    /// the candidates for the affection-radius test. A rank validated at
    /// version `v` is still exact if every pending point newer than `v`
    /// lies strictly beyond the rank's affection radius. Capped at
    /// [`PENDING_INSERTS_CAP`]; once entries have been dropped, older
    /// validations fall back to a full re-rank.
    pending: VecDeque<(u64, Arc<DataPoint>)>,
    /// Versions `<=` this value are no longer covered by `pending`.
    pending_floor: u64,
    /// The neighbour bookkeeping revision `known` was last folded in at;
    /// while it is unchanged, `known` is unchanged and the sync scan is
    /// skipped entirely. Kept in step by [`FixedPointEngine::note_shared_points`].
    synced_at: Option<u64>,
    /// The window revision whose seed was last folded in; one fold per
    /// revision suffices because the seed is a pure function of `P_i`.
    seed_at: Option<u64>,
    /// Identities H holds that were *not* in `known` when folded in (seed
    /// points and freshly added supports — the caller's `Z \ known`). The
    /// invariant behind the no-scan fast path is `H ⊆ known ∪ Z`; a caller
    /// that records its sends (both detectors do, unconditionally, before
    /// the next call) moves these into `known`, which the next call
    /// verifies with a handful of lookups. A caller that does not is sent
    /// down the full re-verify path instead.
    unrecorded: Vec<PointKey>,
}

/// How many recent insertions a [`HypotheticalState`] keeps for the
/// affection-radius shortcut before falling back to full re-ranks.
const PENDING_INSERTS_CAP: usize = 48;

/// The serializable core of one neighbour's [`HypotheticalState`] — see
/// [`FixedPointEngine::export_neighbor_states`].
#[derive(Debug, Clone)]
pub(crate) struct NeighborStateDump {
    /// The neighbour the chain belongs to.
    pub neighbor: SensorId,
    /// The exact membership of `H` (full points, hop counts included).
    pub membership: PointSet,
    /// [`HypotheticalState::synced_at`].
    pub synced_at: Option<u64>,
    /// [`HypotheticalState::seed_at`].
    pub seed_at: Option<u64>,
    /// [`HypotheticalState::unrecorded`], order preserved.
    pub unrecorded: Vec<PointKey>,
}

impl HypotheticalState {
    /// Builds the state over `contents`, all ranks unknown (`+∞` bounds).
    fn build(contents: &PointSet) -> Self {
        HypotheticalState {
            index: DynamicIndex::build(IndexStrategy::Auto, contents),
            version: 1,
            ranks: contents.keys().map(|k| (*k, (f64::INFINITY, 0))).collect(),
            order: contents
                .iter_arcs()
                .map(|p| Contender { rank: f64::INFINITY, point: Arc::clone(p) })
                .collect(),
            pending: VecDeque::new(),
            pending_floor: 0,
            synced_at: None,
            seed_at: None,
            unrecorded: Vec::new(),
        }
    }

    /// Set-inserts a point (duplicate identities are no-ops, first copy
    /// wins — union semantics). A new point starts with an unknown rank and
    /// stales every cached rank, since ranks may only have decreased.
    fn insert(&mut self, point: Arc<DataPoint>) {
        let key = point.key;
        if self.index.insert_arc(Arc::clone(&point)) {
            self.version += 1;
            self.ranks.insert(key, (f64::INFINITY, 0));
            self.order.insert(Contender { rank: f64::INFINITY, point: Arc::clone(&point) });
            self.pending.push_back((self.version, point));
            if self.pending.len() > PENDING_INSERTS_CAP {
                if let Some((seq, _)) = self.pending.pop_front() {
                    self.pending_floor = seq;
                }
            }
        }
    }

    /// The estimate `O_n(H)` under `ranking`, selected lazily: candidates
    /// are visited in cached upper-bound order (ties by `≺`, exactly the
    /// outlier order) and a candidate whose bound is stale is re-ranked
    /// through the index; if its rank dropped, its entry moves back and the
    /// position is re-examined. A candidate confirmed *fresh* is provably
    /// the best remaining — every later entry's true rank is bounded by its
    /// ordering key — so the confirmation order is the eager selection
    /// order, bit for bit. Only contenders are ever re-ranked; points whose
    /// bounds never reach the top `n` are never touched.
    fn select_top_n<R: RankingFunction + ?Sized>(
        &mut self,
        ranking: &R,
        n: usize,
    ) -> Vec<Arc<DataPoint>> {
        let mut out = Vec::new();
        while out.len() < n {
            // The first `out.len()` entries are confirmed; the next entry is
            // the candidate (revalidation only ever moves entries backward,
            // so the confirmed prefix is stable).
            let Some(entry) = self.order.iter().nth(out.len()).cloned() else { break };
            let validated_at = self.ranks[&entry.point.key].1;
            if validated_at == self.version {
                out.push(entry.point);
                continue;
            }
            let rank = match self.refresh_through_pending(ranking, &entry, validated_at) {
                Some(rank) => rank,
                None => ranking.rank_indexed(&entry.point, &self.index),
            };
            self.ranks.insert(entry.point.key, (rank, self.version));
            if rank.total_cmp(&entry.rank) == Ordering::Equal {
                out.push(entry.point);
            } else {
                self.order.remove(&entry);
                self.order.insert(Contender { rank, point: entry.point });
            }
        }
        out
    }

    /// The pending-insert shortcut: folds every insertion newer than
    /// `validated_at` into the cached rank without touching the index.
    /// Per pending point, either the ranking derives the exact updated
    /// rank from the insertion distance alone
    /// ([`RankingFunction::rank_after_insertion`] — the NN ranking always
    /// can), or the insertion lies strictly outside the rank's affection
    /// radius and provably left it unchanged. Returns the exact current
    /// rank, or `None` when some insertion forces a full re-rank (or the
    /// pending window no longer covers `validated_at`).
    fn refresh_through_pending<R: RankingFunction + ?Sized>(
        &self,
        ranking: &R,
        entry: &Contender,
        validated_at: u64,
    ) -> Option<f64> {
        if validated_at == 0 || validated_at < self.pending_floor {
            return None;
        }
        let mut rank = entry.rank;
        for (seq, y) in &self.pending {
            if *seq <= validated_at {
                continue;
            }
            let distance = entry.point.feature_distance(y);
            if let Some(updated) = ranking.rank_after_insertion(rank, distance) {
                rank = updated;
            } else if distance <= ranking.affection_radius(rank) {
                return None;
            }
        }
        Some(rank)
    }
}

/// An ordered-set entry of [`HypotheticalState::select_top_n`]: ascending
/// order is best-first — highest rank first, ties broken by `≺` (the
/// `≺`-smaller point first), matching `RankedPoint::outlier_order`.
#[derive(Debug, Clone)]
struct Contender {
    rank: f64,
    point: Arc<DataPoint>,
}

impl Ord for Contender {
    fn cmp(&self, other: &Self) -> Ordering {
        other.rank.total_cmp(&self.rank).then_with(|| total_order(&self.point, &other.point))
    }
}

impl PartialOrd for Contender {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Contender {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Contender {}

impl FixedPointEngine {
    /// Creates an engine with cold caches.
    pub fn new() -> Self {
        FixedPointEngine::default()
    }

    /// Invalidates the revision-scoped caches when `revision` differs from
    /// the one they were filled at. The per-neighbour states survive: their
    /// rank bounds stay upper bounds as `H` grows, and the size check in
    /// [`FixedPointEngine::sufficient_set`] catches shrinkage.
    fn roll_to(&mut self, revision: u64) {
        if self.revision != Some(revision) {
            self.revision = Some(revision);
            self.own_seed = None;
            self.support_cache.clear();
        }
    }

    /// Tells the engine that `points` have just been recorded into the
    /// shared-knowledge set of `neighbor`, whose bookkeeping revision is now
    /// `known_revision`. If the neighbour's cached hypothetical set was
    /// synced to the immediately preceding revision, the delta is folded in
    /// right here and the next [`FixedPointEngine::sufficient_set`] call
    /// skips its `known` scan entirely; any gap in the chain (a missed
    /// note, an eviction — which never comes with a note) simply leaves the
    /// state behind, and the next call re-scans or rebuilds. Purely an
    /// optimisation: correctness never depends on being notified.
    pub fn note_shared_points(
        &mut self,
        neighbor: SensorId,
        points: &[Arc<DataPoint>],
        known_revision: u64,
    ) {
        if let Some(state) = self.neighbors.get_mut(&neighbor) {
            if state.synced_at == Some(known_revision.wrapping_sub(1)) {
                for p in points {
                    state.insert(Arc::clone(p));
                }
                state.synced_at = Some(known_revision);
            }
        }
    }

    /// Drops the cached hypothetical-set chain of a departed neighbour.
    /// The neighbour's `Arc<DataPoint>` handles go with it — a dead
    /// neighbour must not keep window points alive. If the neighbour later
    /// rejoins, its chain restarts cold, exactly like any neighbour the
    /// engine has never computed for.
    pub fn forget_neighbor(&mut self, neighbor: SensorId) {
        self.neighbors.remove(&neighbor);
    }

    /// Whether the engine currently holds per-neighbour state for
    /// `neighbor` (diagnostics: lets tests assert the state-leak contract).
    pub fn tracks_neighbor(&self, neighbor: SensorId) -> bool {
        self.neighbors.contains_key(&neighbor)
    }

    /// The neighbours the engine currently holds cached state for, in
    /// ascending order.
    pub fn tracked_neighbors(&self) -> impl Iterator<Item = SensorId> + '_ {
        self.neighbors.keys().copied()
    }

    /// The canonical core of every per-neighbour `H` chain, for the
    /// persistence layer ([`crate::persist`]): the chain membership plus the
    /// three markers the incremental sync paths branch on. Everything else
    /// in a [`HypotheticalState`] (rank bounds, contender order, pending
    /// inserts, the own-window state and the revision-scoped seed/support
    /// caches) is derived and is rebuilt cold on restore — the fixed-point
    /// outputs are exact regardless of cache temperature, because stale rank
    /// bounds are still upper bounds and `select_top_n` revalidates them.
    pub(crate) fn export_neighbor_states(&self) -> Vec<NeighborStateDump> {
        self.neighbors
            .iter()
            .map(|(&neighbor, state)| NeighborStateDump {
                neighbor,
                membership: state.order.iter().map(|c| Arc::clone(&c.point)).fold(
                    PointSet::new(),
                    |mut set, p| {
                        set.insert_arc(p);
                        set
                    },
                ),
                synced_at: state.synced_at,
                seed_at: state.seed_at,
                unrecorded: state.unrecorded.clone(),
            })
            .collect()
    }

    /// Rebuilds the engine from [`FixedPointEngine::export_neighbor_states`]
    /// dumps: every chain comes back with its exact membership and sync
    /// markers (so the no-scan fast paths stay intact) but all-unknown rank
    /// bounds, and every revision-scoped cache starts cold.
    pub(crate) fn restore_neighbor_states(&mut self, dumps: Vec<NeighborStateDump>) {
        self.revision = None;
        self.own_seed = None;
        self.support_cache.clear();
        self.own = None;
        self.scratch_processed.clear();
        self.neighbors = dumps
            .into_iter()
            .map(|dump| {
                let mut state = HypotheticalState::build(&dump.membership);
                state.synced_at = dump.synced_at;
                state.seed_at = dump.seed_at;
                state.unrecorded = dump.unrecorded;
                (dump.neighbor, state)
            })
            .collect();
    }

    /// Tells the engine the window just accepted `point`, moving its
    /// revision to `revision`. Chains exactly like
    /// [`FixedPointEngine::note_shared_points`]: if the engine's own-window
    /// state was synced to the preceding revision the point is folded in,
    /// otherwise the state falls behind and the next call rebuilds it. A
    /// window *eviction* also bumps the revision but never comes with a
    /// note, so it always breaks the chain — exactly the transition under
    /// which cached ranks would stop being upper bounds.
    pub fn note_window_point(&mut self, point: &Arc<DataPoint>, revision: u64) {
        if let Some(own) = self.own.as_mut() {
            if own.synced_at == Some(revision.wrapping_sub(1)) {
                own.insert(Arc::clone(point));
                own.synced_at = Some(revision);
            }
        }
    }

    /// Computes `Z_j` for the neighbour `neighbor`; see [`sufficient_set`]
    /// for the shared parameters and the type-level docs for the caching
    /// contract. `revisions` pins the call's inputs exactly: its first
    /// component is the window revision (identifying `pi` and `index`), its
    /// second the neighbour's bookkeeping revision (identifying
    /// `known_common`) — the same pair the detectors' `QuietLedger` keys
    /// its nothing-to-send memo by. Ranking and `n` must not vary across
    /// calls on one engine. The returned set is shared — when the fixed
    /// point adds nothing beyond the seed (the common steady state), no set
    /// is copied at all.
    #[allow(clippy::too_many_arguments)]
    pub fn sufficient_set<R: RankingFunction + ?Sized>(
        &mut self,
        ranking: &R,
        n: usize,
        pi: &PointSet,
        index: Option<&dyn NeighborIndex>,
        neighbor: SensorId,
        known_common: &PointSet,
        revisions: (u64, u64),
    ) -> Arc<PointSet> {
        OBS_FP_CALLS.add(1);
        let _fp_span = wsn_obs::span("fixed_point");
        self.roll_to(revisions.0);
        // Resolve the index over P_i: a synced own-window state answers
        // every query (bit-identically — the property suites pin dynamic
        // vs fresh equality); otherwise a caller-provided index is used,
        // and failing both the own-window state is rebuilt from `pi`.
        let own_synced = self
            .own
            .as_ref()
            .is_some_and(|own| own.synced_at == Some(revisions.0) && own.index.len() == pi.len());
        if !own_synced && index.is_none() {
            let mut rebuilt = HypotheticalState::build(pi);
            rebuilt.synced_at = Some(revisions.0);
            self.own = Some(rebuilt);
        }
        let use_own = own_synced || index.is_none();
        if self.own_seed.is_some() {
            OBS_SEED_REUSES.add(1);
        } else {
            OBS_SEED_BUILDS.add(1);
        }
        if self.own_seed.is_none() {
            let own_estimate = if use_own {
                // Lazy selection over the window: only contenders re-rank.
                let own = self.own.as_mut().expect("own-window state just ensured");
                let mut set = PointSet::new();
                for p in own.select_top_n(ranking, n) {
                    set.insert_arc(p);
                }
                set
            } else {
                let index = index.expect("eager path always has a caller index");
                top_n_outliers_indexed(ranking, n, pi, index).to_point_set()
            };
            let mut seed = own_estimate.clone();
            for x in own_estimate.iter() {
                OBS_SUPPORT_QUERIES.add(1);
                let support = self.support_cache.entry(x.key).or_insert_with(|| {
                    OBS_SUPPORT_MISSES.add(1);
                    if use_own {
                        let own = self.own.as_ref().expect("own-window state just ensured");
                        ranking.support_set_indexed(x, &own.index)
                    } else {
                        ranking.support_set_indexed(x, index.expect("eager path"))
                    }
                });
                seed.extend_from(support);
            }
            let keys: Arc<[PointKey]> = own_estimate.keys().copied().collect();
            self.own_seed = Some((Arc::new(seed), keys));
        }
        let (seed, seeded_keys) = match &self.own_seed {
            // Handing out the cached seed only bumps reference counts.
            Some((seed, keys)) => (Arc::clone(seed), Arc::clone(keys)),
            None => unreachable!("own_seed filled above"),
        };

        // Z starts at the seed (copy-on-write: cloned only if it grows).
        let mut z = seed;
        // Bring the neighbour's H to exactly known ∪ Z. In the steady state
        // the cached H was verified at an earlier call and has followed
        // every `known` change through the delta notes (synced_at chain)
        // and every Z change through its own inserts, so nothing needs
        // scanning at all; only a broken chain (an eviction, a caller that
        // never notes) walks `known` and re-verifies the size. For an
        // identity present on both sides the already-stored copy wins,
        // which is observationally the `known.union(&z)` of the reference —
        // rank and `≺` comparisons never read the hop field, the only thing
        // that can differ between copies.
        let state = self
            .neighbors
            .entry(neighbor)
            .or_insert_with(|| HypotheticalState::build(&PointSet::new()));
        let chain_intact = state.synced_at == Some(revisions.1)
            && state.unrecorded.iter().all(|k| known_common.contains_key(k));
        if state.index.is_empty() && !(known_common.is_empty() && z.is_empty()) {
            OBS_FP_COLD_BUILDS.add(1);
            *state = HypotheticalState::build(&known_common.union(&z));
            state.synced_at = Some(revisions.1);
            state.seed_at = Some(revisions.0);
            state.unrecorded =
                z.keys().filter(|k| !known_common.contains_key(k)).copied().collect();
        } else if chain_intact {
            OBS_FP_CHAIN_FAST.add(1);
            // Chain intact and every previously unrecorded point has been
            // recorded into `known`: H equals known ∪ Z without any
            // scanning. Fold this revision's seed once.
            state.unrecorded.clear();
            if state.seed_at != Some(revisions.0) {
                for p in z.iter_arcs() {
                    state.insert(Arc::clone(p));
                    if !known_common.contains_key(&p.key) {
                        state.unrecorded.push(p.key);
                    }
                }
                state.seed_at = Some(revisions.0);
            }
        } else {
            // Chain broken (an eviction, a caller that never records or
            // notes): re-scan `known`, fold the seed, and verify the size —
            // H must hold exactly |known ∪ Z| identities, or it carries
            // identities `known` no longer covers and its ranks would be
            // too low. Start this neighbour over in that case.
            if wsn_obs::enabled() {
                if state.synced_at != Some(revisions.1) {
                    OBS_FP_RESCAN_REVISION_GAP.add(1);
                } else {
                    OBS_FP_RESCAN_UNRECORDED.add(1);
                }
            }
            for p in known_common.iter_arcs() {
                state.insert(Arc::clone(p));
            }
            for p in z.iter_arcs() {
                state.insert(Arc::clone(p));
            }
            let mut unrecorded = Vec::new();
            let expected = {
                let mut expected = known_common.len();
                for p in z.iter() {
                    if !known_common.contains_key(&p.key) {
                        expected += 1;
                        unrecorded.push(p.key);
                    }
                }
                expected
            };
            if state.index.len() != expected {
                OBS_FP_DESYNC_REBUILDS.add(1);
                *state = HypotheticalState::build(&known_common.union(&z));
            }
            state.synced_at = Some(revisions.1);
            state.seed_at = Some(revisions.0);
            state.unrecorded = unrecorded;
        }

        // Estimate points whose support is already folded into Z — their
        // supports are pure functions of identity, so re-querying them could
        // never add anything new. The list stays tiny (seed plus a few
        // support additions), so a linear scan over reused scratch beats a
        // per-call set allocation.
        let mut processed = std::mem::take(&mut self.scratch_processed);
        processed.clear();
        processed.extend_from_slice(&seeded_keys);

        // Fixed point: Z_j ← Z_j ∪ [P_i | O_n(D_ij ∪ D_ji ∪ Z_j)].
        loop {
            let estimate = state.select_top_n(ranking, n);
            let mut grew = false;
            for x in estimate {
                if processed.contains(&x.key) {
                    continue;
                }
                processed.push(x.key);
                let own = &self.own;
                OBS_SUPPORT_QUERIES.add(1);
                let support = self.support_cache.entry(x.key).or_insert_with(|| {
                    OBS_SUPPORT_MISSES.add(1);
                    if use_own {
                        let own = own.as_ref().expect("own-window state ensured above");
                        ranking.support_set_indexed(&x, &own.index)
                    } else {
                        ranking.support_set_indexed(&x, index.expect("eager path"))
                    }
                });
                for p in support.iter_arcs() {
                    if Arc::make_mut(&mut z).insert_arc(Arc::clone(p)) {
                        grew = true;
                        state.insert(Arc::clone(p));
                        if !known_common.contains_key(&p.key) {
                            state.unrecorded.push(p.key);
                        }
                    }
                }
            }
            if !grew {
                self.scratch_processed = processed;
                return z;
            }
        }
    }
}

/// Convenience wrapper: the points of `Z_j` that actually need transmitting,
/// i.e. `Z_j \ (D^i_{i,j} ∪ D^i_{j,i})`.
pub fn points_to_send<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    known_common: &PointSet,
) -> PointSet {
    sufficient_set(ranking, n, pi, known_common).difference(known_common)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::{DataPoint, Epoch, SensorId, Timestamp};
    use wsn_ranking::function::support_of_set;
    use wsn_ranking::{KnnAverageDistance, NnDistance};

    fn pt(origin: u32, epoch: u64, v: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::ZERO, vec![v]).unwrap()
    }

    /// The dataset of sensor p_i in the §5.1 walk-through with a = 15.
    fn section_5_1_pi() -> PointSet {
        let mut values = vec![0.5, 3.0, 6.0];
        values.extend((10..=15).map(f64::from));
        values.iter().enumerate().map(|(e, v)| pt(1, e as u64, *v)).collect()
    }

    #[test]
    fn first_exchange_of_the_paper_example_sends_a_handful_of_points() {
        // §5.1 step 1: the paper's run (with its tie-breaking) sends {3, 6}.
        // Our tie-breaking order resolves the rank tie between 3 and 6 the
        // other way, which additionally pulls in 0.5 — still a tiny fraction
        // of P_i, still containing the eventual answer, and still a valid
        // sufficient set per equation (2).
        let pi = section_5_1_pi();
        let z = sufficient_set(&NnDistance, 1, &pi, &PointSet::new());
        let mut values: Vec<f64> = z.iter().map(|p| p.features[0]).collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(values, vec![0.5, 3.0, 6.0]);
        let to_send = points_to_send(&NnDistance, 1, &pi, &PointSet::new());
        assert_eq!(to_send.len(), 3);
        assert!(to_send.len() < pi.len() / 2, "far less than centralizing all of P_i");
    }

    #[test]
    fn third_step_of_the_paper_example_sends_only_half() {
        // §5.1 step 3: after receiving {4}, p_i holds {0.5, 3, 4, 6, 10..a},
        // knows {3, 4, 6} is common, and must send exactly {0.5}.
        let mut pi = section_5_1_pi();
        pi.insert(pt(2, 100, 4.0));
        let known: PointSet =
            vec![pt(1, 1, 3.0), pt(1, 2, 6.0), pt(2, 100, 4.0)].into_iter().collect();
        let to_send = points_to_send(&NnDistance, 1, &pi, &known);
        let values: Vec<f64> = to_send.iter().map(|p| p.features[0]).collect();
        assert_eq!(values, vec![0.5]);
    }

    #[test]
    fn sufficient_set_satisfies_equation_2() {
        let pi = section_5_1_pi();
        let known: PointSet = vec![pt(1, 2, 6.0)].into_iter().collect();
        for n in 1..4 {
            for ranking in
                [&NnDistance as &dyn wsn_ranking::RankingFunction, &KnnAverageDistance::new(2)]
            {
                let z = sufficient_set(ranking, n, &pi, &known);
                // (a) Z ⊆ P_i.
                assert!(z.is_subset_of(&pi));
                // (b) O_n(P_i) ∪ [P_i|O_n(P_i)] ⊆ Z.
                let own = top_n_outliers(ranking, n, &pi).to_point_set();
                assert!(own.is_subset_of(&z));
                assert!(support_of_set(ranking, &pi, &own).is_subset_of(&z));
                // (c) [P_i | O_n(D_ij ∪ D_ji ∪ Z)] ⊆ Z.
                let hypothetical = known.union(&z);
                let est = top_n_outliers(ranking, n, &hypothetical).to_point_set();
                assert!(support_of_set(ranking, &pi, &est).is_subset_of(&z));
            }
        }
    }

    #[test]
    fn nothing_needs_sending_once_everything_is_common() {
        let pi = section_5_1_pi();
        let z = sufficient_set(&NnDistance, 1, &pi, &pi);
        // Z is still well-defined (the estimate and its support) …
        assert!(!z.is_empty());
        // … but the difference against the common knowledge is empty.
        assert!(points_to_send(&NnDistance, 1, &pi, &pi).is_empty());
    }

    #[test]
    fn empty_dataset_yields_empty_sets() {
        let empty = PointSet::new();
        assert!(sufficient_set(&NnDistance, 3, &empty, &empty).is_empty());
        assert!(points_to_send(&NnDistance, 3, &empty, &empty).is_empty());
    }

    #[test]
    fn sufficient_set_is_much_smaller_than_pi_for_clustered_data() {
        // The whole reason the algorithm saves bandwidth: only outliers and
        // their supports travel, not the bulk of the data.
        let mut points = Vec::new();
        for e in 0..200 {
            points.push(pt(1, e, 100.0 + (e % 10) as f64 * 0.01));
        }
        points.push(pt(1, 200, 0.5)); // one clear outlier
        let pi: PointSet = points.into_iter().collect();
        let z = sufficient_set(&NnDistance, 2, &pi, &PointSet::new());
        assert!(z.len() <= 8, "sufficient set has {} points", z.len());
        assert!(z.iter().any(|p| p.features[0] == 0.5));
    }

    #[test]
    fn larger_n_never_shrinks_the_sufficient_set() {
        let pi = section_5_1_pi();
        let z1 = sufficient_set(&NnDistance, 1, &pi, &PointSet::new());
        let z3 = sufficient_set(&NnDistance, 3, &pi, &PointSet::new());
        assert!(z1.len() <= z3.len());
    }

    /// The §5.1 example, evaluated through the incremental engine and the
    /// rebuild-per-iteration reference: bit-identical results for every
    /// ranking, `n`, and shared-knowledge configuration of the walk-through.
    #[test]
    fn incremental_engine_matches_the_rebuild_reference_on_section_5_1() {
        let mut pi = section_5_1_pi();
        pi.insert(pt(2, 100, 4.0));
        let knowns = [
            PointSet::new(),
            vec![pt(1, 1, 3.0), pt(1, 2, 6.0), pt(2, 100, 4.0)].into_iter().collect(),
            pi.clone(),
        ];
        for ranking in
            [&NnDistance as &dyn wsn_ranking::RankingFunction, &KnnAverageDistance::new(2)]
        {
            let index = AnyIndex::build(IndexStrategy::Auto, &pi);
            for n in 1..4 {
                // One engine per (ranking, n); known varies across calls on
                // one engine exactly as the per-neighbour loop does, so the
                // warm seed/support caches are exercised too.
                let mut engine = FixedPointEngine::new();
                for (j, known) in knowns.iter().enumerate() {
                    let reference =
                        sufficient_set_rebuild_reference(ranking, n, &pi, &index, known);
                    // Each known plays a distinct neighbour, then repeats as
                    // neighbour 9 so one per-neighbour state sees them all
                    // (growing and shrinking known — the rebuild path).
                    for neighbor in [SensorId(j as u32), SensorId(9)] {
                        assert_eq!(
                            engine
                                .sufficient_set(
                                    ranking,
                                    n,
                                    &pi,
                                    Some(&index),
                                    neighbor,
                                    known,
                                    (7, j as u64),
                                )
                                .as_ref(),
                            &reference,
                            "engine diverges from the reference (n={n})"
                        );
                    }
                    assert_eq!(
                        sufficient_set_indexed(ranking, n, &pi, &index, known),
                        reference,
                        "one-shot wrapper diverges from the reference (n={n})"
                    );
                }
            }
        }
    }

    /// A revision move must invalidate the engine's seed and support caches:
    /// replaying an old revision number against changed contents would
    /// otherwise serve stale sets.
    #[test]
    fn engine_caches_are_invalidated_when_the_revision_moves() {
        let mut engine = FixedPointEngine::new();
        let j = SensorId(2);
        let pi_a = section_5_1_pi();
        let index_a = AnyIndex::build(IndexStrategy::Auto, &pi_a);
        let from_engine = engine.sufficient_set(
            &NnDistance,
            1,
            &pi_a,
            Some(&index_a),
            j,
            &PointSet::new(),
            (1, 0),
        );
        assert_eq!(*from_engine, sufficient_set(&NnDistance, 1, &pi_a, &PointSet::new()));
        // The window slides: one point leaves, one arrives.
        let mut pi_b = pi_a.clone();
        pi_b.discard(&pt(1, 0, 0.5).key);
        pi_b.insert(pt(1, 99, -20.0));
        let index_b = AnyIndex::build(IndexStrategy::Auto, &pi_b);
        let from_engine = engine.sufficient_set(
            &NnDistance,
            1,
            &pi_b,
            Some(&index_b),
            j,
            &PointSet::new(),
            (2, 0),
        );
        assert_eq!(*from_engine, sufficient_set(&NnDistance, 1, &pi_b, &PointSet::new()));
    }
}
