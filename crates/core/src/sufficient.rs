//! The sufficient-set computation of equation (2).
//!
//! Before talking to a neighbour `p_j`, a sensor `p_i` must decide which of
//! its points could change `p_j`'s estimate if sent. A set `Z_j ⊆ P_i` is
//! *sufficient* for `p_j` (eq. 2) if it contains
//!
//! 1. `p_i`'s own estimate and its support,
//!    `O_n(P_i) ∪ [P_i | O_n(P_i)]`, and
//! 2. the support (over `P_i`) of what `p_i` believes `p_j`'s estimate would
//!    become after receiving `Z_j`:
//!    `[P_i | O_n(D^i_{i,j} ∪ D^i_{j,i} ∪ Z_j)] ⊆ Z_j`.
//!
//! The second condition is self-referential, so the algorithm computes `Z_j`
//! as a least fixed point: start from (1) and keep adding the support of the
//! hypothetical estimate until nothing changes. Only `Z_j` minus what the
//! neighbour provably already has is transmitted.

use wsn_data::PointSet;
use wsn_ranking::function::support_of_set_indexed;
use wsn_ranking::index::{AnyIndex, IndexStrategy, NeighborIndex};
use wsn_ranking::{top_n_outliers, top_n_outliers_indexed, RankingFunction};

/// Computes a set `Z_j` satisfying equation (2) for one neighbour.
///
/// * `pi` — the points this sensor currently holds (`P_i`),
/// * `known_common` — the points this sensor knows it shares with the
///   neighbour (`D^i_{i,j} ∪ D^i_{j,i}`),
/// * `n` — the number of outliers to report.
///
/// The result always contains `O_n(P_i) ∪ [P_i|O_n(P_i)]`, is closed under
/// the fixed-point rule above, and is a subset of `pi`. The algorithm figure
/// notes the result "is not guaranteed to be the smallest set to do so" —
/// the same applies here.
///
/// A spatial neighbour index over `pi` is built once and reused by every
/// rank and support query of the fixed point; callers that evaluate several
/// neighbours against the same `P_i` (one per neighbour, as both detectors
/// do) should build the index once themselves and call
/// [`sufficient_set_indexed`].
pub fn sufficient_set<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    known_common: &PointSet,
) -> PointSet {
    let index = AnyIndex::build(IndexStrategy::Auto, pi);
    sufficient_set_indexed(ranking, n, pi, &index, known_common)
}

/// [`sufficient_set`] over a pre-built neighbour index of `pi`.
///
/// `index` must have been built over exactly `pi`. The result is
/// bit-identical to the unindexed computation: the index returns the same
/// deterministically tie-broken neighbour orderings as the brute path, so
/// the fixed point walks through the same intermediate sets.
pub fn sufficient_set_indexed<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    index: &dyn NeighborIndex,
    known_common: &PointSet,
) -> PointSet {
    let own_estimate = top_n_outliers_indexed(ranking, n, pi, index);
    let own_estimate_set = own_estimate.to_point_set();
    let mut z = own_estimate_set.union(&support_of_set_indexed(ranking, index, &own_estimate_set));

    // Fixed point: Z_j ← Z_j ∪ [P_i | O_n(D_ij ∪ D_ji ∪ Z_j)].
    loop {
        let hypothetical = known_common.union(&z);
        let neighbour_estimate = top_n_outliers(ranking, n, &hypothetical).to_point_set();
        let support = support_of_set_indexed(ranking, index, &neighbour_estimate);
        if support.is_subset_of(&z) {
            break;
        }
        z.extend_from(&support);
    }
    z
}

/// Convenience wrapper: the points of `Z_j` that actually need transmitting,
/// i.e. `Z_j \ (D^i_{i,j} ∪ D^i_{j,i})`.
pub fn points_to_send<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    pi: &PointSet,
    known_common: &PointSet,
) -> PointSet {
    sufficient_set(ranking, n, pi, known_common).difference(known_common)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::{DataPoint, Epoch, SensorId, Timestamp};
    use wsn_ranking::function::support_of_set;
    use wsn_ranking::{KnnAverageDistance, NnDistance};

    fn pt(origin: u32, epoch: u64, v: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::ZERO, vec![v]).unwrap()
    }

    /// The dataset of sensor p_i in the §5.1 walk-through with a = 15.
    fn section_5_1_pi() -> PointSet {
        let mut values = vec![0.5, 3.0, 6.0];
        values.extend((10..=15).map(f64::from));
        values.iter().enumerate().map(|(e, v)| pt(1, e as u64, *v)).collect()
    }

    #[test]
    fn first_exchange_of_the_paper_example_sends_a_handful_of_points() {
        // §5.1 step 1: the paper's run (with its tie-breaking) sends {3, 6}.
        // Our tie-breaking order resolves the rank tie between 3 and 6 the
        // other way, which additionally pulls in 0.5 — still a tiny fraction
        // of P_i, still containing the eventual answer, and still a valid
        // sufficient set per equation (2).
        let pi = section_5_1_pi();
        let z = sufficient_set(&NnDistance, 1, &pi, &PointSet::new());
        let mut values: Vec<f64> = z.iter().map(|p| p.features[0]).collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(values, vec![0.5, 3.0, 6.0]);
        let to_send = points_to_send(&NnDistance, 1, &pi, &PointSet::new());
        assert_eq!(to_send.len(), 3);
        assert!(to_send.len() < pi.len() / 2, "far less than centralizing all of P_i");
    }

    #[test]
    fn third_step_of_the_paper_example_sends_only_half() {
        // §5.1 step 3: after receiving {4}, p_i holds {0.5, 3, 4, 6, 10..a},
        // knows {3, 4, 6} is common, and must send exactly {0.5}.
        let mut pi = section_5_1_pi();
        pi.insert(pt(2, 100, 4.0));
        let known: PointSet =
            vec![pt(1, 1, 3.0), pt(1, 2, 6.0), pt(2, 100, 4.0)].into_iter().collect();
        let to_send = points_to_send(&NnDistance, 1, &pi, &known);
        let values: Vec<f64> = to_send.iter().map(|p| p.features[0]).collect();
        assert_eq!(values, vec![0.5]);
    }

    #[test]
    fn sufficient_set_satisfies_equation_2() {
        let pi = section_5_1_pi();
        let known: PointSet = vec![pt(1, 2, 6.0)].into_iter().collect();
        for n in 1..4 {
            for ranking in
                [&NnDistance as &dyn wsn_ranking::RankingFunction, &KnnAverageDistance::new(2)]
            {
                let z = sufficient_set(ranking, n, &pi, &known);
                // (a) Z ⊆ P_i.
                assert!(z.is_subset_of(&pi));
                // (b) O_n(P_i) ∪ [P_i|O_n(P_i)] ⊆ Z.
                let own = top_n_outliers(ranking, n, &pi).to_point_set();
                assert!(own.is_subset_of(&z));
                assert!(support_of_set(ranking, &pi, &own).is_subset_of(&z));
                // (c) [P_i | O_n(D_ij ∪ D_ji ∪ Z)] ⊆ Z.
                let hypothetical = known.union(&z);
                let est = top_n_outliers(ranking, n, &hypothetical).to_point_set();
                assert!(support_of_set(ranking, &pi, &est).is_subset_of(&z));
            }
        }
    }

    #[test]
    fn nothing_needs_sending_once_everything_is_common() {
        let pi = section_5_1_pi();
        let z = sufficient_set(&NnDistance, 1, &pi, &pi);
        // Z is still well-defined (the estimate and its support) …
        assert!(!z.is_empty());
        // … but the difference against the common knowledge is empty.
        assert!(points_to_send(&NnDistance, 1, &pi, &pi).is_empty());
    }

    #[test]
    fn empty_dataset_yields_empty_sets() {
        let empty = PointSet::new();
        assert!(sufficient_set(&NnDistance, 3, &empty, &empty).is_empty());
        assert!(points_to_send(&NnDistance, 3, &empty, &empty).is_empty());
    }

    #[test]
    fn sufficient_set_is_much_smaller_than_pi_for_clustered_data() {
        // The whole reason the algorithm saves bandwidth: only outliers and
        // their supports travel, not the bulk of the data.
        let mut points = Vec::new();
        for e in 0..200 {
            points.push(pt(1, e, 100.0 + (e % 10) as f64 * 0.01));
        }
        points.push(pt(1, 200, 0.5)); // one clear outlier
        let pi: PointSet = points.into_iter().collect();
        let z = sufficient_set(&NnDistance, 2, &pi, &PointSet::new());
        assert!(z.len() <= 8, "sufficient set has {} points", z.len());
        assert!(z.iter().any(|p| p.features[0] == 0.5));
    }

    #[test]
    fn larger_n_never_shrinks_the_sufficient_set() {
        let pi = section_5_1_pi();
        let z1 = sufficient_set(&NnDistance, 1, &pi, &PointSet::new());
        let z3 = sufficient_set(&NnDistance, 3, &pi, &PointSet::new());
        assert!(z1.len() <= z3.len());
    }
}
