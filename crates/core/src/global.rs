//! The global distributed outlier detection algorithm (§5, Algorithm 1).
//!
//! Every sensor `p_i` keeps
//!
//! * `P_i` — the points it currently holds (its own samples plus everything
//!   it has received), stored in a sliding window,
//! * `D^i_{i,j}` — the points it has sent to each neighbour `p_j`, and
//! * `D^i_{j,i}` — the points it has received from each neighbour,
//!
//! and, whenever any local event fires, computes for every neighbour a
//! *sufficient set* `Z_j` (equation (2), see [`crate::sufficient`]), sends
//! `Z_j` minus what it already knows the neighbour has, and records the sent
//! points. Communication stops exactly when every sensor individually finds
//! nothing left to send; Theorems 1 and 2 guarantee that at that moment all
//! estimates agree and equal the true `O_n(⋃_i D_i)`.

use crate::detector::OutlierDetector;
use crate::ledger::{fold_min_timestamp, QuietLedger};
use crate::message::OutlierBroadcast;
use crate::persist::{self, PersistError};
use crate::sufficient::FixedPointEngine;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, PointSet, SensorId, SlidingWindow, Timestamp};
use wsn_json::JsonValue;
use wsn_ranking::{top_n_outliers, OutlierEstimate, RankingFunction};

/// Per-sensor state of the global algorithm.
#[derive(Debug, Clone)]
pub struct GlobalNode<R> {
    id: SensorId,
    ranking: R,
    n: usize,
    window: SlidingWindow,
    /// Per neighbour, the points this node knows the neighbour holds —
    /// `D^i_{i,j} ∪ D^i_{j,i}`, maintained **incrementally**: every recorded
    /// send and every receipt inserts into it, window slides evict from it.
    /// The sufficient-set computation only ever reads the union, so keeping
    /// the two directions merged saves re-unioning them per neighbour per
    /// event.
    shared_with: BTreeMap<SensorId, PointSet>,
    /// The smallest timestamp ever inserted into any shared-knowledge set
    /// and still possibly present (conservative: never later than the true
    /// minimum). Clock advances whose cutoff does not pass it skip the
    /// whole per-neighbour eviction sweep in O(1) — the common case, since
    /// every delivery advances the clock but only window slides evict.
    shared_oldest: Option<Timestamp>,
    points_sent: u64,
    points_received: u64,
    /// Per-neighbour revision bookkeeping behind the "nothing to send" memo:
    /// while neither the window nor a neighbour's `sent_to` / `recv_from`
    /// sets change, [`OutlierDetector::process`] skips that neighbour
    /// outright — the sufficient-set computation is a pure function of those
    /// inputs, so replaying the empty outcome is bit-identical. This is what
    /// keeps the post-convergence chatter (every delivery triggers a full
    /// process pass) from re-running one fixed point per neighbour per
    /// event.
    ledger: QuietLedger,
    /// The reusable sufficient-set evaluator: its seed and support caches
    /// are keyed to the window revision (rolled forward on first use after a
    /// window change), so the per-neighbour fixed points of one protocol
    /// step — and of every later step at the same revision — share the
    /// `O_n(P_i)` seed and all `[P_i|x]` support queries.
    engine: FixedPointEngine,
    /// Silence threshold in seconds after which a neighbour is presumed dead
    /// and its per-neighbour state pruned (`None` = disabled, the default —
    /// the paper assumes a static network).
    liveness_timeout_secs: Option<f64>,
    /// The clock of the most recent [`OutlierDetector::advance_time`] call —
    /// the node's notion of "now" for liveness bookkeeping.
    last_now: Timestamp,
    /// When each neighbour was last heard from (entry created at first
    /// receipt, or at the first send attempt so silent-from-the-start
    /// neighbours also age out). Maintained only while the timeout is on.
    last_heard: BTreeMap<SensorId, Timestamp>,
    /// Neighbours aged out by the timeout: skipped by
    /// [`OutlierDetector::process`] until they speak again, at which point
    /// they re-sync from scratch.
    presumed_dead: BTreeSet<SensorId>,
}

impl<R: RankingFunction> GlobalNode<R> {
    /// Creates the state for sensor `id`, reporting the top `n` outliers
    /// under `ranking` over a sliding window configured by `window`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — the paper's problem statement requires at
    /// least one outlier to be reported.
    pub fn new(id: SensorId, ranking: R, n: usize, window: WindowConfig) -> Self {
        assert!(n > 0, "the number of reported outliers n must be at least 1");
        GlobalNode {
            id,
            ranking,
            n,
            window: SlidingWindow::new(window),
            shared_with: BTreeMap::new(),
            shared_oldest: None,
            points_sent: 0,
            points_received: 0,
            ledger: QuietLedger::new(),
            engine: FixedPointEngine::new(),
            liveness_timeout_secs: None,
            last_now: Timestamp::ZERO,
            last_heard: BTreeMap::new(),
            presumed_dead: BTreeSet::new(),
        }
    }

    /// Enables the staleness liveness timeout: a neighbour not heard from
    /// for more than `secs` seconds is presumed dead, its per-neighbour
    /// state (shared-knowledge set, ledger bookkeeping, fixed-point chain)
    /// is pruned, and it is excluded from processing until it speaks again —
    /// at which point it re-syncs from scratch, like a brand-new neighbour.
    pub fn with_liveness_timeout(mut self, secs: f64) -> Self {
        self.liveness_timeout_secs = Some(secs);
        self
    }

    /// Whether this node currently retains any per-neighbour protocol state
    /// for `neighbor` (diagnostics: the churn tests assert dead neighbours
    /// leak nothing).
    pub fn shares_state_with(&self, neighbor: SensorId) -> bool {
        self.shared_with.contains_key(&neighbor)
            || self.engine.tracks_neighbor(neighbor)
            || self.last_heard.contains_key(&neighbor)
    }

    /// Whether the liveness timeout has aged `neighbor` out.
    pub fn presumes_dead(&self, neighbor: SensorId) -> bool {
        self.presumed_dead.contains(&neighbor)
    }

    /// Drops all per-neighbour state for `neighbor` (shared-knowledge set,
    /// revision bookkeeping, cached fixed-point chain, liveness entry).
    fn forget_neighbor(&mut self, neighbor: SensorId) {
        self.shared_with.remove(&neighbor);
        self.ledger.forget(neighbor);
        self.engine.forget_neighbor(neighbor);
        self.last_heard.remove(&neighbor);
    }

    /// The ranking function in use.
    pub fn ranking(&self) -> &R {
        &self.ranking
    }

    /// Total data points this node has put on the air so far.
    pub fn points_sent(&self) -> u64 {
        self.points_sent
    }

    /// Total data points this node has accepted from neighbours so far.
    pub fn points_received(&self) -> u64 {
        self.points_received
    }

    /// The points this node knows it shares with `neighbor`
    /// (`D^i_{i,j} ∪ D^i_{j,i}`). The returned set shares the stored points.
    pub fn known_common_with(&self, neighbor: SensorId) -> PointSet {
        self.shared_with.get(&neighbor).cloned().unwrap_or_default()
    }

    /// Convenience constructor of local observations for this node, used by
    /// tests and examples.
    pub fn local_point(
        &self,
        epoch: u64,
        timestamp: Timestamp,
        features: Vec<f64>,
    ) -> Result<DataPoint, wsn_data::DataError> {
        DataPoint::new(self.id, wsn_data::Epoch(epoch), timestamp, features)
    }

    /// Serializes this node's complete canonical protocol state for
    /// [`crate::persist`]: window, per-neighbour shared-knowledge sets,
    /// quiet ledger, the engine's per-neighbour chains, traffic counters
    /// and liveness bookkeeping. Derived caches (spatial index, rank
    /// bounds, seed/support caches) are not included —
    /// [`GlobalNode::persist_restore`] rebuilds them cold with identical
    /// outputs.
    pub fn persist_snapshot(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::from("global")),
            ("id".into(), JsonValue::from(self.id.raw())),
            ("n".into(), JsonValue::from(self.n)),
            ("liveness_timeout_secs".into(), persist::opt_f64_to_json(self.liveness_timeout_secs)),
            ("window".into(), persist::snapshot_window(&self.window)),
            ("shared_with".into(), persist::sets_by_id_to_json(&self.shared_with)),
            (
                "shared_oldest".into(),
                persist::opt_u64_to_json(self.shared_oldest.map(|t| t.as_micros())),
            ),
            ("points_sent".into(), JsonValue::from(self.points_sent)),
            ("points_received".into(), JsonValue::from(self.points_received)),
            ("ledger".into(), persist::ledger_to_json(&self.ledger)),
            ("engine".into(), persist::engine_to_json(&self.engine)),
            ("last_now".into(), JsonValue::from(self.last_now.as_micros())),
            ("last_heard".into(), persist::times_by_id_to_json(&self.last_heard)),
            ("presumed_dead".into(), persist::ids_to_json(self.presumed_dead.iter().copied())),
        ])
    }

    /// Installs a [`GlobalNode::persist_snapshot`] into this node. The node
    /// must already be configured identically to the snapshotted one (same
    /// id, `n`, window length and liveness timeout) — mismatches are
    /// refused, not papered over.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] for malformed dumps,
    /// [`PersistError::Mismatch`] when the snapshot belongs to a different
    /// node or configuration. On error the node is left untouched.
    pub fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError> {
        persist::expect_kind(dump, "global")?;
        let id = persist::u32_field(dump, "id")?;
        if id != self.id.raw() {
            return Err(PersistError::Mismatch(format!(
                "snapshot is for sensor {id}, restoring into sensor {}",
                self.id.raw()
            )));
        }
        let n = persist::usize_field(dump, "n")?;
        if n != self.n {
            return Err(PersistError::Mismatch(format!(
                "snapshot reports top-{n}, this node reports top-{}",
                self.n
            )));
        }
        if persist::opt_f64_field(dump, "liveness_timeout_secs")? != self.liveness_timeout_secs {
            return Err(PersistError::Mismatch("liveness timeout differs".into()));
        }
        let window = persist::restore_window(persist::field(dump, "window")?)?;
        if window.config().length_micros != self.window.config().length_micros {
            return Err(PersistError::Mismatch(format!(
                "snapshot window is {}µs long, this node's is {}µs",
                window.config().length_micros,
                self.window.config().length_micros
            )));
        }
        let shared_with = persist::sets_by_id_from_json(persist::field(dump, "shared_with")?)?;
        let shared_oldest =
            persist::opt_u64_field(dump, "shared_oldest")?.map(Timestamp::from_micros);
        let points_sent = persist::u64_field(dump, "points_sent")?;
        let points_received = persist::u64_field(dump, "points_received")?;
        let ledger = persist::ledger_from_json(persist::field(dump, "ledger")?)?;
        let engine_dumps = persist::engine_dumps_from_json(persist::field(dump, "engine")?)?;
        let last_now = Timestamp::from_micros(persist::u64_field(dump, "last_now")?);
        let last_heard = persist::times_by_id_from_json(persist::field(dump, "last_heard")?)?;
        let presumed_dead: BTreeSet<SensorId> =
            persist::ids_from_json(persist::field(dump, "presumed_dead")?)?.into_iter().collect();
        self.window = window;
        self.shared_with = shared_with;
        self.shared_oldest = shared_oldest;
        self.points_sent = points_sent;
        self.points_received = points_received;
        self.ledger = ledger;
        self.engine.restore_neighbor_states(engine_dumps);
        self.last_now = last_now;
        self.last_heard = last_heard;
        self.presumed_dead = presumed_dead;
        Ok(())
    }
}

impl<R: RankingFunction> OutlierDetector for GlobalNode<R> {
    fn id(&self) -> SensorId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    fn add_local_points(&mut self, points: Vec<DataPoint>) {
        for mut p in points {
            p.hop = 0;
            let p = Arc::new(p);
            if self.window.insert_arc(Arc::clone(&p)) {
                self.engine.note_window_point(&p, self.window.revision());
            }
        }
    }

    fn receive(&mut self, from: SensorId, points: Vec<DataPoint>) {
        self.receive_arcs(from, points.into_iter().map(Arc::new).collect());
    }

    fn receive_arcs(&mut self, from: SensorId, points: Vec<Arc<DataPoint>>) {
        if self.liveness_timeout_secs.is_some() {
            self.last_heard.insert(from, self.last_now);
            self.presumed_dead.remove(&from);
        }
        let shared = self.shared_with.entry(from).or_default();
        let mut fresh: Vec<Arc<DataPoint>> = Vec::new();
        for p in points {
            // Record that the neighbour holds this point whether or not it is
            // new to us; both facts suppress future redundant sends. The
            // bookkeeping set, the window and the sender's copy all share
            // one allocation. (A point we previously sent to this neighbour
            // is already recorded, so its echo changes nothing.)
            if shared.insert_arc(Arc::clone(&p)) {
                fresh.push(Arc::clone(&p));
            }
            if self.window.insert_arc(Arc::clone(&p)) {
                self.points_received += 1;
                self.engine.note_window_point(&p, self.window.revision());
            }
        }
        if !fresh.is_empty() {
            self.ledger.bump(from);
            // Hand the engine the exact delta so its cached hypothetical
            // set follows the bookkeeping revision without re-scans.
            let revision = self.ledger.state(from, 0).1;
            self.engine.note_shared_points(from, &fresh, revision);
        }
        if let Some(min_ts) = fresh.iter().map(|p| p.timestamp).min() {
            fold_min_timestamp(&mut self.shared_oldest, min_ts);
        }
    }

    fn advance_time(&mut self, now: Timestamp) {
        self.last_now = now;
        if let Some(timeout) = self.liveness_timeout_secs {
            let stale: Vec<SensorId> = self
                .last_heard
                .iter()
                .filter(|(_, heard)| now.as_secs_f64() - heard.as_secs_f64() > timeout)
                .map(|(j, _)| *j)
                .collect();
            for j in stale {
                self.forget_neighbor(j);
                self.presumed_dead.insert(j);
                crate::telemetry::STALE_NEIGHBORS_PRUNED.add(1);
            }
        }
        self.window.advance_to(now);
        let cutoff = self.window.config().cutoff(now);
        self.ledger.evict_and_bump_gated(&mut self.shared_with, cutoff, &mut self.shared_oldest);
    }

    fn retain_neighbors(&mut self, live: &[SensorId]) {
        let tracked: BTreeSet<SensorId> = self
            .shared_with
            .keys()
            .copied()
            .chain(self.engine.tracked_neighbors())
            .chain(self.last_heard.keys().copied())
            .chain(self.presumed_dead.iter().copied())
            .collect();
        for j in tracked {
            if !live.contains(&j) {
                self.forget_neighbor(j);
                self.presumed_dead.remove(&j);
                crate::telemetry::STALE_NEIGHBORS_PRUNED.add(1);
            }
        }
    }

    fn process(&mut self, neighbors: &[SensorId]) -> Option<OutlierBroadcast> {
        // A zero-copy snapshot of P_i: the window is read, never cloned.
        // No index is built here: the engine maintains its own dynamic
        // index over the window, kept in sync by the insertion notes.
        let pi = self.window.snapshot();
        let revision = self.window.revision();
        let mut message = OutlierBroadcast::new();
        for &j in neighbors {
            if j == self.id || self.presumed_dead.contains(&j) {
                continue;
            }
            if self.liveness_timeout_secs.is_some() {
                // First contact attempt starts the liveness clock, so a
                // neighbour that never answers also ages out.
                self.last_heard.entry(j).or_insert(self.last_now);
            }
            let state = self.ledger.state(j, revision);
            if self.ledger.is_quiet(j, state) {
                // Neither P_i nor the shared-knowledge sets for j changed
                // since the last (empty) computation: same inputs, same
                // nothing-to-send outcome.
                continue;
            }
            // The shared-knowledge set is maintained incrementally; reading
            // it here is free.
            let known = self.shared_with.get(&j);
            let empty = PointSet::new();
            let known = known.unwrap_or(&empty);
            let z = self.engine.sufficient_set(&self.ranking, self.n, &pi, None, j, known, state);
            let to_send = z.difference(known);
            if to_send.is_empty() {
                self.ledger.mark_quiet(j, state);
                continue;
            }
            let batch: Vec<Arc<DataPoint>> = to_send.iter_arcs().cloned().collect();
            if let Some(min_ts) = batch.iter().map(|p| p.timestamp).min() {
                fold_min_timestamp(&mut self.shared_oldest, min_ts);
            }
            let shared = self.shared_with.entry(j).or_default();
            for p in &batch {
                shared.insert_arc(Arc::clone(p));
            }
            // Recording the send changes D^i_{i,j}: the cached quiet state
            // (if any) is stale by key and the revision moves on. The sent
            // points are already inside the engine's hypothetical set (they
            // came out of Z), so the note merely rolls its sync forward.
            self.ledger.bump(j);
            self.engine.note_shared_points(j, &batch, self.ledger.state(j, 0).1);
            self.points_sent += batch.len() as u64;
            crate::telemetry::POINTS_BROADCAST.add(batch.len() as u64);
            crate::telemetry::NEIGHBOR_BATCH_POINTS.record(batch.len() as u64);
            message.add_entry_arcs(j, batch);
        }
        if message.is_empty() {
            None
        } else {
            Some(message)
        }
    }

    fn estimate(&self) -> OutlierEstimate {
        top_n_outliers(&self.ranking, self.n, self.window.contents())
    }

    fn held_points(&self) -> &PointSet {
        self.window.contents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::Epoch;
    use wsn_ranking::{KnnAverageDistance, NnDistance};

    fn pt(origin: u32, epoch: u64, v: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::from_secs(1), vec![v]).unwrap()
    }

    fn window() -> WindowConfig {
        WindowConfig::from_secs(1_000).unwrap()
    }

    fn section_5_1_nodes(a: u64, b: u64) -> (GlobalNode<NnDistance>, GlobalNode<NnDistance>) {
        let mut pi = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        let mut di = vec![0.5, 3.0, 6.0];
        di.extend((10..=a).map(|v| v as f64));
        pi.add_local_points(di.iter().enumerate().map(|(e, v)| pt(1, e as u64, *v)).collect());

        let mut pj = GlobalNode::new(SensorId(2), NnDistance, 1, window());
        let mut dj = vec![4.0, 5.0, 7.0, 8.0, 9.0];
        dj.extend((a + 1..=a + b).map(|v| v as f64));
        pj.add_local_points(dj.iter().enumerate().map(|(e, v)| pt(2, e as u64, *v)).collect());
        (pi, pj)
    }

    /// Runs the two-node exchange until neither node has anything to send,
    /// returning the number of data points exchanged.
    fn run_two_nodes(pi: &mut GlobalNode<NnDistance>, pj: &mut GlobalNode<NnDistance>) -> u64 {
        let mut exchanged = 0;
        for _ in 0..50 {
            let mut progress = false;
            if let Some(m) = pi.process(&[pj.id()]) {
                let pts = m.points_for(pj.id());
                exchanged += pts.len() as u64;
                pj.receive(pi.id(), pts);
                progress = true;
            }
            if let Some(m) = pj.process(&[pi.id()]) {
                let pts = m.points_for(pi.id());
                exchanged += pts.len() as u64;
                pi.receive(pj.id(), pts);
                progress = true;
            }
            if !progress {
                return exchanged;
            }
        }
        panic!("two-node exchange did not terminate");
    }

    #[test]
    fn n_must_be_positive() {
        let result =
            std::panic::catch_unwind(|| GlobalNode::new(SensorId(1), NnDistance, 0, window()));
        assert!(result.is_err());
    }

    #[test]
    fn section_5_1_converges_to_the_correct_outlier() {
        let (mut pi, mut pj) = section_5_1_nodes(20, 15);
        assert_eq!(pi.estimate().points()[0].features, vec![6.0]);
        let exchanged = run_two_nodes(&mut pi, &mut pj);
        // Both nodes agree on the correct global answer {0.5}.
        assert_eq!(pi.estimate().points()[0].features, vec![0.5]);
        assert_eq!(pj.estimate().points()[0].features, vec![0.5]);
        assert!(pi.estimate().same_outliers_as(&pj.estimate()));
        // Far less data moved than the centralized min{a-6, b+5} = 14 points.
        assert!(exchanged <= 8, "exchanged {exchanged} points");
        assert!(pi.points_sent() + pj.points_sent() == exchanged);
    }

    #[test]
    fn communication_is_proportional_to_outliers_not_data_size() {
        // Quadrupling the bulk of the data barely changes the exchange size.
        let (mut pi_small, mut pj_small) = section_5_1_nodes(20, 15);
        let small = run_two_nodes(&mut pi_small, &mut pj_small);
        let (mut pi_big, mut pj_big) = section_5_1_nodes(80, 60);
        let big = run_two_nodes(&mut pi_big, &mut pj_big);
        assert!(big <= small + 2, "big exchange {big} vs small {small}");
        // Centralizing would instead have cost min{a−6, b+5} = 65 points.
        assert!(big < 20);
    }

    #[test]
    fn termination_means_no_node_wants_to_send() {
        let (mut pi, mut pj) = section_5_1_nodes(15, 10);
        run_two_nodes(&mut pi, &mut pj);
        assert!(pi.process(&[SensorId(2)]).is_none());
        assert!(pj.process(&[SensorId(1)]).is_none());
    }

    #[test]
    fn supports_agree_at_termination_theorem_1() {
        let (mut pi, mut pj) = section_5_1_nodes(20, 15);
        run_two_nodes(&mut pi, &mut pj);
        let est_i = pi.estimate();
        let est_j = pj.estimate();
        assert!(est_i.same_outliers_as(&est_j));
        // The supports over each node's holdings also agree (Theorem 1 (ii)).
        let support_i = wsn_ranking::function::support_of_set(
            pi.ranking(),
            pi.held_points(),
            &est_i.to_point_set(),
        );
        let support_j = wsn_ranking::function::support_of_set(
            pj.ranking(),
            pj.held_points(),
            &est_j.to_point_set(),
        );
        assert_eq!(support_i, support_j);
    }

    #[test]
    fn works_with_knn_ranking_and_larger_n() {
        let w = window();
        let mut a = GlobalNode::new(SensorId(1), KnnAverageDistance::new(2), 2, w);
        let mut b = GlobalNode::new(SensorId(2), KnnAverageDistance::new(2), 2, w);
        a.add_local_points((0..20).map(|e| pt(1, e, 50.0 + e as f64 * 0.1)).collect());
        a.add_local_points(vec![pt(1, 100, 0.0)]);
        b.add_local_points((0..20).map(|e| pt(2, e, 52.0 + e as f64 * 0.1)).collect());
        b.add_local_points(vec![pt(2, 100, 200.0)]);

        let mut exchanged = 0;
        for _ in 0..50 {
            let mut progress = false;
            if let Some(m) = a.process(&[SensorId(2)]) {
                exchanged += m.point_count();
                b.receive(SensorId(1), m.points_for(SensorId(2)));
                progress = true;
            }
            if let Some(m) = b.process(&[SensorId(1)]) {
                exchanged += m.point_count();
                a.receive(SensorId(2), m.points_for(SensorId(1)));
                progress = true;
            }
            if !progress {
                break;
            }
        }
        // The two injected extremes are the agreed global top-2.
        let estimate = a.estimate();
        assert!(estimate.same_outliers_as(&b.estimate()));
        let values: Vec<f64> = estimate.points().iter().map(|p| p.features[0]).collect();
        assert!(values.contains(&0.0));
        assert!(values.contains(&200.0));
        assert!(exchanged < 20);
    }

    #[test]
    fn receive_records_points_even_if_already_held() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        let shared = pt(1, 0, 5.0);
        node.add_local_points(vec![shared.clone(), pt(1, 1, 6.0)]);
        node.receive(SensorId(2), vec![shared.clone()]);
        // The point was already held, so it does not count as new data …
        assert_eq!(node.points_received(), 0);
        // … but the node now knows the neighbour has it.
        assert!(node.known_common_with(SensorId(2)).contains(&shared));
        assert!(node.known_common_with(SensorId(3)).is_empty());
    }

    #[test]
    fn window_eviction_also_cleans_the_bookkeeping_sets() {
        let mut node =
            GlobalNode::new(SensorId(1), NnDistance, 1, WindowConfig::from_secs(10).unwrap());
        let old =
            DataPoint::new(SensorId(2), Epoch(0), Timestamp::from_secs(1), vec![1.0]).unwrap();
        node.receive(SensorId(2), vec![old.clone()]);
        assert!(node.known_common_with(SensorId(2)).contains(&old));
        node.advance_time(Timestamp::from_secs(60));
        assert!(node.held_points().is_empty());
        assert!(node.known_common_with(SensorId(2)).is_empty());
    }

    #[test]
    fn processing_with_no_neighbors_or_no_data_sends_nothing() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        assert!(node.process(&[]).is_none());
        assert!(node.process(&[SensorId(2)]).is_none());
        node.add_local_points(vec![pt(1, 0, 1.0)]);
        // A single point is its own estimate; the neighbour needs to know.
        assert!(node.process(&[SensorId(2)]).is_some());
        // Self is never a recipient.
        assert!(node.process(&[SensorId(1)]).is_none());
    }

    #[test]
    fn repeated_processing_without_new_events_is_idempotent() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        node.add_local_points((0..10).map(|e| pt(1, e, e as f64)).collect());
        let first = node.process(&[SensorId(2)]);
        assert!(first.is_some());
        // Everything sufficient has been recorded as sent: nothing new to say.
        assert!(node.process(&[SensorId(2)]).is_none());
        // A new neighbour, however, still needs the same points.
        assert!(node.process(&[SensorId(3)]).is_some());
    }

    #[test]
    fn dead_neighbor_state_is_pruned_and_pins_no_points() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        node.add_local_points((0..5).map(|e| pt(1, e, e as f64)).collect());
        let p = Arc::new(pt(2, 0, 100.0));
        node.receive_arcs(SensorId(2), vec![Arc::clone(&p)]);
        let _ = node.process(&[SensorId(2)]);
        assert!(node.shares_state_with(SensorId(2)));
        // The neighbour dies. Without pruning, the engine's cached
        // fixed-point state would pin its points beyond the window lifetime.
        node.retain_neighbors(&[]);
        assert!(!node.shares_state_with(SensorId(2)));
        node.advance_time(Timestamp::from_secs(5_000));
        // One protocol step against a live neighbour rolls the engine's
        // revision-scoped own-window caches forward. The dead neighbour's
        // hypothetical-set state would survive that roll — only the explicit
        // prune above removes it, which is exactly what this test pins down.
        let _ = node.process(&[SensorId(3)]);
        assert_eq!(Arc::strong_count(&p), 1, "only the test handle remains");
    }

    #[test]
    fn retain_neighbors_keeps_live_neighbors_untouched() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        node.add_local_points(vec![pt(1, 0, 1.0)]);
        node.receive(SensorId(2), vec![pt(2, 0, 2.0)]);
        node.receive(SensorId(3), vec![pt(3, 0, 3.0)]);
        node.retain_neighbors(&[SensorId(3)]);
        assert!(!node.shares_state_with(SensorId(2)));
        assert!(node.known_common_with(SensorId(2)).is_empty());
        assert!(!node.known_common_with(SensorId(3)).is_empty());
    }

    #[test]
    fn silent_neighbors_age_out_and_resync_on_return() {
        let mut node =
            GlobalNode::new(SensorId(1), NnDistance, 1, window()).with_liveness_timeout(30.0);
        node.advance_time(Timestamp::from_secs(1));
        node.add_local_points(vec![pt(1, 0, 1.0), pt(1, 1, 5.0)]);
        assert!(node.process(&[SensorId(2)]).is_some());
        // The neighbour never answers: past the timeout it is presumed dead
        // and its bookkeeping is gone.
        node.advance_time(Timestamp::from_secs(40));
        assert!(node.presumes_dead(SensorId(2)));
        assert!(!node.shares_state_with(SensorId(2)));
        assert!(node.process(&[SensorId(2)]).is_none(), "presumed-dead neighbours are skipped");
        // …until it speaks again, at which point it re-syncs from scratch.
        node.receive(SensorId(2), vec![pt(2, 0, 7.0)]);
        assert!(!node.presumes_dead(SensorId(2)));
        assert!(node.process(&[SensorId(2)]).is_some(), "the returned neighbour is re-synced");
    }

    #[test]
    fn liveness_timeout_off_never_presumes_death() {
        let mut node = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        node.advance_time(Timestamp::from_secs(1));
        node.add_local_points(vec![pt(1, 0, 1.0)]);
        let _ = node.process(&[SensorId(2)]);
        node.advance_time(Timestamp::from_secs(900));
        assert!(!node.presumes_dead(SensorId(2)));
    }

    #[test]
    fn persist_snapshot_round_trips_mid_protocol() {
        let (mut pi, mut pj) = section_5_1_nodes(20, 15);
        // Freeze the node mid-exchange, with live per-neighbour state.
        if let Some(m) = pi.process(&[pj.id()]) {
            pj.receive(pi.id(), m.points_for(pj.id()));
        }
        if let Some(m) = pj.process(&[pi.id()]) {
            pi.receive(pj.id(), m.points_for(pi.id()));
        }
        let dump = pi.persist_snapshot();
        let mut fresh = GlobalNode::new(SensorId(1), NnDistance, 1, window());
        fresh.persist_restore(&dump).unwrap();
        assert_eq!(fresh.persist_snapshot(), dump, "restore is lossless");
        // The restored node continues the protocol identically.
        assert_eq!(fresh.process(&[pj.id()]), pi.process(&[pj.id()]));
        assert!(fresh.estimate().same_outliers_as(&pi.estimate()));
        // A differently configured node refuses the snapshot.
        let mut other = GlobalNode::new(SensorId(9), NnDistance, 1, window());
        assert!(matches!(other.persist_restore(&dump), Err(PersistError::Mismatch(_))));
        let mut other_n = GlobalNode::new(SensorId(1), NnDistance, 2, window());
        assert!(matches!(other_n.persist_restore(&dump), Err(PersistError::Mismatch(_))));
    }

    #[test]
    fn local_point_constructor_uses_the_node_id() {
        let node = GlobalNode::new(SensorId(9), NnDistance, 1, window());
        let p = node.local_point(3, Timestamp::from_secs(2), vec![1.0]).unwrap();
        assert_eq!(p.key.origin, SensorId(9));
        assert_eq!(p.key.epoch, Epoch(3));
    }
}
