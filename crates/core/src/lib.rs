//! # wsn-core
//!
//! The primary contribution of *In-Network Outlier Detection in Wireless
//! Sensor Networks* (Branch et al., ICDCS 2006), reproduced as a Rust
//! library:
//!
//! * [`global`] — the **global distributed outlier detection algorithm**
//!   (§5, Algorithm 1): every sensor converges, using only single-hop
//!   broadcasts of carefully chosen *sufficient* points, to the exact top-`n`
//!   outliers `O_n(D)` of the union of all sensors' data.
//! * [`semiglobal`] — the **semi-global algorithm** (§6, Algorithm 2): each
//!   sensor computes the outliers of the data held within `d` hops of it,
//!   using hop-annotated points.
//! * [`sufficient`] — the sufficient-set computation of equation (2), the
//!   kernel both algorithms share. It runs on the spatial neighbour indexes
//!   of [`wsn_ranking::index`]; [`cache`] keeps one index per window
//!   revision so a protocol step's per-neighbour fixed points share it and
//!   it is invalidated exactly when the window slides.
//! * [`centralized`] — the **centralized baseline** of the evaluation (§7.1):
//!   every node periodically ships its sliding window to a sink over AODV,
//!   the sink computes the outliers and sends them back.
//! * [`detector`], [`app`] — a common node-protocol interface and the adapter
//!   that runs any detector on the [`wsn_netsim`] simulator with periodic
//!   sampling from a trace and sliding-window eviction (§5.3).
//! * [`metrics`] — ground truth, convergence and accuracy metrics (§7.2).
//! * [`experiment`] — reusable experiment runner used by the examples and by
//!   the figure-reproduction harness in `wsn-bench`.
//!
//! # Example: the two-sensor walk-through of §5.1
//!
//! ```
//! use wsn_core::detector::OutlierDetector;
//! use wsn_core::global::GlobalNode;
//! use wsn_data::window::WindowConfig;
//! use wsn_data::{DataPoint, Epoch, SensorId, Timestamp};
//! use wsn_ranking::NnDistance;
//!
//! let mk = |sensor: u32, epoch: u64, v: f64| {
//!     DataPoint::new(SensorId(sensor), Epoch(epoch), Timestamp::ZERO, vec![v]).unwrap()
//! };
//! let window = WindowConfig::from_secs(1_000).unwrap();
//! let mut pi = GlobalNode::new(SensorId(1), NnDistance, 1, window);
//! let di: Vec<f64> = [0.5, 3.0, 6.0].iter().copied().chain((10..=15).map(f64::from)).collect();
//! pi.add_local_points(di.iter().enumerate().map(|(e, v)| mk(1, e as u64, *v)).collect());
//!
//! // Before exchanging anything, p_i believes the outlier is 6.
//! assert_eq!(pi.estimate().points()[0].features, vec![6.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod cache;
pub mod centralized;
pub mod detector;
pub mod error;
pub mod experiment;
pub mod global;
mod ledger;
pub mod message;
pub mod metrics;
pub mod persist;
pub mod semiglobal;
pub mod streaming;
pub mod sufficient;
mod telemetry;

pub use detector::OutlierDetector;
pub use error::CoreError;
pub use global::GlobalNode;
pub use message::OutlierBroadcast;
pub use persist::PersistError;
pub use semiglobal::SemiGlobalNode;
pub use streaming::{SlideReport, StreamingExperiment, StreamingOutcome};
