//! The centralized baseline of the evaluation (§7.1).
//!
//! "All nodes periodically sent their sliding window contents to a central
//! node which detected outliers based on the unioned data sets and returned
//! the outliers back to the nodes." Transport is the AODV-style multi-hop
//! routing layer of [`wsn_netsim::routing`] with end-to-end acknowledgements;
//! every hop of every report is unicast, every in-range node overhears it,
//! and all of it is charged to the energy model — which is exactly the
//! traffic-funnel effect around the sink that the paper's figures expose.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::app::SamplingSchedule;
use crate::cache::RevisionCache;
use crate::persist::{self, PersistError};
use wsn_data::stream::SensorStream;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, PointSet, SensorId, SlidingWindow};
use wsn_json::JsonValue;
use wsn_netsim::routing::{AodvMessage, AodvRouter};
use wsn_netsim::sim::{Application, NodeContext, TimerId};
use wsn_ranking::index::{AnyIndex, IndexStrategy};
use wsn_ranking::{top_n_outliers, top_n_outliers_indexed, OutlierEstimate, RankingFunction};

/// Fixed header bytes of a centralized-protocol payload (type tag, source id,
/// point count).
pub const CENTRALIZED_HEADER_BYTES: usize = 8;

/// Timer-id offset distinguishing the sink's per-round "return the outliers
/// to the nodes" timers from the sampling timers (whose ids are the round
/// numbers).
const REPLY_TIMER_BASE: TimerId = 1 << 32;

/// Fraction of the sampling interval the sink waits after sampling before
/// computing the round's answer and returning it, leaving time for the
/// round's multi-hop reports to arrive.
const REPLY_DELAY_FRACTION: f64 = 0.6;

/// Application payload carried over the routing layer by the centralized
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CentralizedPayload {
    /// A node's full sliding-window contents, shipped to the sink.
    WindowReport {
        /// The reporting sensor.
        source: SensorId,
        /// Every point currently in the reporter's window.
        points: Vec<DataPoint>,
    },
    /// The sink's current outlier answer, returned to a reporting node.
    OutlierResult {
        /// The outliers, in descending rank order.
        points: Vec<DataPoint>,
    },
}

impl CentralizedPayload {
    /// Bytes this payload occupies on the air (before routing headers).
    pub fn wire_size(&self) -> usize {
        let points = match self {
            CentralizedPayload::WindowReport { points, .. } => points,
            CentralizedPayload::OutlierResult { points } => points,
        };
        CENTRALIZED_HEADER_BYTES + points.iter().map(DataPoint::wire_size).sum::<usize>()
    }
}

/// The centralized baseline application run by every node (sink included).
///
/// Non-sink nodes sample their stream, keep a sliding window of their own
/// data, and ship the whole window to the sink every sampling round. The sink
/// keeps the latest reported window of every node, recomputes `O_n` over the
/// union after each report, and routes the answer back to the reporter.
#[derive(Debug, Clone)]
pub struct CentralizedApp<R> {
    id: SensorId,
    sink: SensorId,
    ranking: R,
    n: usize,
    window: SlidingWindow,
    stream: SensorStream,
    schedule: SamplingSchedule,
    router: AodvRouter<CentralizedPayload>,
    /// `true` once [`crate::app::install_sampling`] took over the sampling
    /// timers; until then the app self-schedules them (the safe fallback).
    batch_sampling: bool,
    /// Sink only: the latest window reported by each node (the sink's own
    /// window is merged in incrementally as well).
    collected: BTreeMap<SensorId, PointSet>,
    /// Sink only: the union of the sink's own window and every collected
    /// window, maintained incrementally — points are inserted or evicted as
    /// reports arrive and the sink's own window slides, never rebuilt from
    /// scratch. All points are shared with `collected` / the window.
    union: PointSet,
    /// Non-sink only: the most recent answer returned by the sink.
    last_result: Option<Vec<DataPoint>>,
    reports_sent: u64,
    reports_received: u64,
    results_sent: u64,
    results_received: u64,
    /// Bumped whenever the sink's detection input changes (own window
    /// mutation or a fresh report); keys `index_cache`.
    state_revision: u64,
    /// Sink only: the neighbour index over `union`, rebuilt lazily when
    /// `state_revision` moves.
    index_cache: RevisionCache<AnyIndex>,
}

impl<R: RankingFunction> CentralizedApp<R> {
    /// Creates the application for one node of the deployment.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(
        id: SensorId,
        sink: SensorId,
        ranking: R,
        n: usize,
        window: WindowConfig,
        stream: SensorStream,
        schedule: SamplingSchedule,
    ) -> Self {
        assert!(n > 0, "the number of reported outliers n must be at least 1");
        CentralizedApp {
            id,
            sink,
            ranking,
            n,
            window: SlidingWindow::new(window),
            stream,
            schedule,
            router: AodvRouter::new(id),
            batch_sampling: false,
            collected: BTreeMap::new(),
            union: PointSet::new(),
            last_result: None,
            reports_sent: 0,
            reports_received: 0,
            results_sent: 0,
            results_received: 0,
            state_revision: 0,
            index_cache: RevisionCache::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// Returns `true` if this node is the sink / base station.
    pub fn is_sink(&self) -> bool {
        self.id == self.sink
    }

    /// The routing state (route tables, ack bookkeeping).
    pub fn router(&self) -> &AodvRouter<CentralizedPayload> {
        &self.router
    }

    /// Number of window reports this node has sent to the sink.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Number of window reports delivered to this node (sink only).
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }

    /// Number of outlier answers this node has sent back (sink only).
    pub fn results_sent(&self) -> u64 {
        self.results_sent
    }

    /// Number of outlier answers delivered to this node.
    pub fn results_received(&self) -> u64 {
        self.results_received
    }

    /// The points currently in this node's own sliding window (`D_i`).
    pub fn local_window(&self) -> &PointSet {
        self.window.contents()
    }

    /// The node's current outlier estimate.
    ///
    /// The sink computes it over the union of every collected window plus its
    /// own; other nodes report the last answer the sink returned to them (or
    /// an estimate over their own window if no answer has arrived yet).
    pub fn estimate(&self) -> OutlierEstimate {
        if self.is_sink() {
            if let Some(index) = self.index_cache.get(self.state_revision) {
                top_n_outliers_indexed(&self.ranking, self.n, &self.union, index.as_ref())
            } else {
                top_n_outliers(&self.ranking, self.n, &self.union)
            }
        } else if let Some(points) = &self.last_result {
            let set: PointSet = points.iter().cloned().collect();
            top_n_outliers(&self.ranking, self.n, &set)
        } else {
            top_n_outliers(&self.ranking, self.n, self.window.contents())
        }
    }

    /// Sink only: the incrementally maintained union of the sink's own
    /// window and every collected report (empty on non-sink nodes).
    pub fn sink_union(&self) -> &PointSet {
        &self.union
    }

    /// Serializes this node's canonical baseline state for
    /// [`crate::persist`]: window, the sink's collected windows and union,
    /// the last returned answer and the report/result counters. Transport
    /// state (routes, pending acks) is *not* snapshotted — a resumed run
    /// replays the simulation up to the checkpoint, which reconstructs it
    /// deterministically.
    pub fn persist_snapshot(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::from("centralized")),
            ("id".into(), JsonValue::from(self.id.raw())),
            ("sink".into(), JsonValue::from(self.sink.raw())),
            ("n".into(), JsonValue::from(self.n)),
            ("window".into(), persist::snapshot_window(&self.window)),
            ("collected".into(), persist::sets_by_id_to_json(&self.collected)),
            ("union".into(), persist::set_to_json(&self.union)),
            (
                "last_result".into(),
                match &self.last_result {
                    Some(points) => {
                        JsonValue::Array(points.iter().map(persist::point_to_json).collect())
                    }
                    None => JsonValue::Null,
                },
            ),
            ("reports_sent".into(), JsonValue::from(self.reports_sent)),
            ("reports_received".into(), JsonValue::from(self.reports_received)),
            ("results_sent".into(), JsonValue::from(self.results_sent)),
            ("results_received".into(), JsonValue::from(self.results_received)),
            ("state_revision".into(), JsonValue::from(self.state_revision)),
        ])
    }

    /// Installs a [`CentralizedApp::persist_snapshot`], refusing snapshots
    /// from a node with a different id, sink, `n` or window length.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] for malformed dumps,
    /// [`PersistError::Mismatch`] for configuration disagreements. On error
    /// the application is left untouched.
    pub fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError> {
        persist::expect_kind(dump, "centralized")?;
        let id = persist::u32_field(dump, "id")?;
        if id != self.id.raw() {
            return Err(PersistError::Mismatch(format!(
                "snapshot is for sensor {id}, restoring into sensor {}",
                self.id.raw()
            )));
        }
        let sink = persist::u32_field(dump, "sink")?;
        if sink != self.sink.raw() {
            return Err(PersistError::Mismatch(format!(
                "snapshot reports to sink {sink}, this node to {}",
                self.sink.raw()
            )));
        }
        let n = persist::usize_field(dump, "n")?;
        if n != self.n {
            return Err(PersistError::Mismatch(format!(
                "snapshot reports top-{n}, this node reports top-{}",
                self.n
            )));
        }
        let window = persist::restore_window(persist::field(dump, "window")?)?;
        if window.config().length_micros != self.window.config().length_micros {
            return Err(PersistError::Mismatch(format!(
                "snapshot window is {}µs long, this node's is {}µs",
                window.config().length_micros,
                self.window.config().length_micros
            )));
        }
        let collected = persist::sets_by_id_from_json(persist::field(dump, "collected")?)?;
        let union = persist::set_from_json(persist::field(dump, "union")?)?;
        let last_result = match persist::field(dump, "last_result")? {
            JsonValue::Null => None,
            value => Some(
                value
                    .as_array()
                    .ok_or_else(|| {
                        PersistError::Schema("field \"last_result\" is not null or array".into())
                    })?
                    .iter()
                    .map(persist::point_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let reports_sent = persist::u64_field(dump, "reports_sent")?;
        let reports_received = persist::u64_field(dump, "reports_received")?;
        let results_sent = persist::u64_field(dump, "results_sent")?;
        let results_received = persist::u64_field(dump, "results_received")?;
        let state_revision = persist::u64_field(dump, "state_revision")?;
        self.window = window;
        self.collected = collected;
        self.union = union;
        self.last_result = last_result;
        self.reports_sent = reports_sent;
        self.reports_received = reports_received;
        self.results_sent = results_sent;
        self.results_received = results_received;
        self.state_revision = state_revision;
        self.index_cache.invalidate();
        Ok(())
    }

    /// Sink only: re-folds the sink's own window into `union` after the
    /// window changed (advance + fresh sample). The window holds only
    /// sink-origin points, so dropping that origin and re-inserting the
    /// current contents applies exactly the window's eviction/insertion
    /// delta to the union.
    fn refresh_own_contribution(&mut self) {
        self.union.remove_origin(self.id);
        self.union.extend_from(self.window.contents());
    }

    fn sample_round(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<CentralizedPayload>>,
        round: usize,
    ) {
        self.window.advance_to(ctx.now());
        if let Ok(Some(point)) = self.stream.point_at(round) {
            self.window.insert(point);
        }
        self.state_revision += 1;
        if self.is_sink() {
            self.refresh_own_contribution();
            // The sink's own data never touches the radio; it is folded into
            // the union locally. Once this round's reports have had time to
            // arrive, detect outliers over the unioned data sets and return
            // them to the nodes (§7.1).
            ctx.set_timer_after_secs(
                self.schedule.sample_interval_secs * REPLY_DELAY_FRACTION,
                REPLY_TIMER_BASE + round as TimerId,
            );
        } else if !self.window.is_empty() {
            let payload = CentralizedPayload::WindowReport {
                source: self.id,
                points: self.window.contents().to_vec(),
            };
            let bytes = payload.wire_size();
            self.router.send(ctx, self.sink, payload, bytes);
            self.reports_sent += 1;
        }
        let next = round + 1;
        if !self.batch_sampling && next < self.schedule.rounds {
            ctx.set_timer_after_secs(self.schedule.sample_interval_secs, next as TimerId);
        }
    }

    /// Sink only: computes the outliers of the unioned data sets and routes
    /// the answer back to every node that has reported so far.
    fn reply_round(&mut self, ctx: &mut NodeContext<AodvMessage<CentralizedPayload>>) {
        if !self.is_sink() || self.collected.is_empty() {
            return;
        }
        let union = &self.union;
        let index = self
            .index_cache
            .get_or_build(self.state_revision, || AnyIndex::build(IndexStrategy::Auto, union));
        let answer = top_n_outliers_indexed(&self.ranking, self.n, &self.union, index.as_ref());
        let points = answer.to_point_set().to_vec();
        let reporters: Vec<SensorId> = self.collected.keys().copied().collect();
        for reporter in reporters {
            let result = CentralizedPayload::OutlierResult { points: points.clone() };
            let bytes = result.wire_size();
            self.router.send(ctx, reporter, result, bytes);
            self.results_sent += 1;
        }
    }

    fn handle_delivered(
        &mut self,
        ctx: &mut NodeContext<AodvMessage<CentralizedPayload>>,
        source: SensorId,
        payload: CentralizedPayload,
    ) {
        let _ = ctx;
        match payload {
            CentralizedPayload::WindowReport { source: reporter, points } => {
                if !self.is_sink() {
                    return; // mis-routed report; only the sink aggregates
                }
                self.reports_received += 1;
                // Swap the reporter's contribution in the union: evict the
                // previous report's points, then insert the fresh ones. The
                // collected set and the union share each allocation.
                if let Some(previous) = self.collected.remove(&reporter) {
                    for key in previous.keys() {
                        self.union.discard(key);
                    }
                }
                let mut report = PointSet::new();
                for p in points {
                    let p = Arc::new(p);
                    self.union.insert_arc(Arc::clone(&p));
                    report.insert_arc(p);
                }
                self.collected.insert(reporter, report);
                self.state_revision += 1;
            }
            CentralizedPayload::OutlierResult { points } => {
                let _ = source;
                self.results_received += 1;
                self.last_result = Some(points);
            }
        }
    }
}

impl<R: RankingFunction> crate::app::ScheduleDriven for CentralizedApp<R> {
    fn sampling_installed(&mut self) {
        self.batch_sampling = true;
    }
}

impl<R: RankingFunction> Application for CentralizedApp<R> {
    type Message = AodvMessage<CentralizedPayload>;

    fn on_start(&mut self, ctx: &mut NodeContext<Self::Message>) {
        // With [`crate::app::install_sampling`], the sampling timers arrive
        // as one batched queue entry per round and only the sink's reply
        // timers are scheduled ad hoc. Without it, fall back to the
        // self-scheduled first sample so a plain `Simulator::new` never
        // silently runs zero rounds.
        if self.batch_sampling {
            return;
        }
        let first = self.schedule.sample_time(0, ctx.id());
        let delay = first.saturating_since(ctx.now());
        ctx.set_timer_after_micros(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<Self::Message>, timer: TimerId) {
        if timer >= REPLY_TIMER_BASE {
            self.reply_round(ctx);
        } else {
            self.sample_round(ctx, timer as usize);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut NodeContext<Self::Message>,
        from: SensorId,
        message: Self::Message,
    ) {
        let delivered = self.router.handle(ctx, from, message);
        for data in delivered {
            self.handle_delivered(ctx, data.source, data.payload);
        }
    }

    fn on_neighborhood_change(&mut self, ctx: &mut NodeContext<Self::Message>) {
        // Routes through a vanished neighbour will be rediscovered on the
        // next report; nothing to do immediately.
        let _ = ctx;
    }
}

/// Advances the window clock used when converting window lengths expressed in
/// samples (`w`) into the time-based [`WindowConfig`] the applications use.
///
/// The paper parameterises experiments by `w`, the number of samples in the
/// sliding window; with one sample per `sample_interval_secs` this is a
/// window of `w × interval` seconds.
pub fn window_from_samples(
    w: u64,
    sample_interval_secs: f64,
) -> Result<WindowConfig, wsn_data::DataError> {
    WindowConfig::from_samples(w, sample_interval_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::stream::{SensorReading, SensorSpec};
    use wsn_data::{Epoch, Position, Timestamp};
    use wsn_netsim::sim::{SimConfig, Simulator};
    use wsn_netsim::topology::Topology;
    use wsn_ranking::NnDistance;

    /// Builds a `count`-node chain running the centralized baseline with the
    /// sink at node 0. Node `count - 1` samples one wild value in round 1.
    fn build_sim(count: u32, rounds: usize) -> Simulator<CentralizedApp<NnDistance>> {
        let specs: Vec<SensorSpec> = (0..count)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        let topo = Topology::from_specs(&specs, 6.0);
        let schedule = SamplingSchedule::new(10.0, rounds);
        let window = WindowConfig::from_samples(rounds as u64 + 5, 10.0).unwrap();
        let sim =
            crate::app::simulator_with_sampling(SimConfig::default(), topo, &schedule, |id| {
                let spec = specs.iter().find(|s| s.id == id).copied().unwrap();
                let mut stream = SensorStream::new(spec);
                for r in 0..rounds {
                    let ts = Timestamp::from_secs_f64(r as f64 * 10.0);
                    let value = if id == SensorId(count - 1) && r == 1 {
                        500.0
                    } else {
                        20.0 + id.raw() as f64 + r as f64 * 0.01
                    };
                    stream.readings.push(SensorReading::present(Epoch(r as u64), ts, value));
                }
                CentralizedApp::new(id, SensorId(0), NnDistance, 1, window, stream, schedule)
            });
        sim
    }

    #[test]
    fn constructor_rejects_zero_outliers() {
        let spec = SensorSpec::new(SensorId(1), Position::new(0.0, 0.0));
        let result = std::panic::catch_unwind(|| {
            CentralizedApp::new(
                SensorId(1),
                SensorId(0),
                NnDistance,
                0,
                WindowConfig::from_secs(10).unwrap(),
                SensorStream::new(spec),
                SamplingSchedule::new(1.0, 1),
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn payload_wire_size_scales_with_points() {
        let p = DataPoint::new(SensorId(1), Epoch(0), Timestamp::ZERO, vec![1.0]).unwrap();
        let empty = CentralizedPayload::OutlierResult { points: vec![] };
        let one = CentralizedPayload::WindowReport { source: SensorId(1), points: vec![p.clone()] };
        let two = CentralizedPayload::WindowReport {
            source: SensorId(1),
            points: vec![p.clone(), p.clone()],
        };
        assert_eq!(empty.wire_size(), CENTRALIZED_HEADER_BYTES);
        assert_eq!(one.wire_size(), CENTRALIZED_HEADER_BYTES + p.wire_size());
        assert_eq!(two.wire_size(), CENTRALIZED_HEADER_BYTES + 2 * p.wire_size());
    }

    #[test]
    fn sink_collects_every_window_and_finds_the_outlier() {
        let mut sim = build_sim(4, 3);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(400)));
        let sink = sim.app(SensorId(0)).unwrap();
        assert!(sink.is_sink());
        assert_eq!(sink.collected.len(), 3, "the sink heard from every other node");
        assert_eq!(sink.estimate().points()[0].features[0], 500.0);
        assert!(sink.reports_received() >= 3);
        assert!(sink.results_sent() >= 3);
    }

    #[test]
    fn reporting_nodes_learn_the_global_answer_from_the_sink() {
        let mut sim = build_sim(4, 3);
        sim.run_until_quiescent(Timestamp::from_secs(400));
        for (id, app) in sim.apps() {
            if id == SensorId(0) {
                continue;
            }
            assert!(app.results_received() > 0, "node {id} never heard back from the sink");
            assert_eq!(
                app.estimate().points()[0].features[0],
                500.0,
                "node {id} does not know the global outlier"
            );
        }
    }

    #[test]
    fn incremental_union_matches_a_full_rebuild() {
        let mut sim = build_sim(5, 4);
        sim.run_until_quiescent(Timestamp::from_secs(500));
        let sink = sim.app(SensorId(0)).unwrap();
        let mut rebuilt: PointSet = sink.local_window().clone();
        for report in sink.collected.values() {
            for p in report.iter() {
                rebuilt.insert(p.clone());
            }
        }
        assert_eq!(sink.sink_union(), &rebuilt, "insert/evict maintenance must equal a rebuild");
        assert!(!sink.sink_union().is_empty());
        // Non-sink nodes maintain no union.
        assert!(sim.app(SensorId(1)).unwrap().sink_union().is_empty());
    }

    #[test]
    fn sink_never_transmits_window_reports() {
        let mut sim = build_sim(3, 2);
        sim.run_until_quiescent(Timestamp::from_secs(300));
        assert_eq!(sim.app(SensorId(0)).unwrap().reports_sent(), 0);
        for (id, app) in sim.apps() {
            if id != SensorId(0) {
                assert!(app.reports_sent() > 0);
                assert_eq!(app.reports_received(), 0, "only the sink aggregates");
            }
        }
    }

    #[test]
    fn traffic_funnels_around_the_sink() {
        let mut sim = build_sim(6, 3);
        sim.run_until_quiescent(Timestamp::from_secs(600));
        let stats = sim.network_stats();
        // Node 1 relays everything the chain produces; the far end only sends
        // its own reports. This is the §8 traffic-imbalance observation.
        let near = stats.nodes[&SensorId(1)].packets_sent;
        let far = stats.nodes[&SensorId(5)].packets_sent;
        assert!(near > far, "near-sink node sent {near}, far node sent {far}");
        assert!(stats.traffic_imbalance() > 1.0);
    }

    #[test]
    fn persist_snapshot_round_trips_the_sink_state() {
        let mut sim = build_sim(4, 3);
        sim.run_until_quiescent(Timestamp::from_secs(400));
        let sink = sim.app(SensorId(0)).unwrap();
        let dump = sink.persist_snapshot();
        let fresh_app = |id: u32| {
            let spec = SensorSpec::new(SensorId(id), Position::new(0.0, 0.0));
            CentralizedApp::new(
                SensorId(id),
                SensorId(0),
                NnDistance,
                1,
                WindowConfig::from_samples(8, 10.0).unwrap(),
                SensorStream::new(spec),
                SamplingSchedule::new(10.0, 3),
            )
        };
        let mut fresh = fresh_app(0);
        fresh.persist_restore(&dump).unwrap();
        assert_eq!(fresh.persist_snapshot(), dump, "restore is lossless");
        assert_eq!(fresh.sink_union(), sink.sink_union());
        assert_eq!(fresh.estimate().points()[0].features[0], 500.0);
        // A different node refuses the sink's snapshot.
        let mut other = fresh_app(2);
        assert!(matches!(other.persist_restore(&dump), Err(PersistError::Mismatch(_))));
    }

    #[test]
    fn estimate_before_any_result_uses_the_local_window() {
        let spec = SensorSpec::new(SensorId(3), Position::new(0.0, 0.0));
        let mut stream = SensorStream::new(spec);
        stream.readings.push(SensorReading::present(Epoch(0), Timestamp::ZERO, 7.0));
        let mut app = CentralizedApp::new(
            SensorId(3),
            SensorId(0),
            NnDistance,
            1,
            WindowConfig::from_secs(100).unwrap(),
            stream,
            SamplingSchedule::new(10.0, 1),
        );
        assert!(app.estimate().is_empty(), "no data sampled yet");
        // Manually fold the first reading into the window.
        if let Ok(Some(p)) = app.stream.point_at(0) {
            app.window.insert(p);
        }
        assert_eq!(app.estimate().points()[0].features[0], 7.0);
        assert!(!app.is_sink());
        assert_eq!(app.local_window().len(), 1);
    }
}
