//! Adapter that runs a distributed detector on the network simulator.
//!
//! [`DetectorApp`] wires an [`OutlierDetector`] (global or semi-global) to
//! the [`wsn_netsim::sim::Application`] interface:
//!
//! * a periodic timer samples the node's own data stream (the paper's
//!   "`D_i` changes" event), slides the window, and lets the detector react,
//! * every received broadcast packet is filtered for points tagged with this
//!   node's id (packets without such points are *not* events, §5.2) and fed
//!   to the detector,
//! * whatever the detector decides must be sent is put on the air as a
//!   single-hop broadcast whose size is the protocol wire size.

use crate::detector::OutlierDetector;
use crate::message::OutlierBroadcast;
use wsn_data::stream::SensorStream;
use wsn_data::{SensorId, Timestamp};
use wsn_netsim::region::{AnySimulator, SimBackend, SimHandle};
use wsn_netsim::sim::{Application, BatchTimerEntry, NodeContext, Simulator, TimerId};

/// Number of distinct stagger slots the sampling schedule spreads a round's
/// radios over. Nodes share slots modulo this count, so the stagger span
/// stays bounded (12.8 ms) no matter how many sensors are deployed — at 10k
/// sensors an unbounded per-node stagger would smear a round over two
/// seconds and serialize the whole network behind one radio at a time.
pub const STAGGER_SLOTS: u64 = 64;

/// Sampling schedule shared by every node of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingSchedule {
    /// Seconds between consecutive samples of a node.
    pub sample_interval_secs: f64,
    /// Total number of sampling rounds to execute.
    pub rounds: usize,
}

impl SamplingSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive or the number of rounds is zero.
    pub fn new(sample_interval_secs: f64, rounds: usize) -> Self {
        assert!(sample_interval_secs > 0.0, "sample interval must be positive");
        assert!(rounds > 0, "at least one sampling round is required");
        SamplingSchedule { sample_interval_secs, rounds }
    }

    /// Total simulated duration needed for all rounds plus settling time.
    pub fn duration(&self) -> Timestamp {
        Timestamp::from_secs_f64(self.sample_interval_secs * (self.rounds as f64 + 2.0))
    }

    /// The time at which `round` is sampled (with a tiny per-node stagger so
    /// that the radios do not all fire in the same microsecond; nodes share
    /// one of [`STAGGER_SLOTS`] slots, 200 µs apart).
    pub fn sample_time(&self, round: usize, node: SensorId) -> Timestamp {
        let offset_micros = (u64::from(node.raw()) % STAGGER_SLOTS) * 200;
        Timestamp::from_secs_f64(round as f64 * self.sample_interval_secs)
            .advanced_by_micros(offset_micros)
    }

    /// One round's sampling fan-out as a sorted timer batch: every node of
    /// `ids` sampled at its staggered time, with the timer id encoding the
    /// round number.
    pub fn round_batch(&self, round: usize, ids: &[SensorId]) -> Vec<BatchTimerEntry> {
        let mut entries: Vec<BatchTimerEntry> =
            ids.iter().map(|&id| (self.sample_time(round, id), id, round as TimerId)).collect();
        entries.sort_by_key(|&(time, id, _)| (time, id));
        entries
    }

    /// The remaining sampling timers of a single node, starting with the
    /// first round whose staggered time is strictly after `now` — the batch
    /// to install for a node that joins the network mid-experiment. (Rounds
    /// already in the past are skipped, not replayed: a late joiner has no
    /// data for them.)
    pub fn node_batch_after(&self, now: Timestamp, id: SensorId) -> Vec<BatchTimerEntry> {
        (0..self.rounds)
            .filter_map(|round| {
                let time = self.sample_time(round, id);
                (time > now).then_some((time, id, round as TimerId))
            })
            .collect()
    }
}

/// A [`SamplingSchedule`]-driven application that can hand its sampling
/// timers over to a centrally installed batch schedule (see
/// [`install_sampling`]). Until told otherwise, implementors self-schedule
/// their timers, so a plain [`Simulator::new`] still samples correctly.
pub trait ScheduleDriven {
    /// Tells the application its sampling timers are installed centrally:
    /// it must stop scheduling its own.
    fn sampling_installed(&mut self);
}

/// Installs the sampling schedule for every node of `sim` as **one batched
/// queue entry per round** (see
/// [`Simulator::schedule_timer_batch`]), and switches every application off
/// its self-scheduling fallback: the event heap then carries one entry per
/// round fan-out instead of one per node × round. Call this once, right
/// after building the simulator, for any application driven by a
/// [`SamplingSchedule`] ([`DetectorApp`] and
/// [`crate::centralized::CentralizedApp`]) — or use
/// [`simulator_with_sampling`], which does both steps.
pub fn install_sampling<A, S>(sim: &mut S, schedule: &SamplingSchedule)
where
    A: Application + ScheduleDriven,
    S: SimHandle<A> + ?Sized,
{
    sim.for_each_app_mut(&mut |_, app| app.sampling_installed());
    let ids = sim.topology().sensor_ids();
    for round in 0..schedule.rounds {
        sim.schedule_timer_batch(schedule.round_batch(round, &ids));
    }
}

/// Builds a simulator **and** installs its batched sampling schedule in one
/// step — the constructor every schedule-driven deployment should use.
/// (A plain [`Simulator::new`] without [`install_sampling`] still works —
/// the applications fall back to scheduling their own timers, at one queue
/// entry per node × round.)
pub fn simulator_with_sampling<A: Application + ScheduleDriven>(
    config: wsn_netsim::sim::SimConfig,
    topology: wsn_netsim::topology::Topology,
    schedule: &SamplingSchedule,
    make_app: impl FnMut(SensorId) -> A,
) -> Simulator<A> {
    let mut sim = Simulator::new(config, topology, make_app);
    install_sampling(&mut sim, schedule);
    sim
}

/// [`simulator_with_sampling`] with a [`SimBackend`] choice: builds either
/// the sequential engine or the spatially partitioned parallel one behind
/// [`AnySimulator`], and installs the batched sampling schedule on it. The
/// two backends produce bit-for-bit identical results, so the choice is a
/// pure wall-clock decision.
pub fn any_simulator_with_sampling<A>(
    backend: SimBackend,
    config: wsn_netsim::sim::SimConfig,
    topology: wsn_netsim::topology::Topology,
    schedule: &SamplingSchedule,
    make_app: impl FnMut(SensorId) -> A,
) -> AnySimulator<A>
where
    A: Application + ScheduleDriven + Send + 'static,
    A::Message: Send + Sync,
{
    let mut sim = AnySimulator::build(backend, config, topology, make_app);
    install_sampling(&mut sim, schedule);
    sim
}

/// A simulator application running one distributed detector plus its data
/// stream.
#[derive(Debug, Clone)]
pub struct DetectorApp<D> {
    detector: D,
    stream: SensorStream,
    schedule: SamplingSchedule,
    /// `true` once [`install_sampling`] took over the sampling timers;
    /// until then the app self-schedules them (the safe fallback).
    batch_sampling: bool,
    packets_broadcast: u64,
    events_handled: u64,
}

impl<D: OutlierDetector> DetectorApp<D> {
    /// Creates the application for one node.
    pub fn new(detector: D, stream: SensorStream, schedule: SamplingSchedule) -> Self {
        DetectorApp {
            detector,
            stream,
            schedule,
            batch_sampling: false,
            packets_broadcast: 0,
            events_handled: 0,
        }
    }

    /// The wrapped detector (for reading estimates and counters).
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Mutable access to the wrapped detector, for the persistence layer's
    /// state install on resume (see [`crate::persist`]).
    pub fn detector_mut(&mut self) -> &mut D {
        &mut self.detector
    }

    /// The sampling schedule this node runs under (install it on the
    /// simulator with [`install_sampling`]).
    pub fn schedule(&self) -> SamplingSchedule {
        self.schedule
    }

    /// Number of protocol packets this node has broadcast.
    pub fn packets_broadcast(&self) -> u64 {
        self.packets_broadcast
    }

    /// Number of events (samples, deliveries, neighbourhood changes) handled.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    fn react(&mut self, ctx: &mut NodeContext<OutlierBroadcast>) {
        self.events_handled += 1;
        let _detect_span = wsn_obs::span("detect");
        if let Some(message) = self.detector.process(ctx.neighbors()) {
            let size = message.wire_size();
            self.packets_broadcast += 1;
            crate::telemetry::BROADCASTS.add(1);
            crate::telemetry::BROADCAST_BYTES.add(size as u64);
            crate::telemetry::BROADCAST_WIRE_SIZE.record(size as u64);
            ctx.broadcast(message, size);
        }
    }

    fn sample_round(&mut self, ctx: &mut NodeContext<OutlierBroadcast>, round: usize) {
        self.detector.advance_time(ctx.now());
        match self.stream.point_at(round) {
            Ok(Some(point)) => self.detector.add_local_points(vec![point]),
            Ok(None) => {} // missing reading: nothing sampled this round
            Err(_) => {}   // corrupted trace entries are skipped
        }
        self.react(ctx);
        let next = round + 1;
        if !self.batch_sampling && next < self.schedule.rounds {
            ctx.set_timer_after_secs(self.schedule.sample_interval_secs, next as TimerId);
        }
    }
}

impl<D: OutlierDetector> ScheduleDriven for DetectorApp<D> {
    fn sampling_installed(&mut self) {
        self.batch_sampling = true;
    }
}

impl<D: OutlierDetector> Application for DetectorApp<D> {
    type Message = OutlierBroadcast;

    fn on_start(&mut self, ctx: &mut NodeContext<Self::Message>) {
        // With [`install_sampling`], the sampling timers arrive as one
        // batched queue entry per round (timer ids encode the round number)
        // and there is nothing to schedule per node. Without it, fall back
        // to the self-scheduled first sample so a plain `Simulator::new`
        // never silently runs zero rounds.
        if self.batch_sampling {
            return;
        }
        let first = self.schedule.sample_time(0, ctx.id());
        let delay = first.saturating_since(ctx.now());
        ctx.set_timer_after_micros(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<Self::Message>, timer: TimerId) {
        self.sample_round(ctx, timer as usize);
    }

    fn on_message(
        &mut self,
        ctx: &mut NodeContext<Self::Message>,
        from: SensorId,
        message: Self::Message,
    ) {
        let mine = message.points_for_arcs(ctx.id());
        if mine.is_empty() {
            // Not tagged for us: receipt of M is not an event (§5.2).
            return;
        }
        self.detector.advance_time(ctx.now());
        self.detector.receive_arcs(from, mine);
        self.react(ctx);
    }

    fn on_neighborhood_change(&mut self, ctx: &mut NodeContext<Self::Message>) {
        // Self-healing: drop all per-neighbour state for neighbours no
        // longer in radio range (death or departure) before reacting — a
        // dead neighbour must not pin shared-knowledge sets, quiet memos, or
        // fixed-point hypothetical state, and a *re*-joining neighbour must
        // be re-synced from scratch rather than against stale bookkeeping.
        self.detector.retain_neighbors(ctx.neighbors());
        self.detector.advance_time(ctx.now());
        self.react(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalNode;
    use wsn_data::stream::{SensorReading, SensorSpec};
    use wsn_data::window::WindowConfig;
    use wsn_data::{Epoch, Position};
    use wsn_netsim::sim::{SimConfig, Simulator};
    use wsn_netsim::topology::Topology;
    use wsn_ranking::NnDistance;

    /// Builds a 3-node chain where node 0's stream contains one wild value.
    fn build_sim(rounds: usize) -> Simulator<DetectorApp<GlobalNode<NnDistance>>> {
        let specs: Vec<SensorSpec> = (0..3)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        let topo = Topology::from_specs(&specs, 6.0);
        let schedule = SamplingSchedule::new(10.0, rounds);
        let window = WindowConfig::from_samples(rounds as u64 + 5, 10.0).unwrap();
        let sim = simulator_with_sampling(SimConfig::default(), topo, &schedule, |id| {
            let spec = specs.iter().find(|s| s.id == id).copied().unwrap();
            let mut stream = SensorStream::new(spec);
            for r in 0..rounds {
                let ts = Timestamp::from_secs_f64(r as f64 * 10.0);
                let value = if id == SensorId(0) && r == 1 {
                    -100.0
                } else {
                    20.0 + id.raw() as f64 + r as f64 * 0.01
                };
                stream.readings.push(SensorReading::present(Epoch(r as u64), ts, value));
            }
            DetectorApp::new(GlobalNode::new(id, NnDistance, 1, window), stream, schedule)
        });
        sim
    }

    #[test]
    fn schedule_validates_and_computes_times() {
        let s = SamplingSchedule::new(30.0, 4);
        assert_eq!(s.sample_time(0, SensorId(0)), Timestamp::ZERO);
        assert!(s.sample_time(0, SensorId(5)) > Timestamp::ZERO);
        assert_eq!(s.sample_time(2, SensorId(0)), Timestamp::from_secs(60));
        assert!(s.duration() > Timestamp::from_secs(120));
        assert!(std::panic::catch_unwind(|| SamplingSchedule::new(0.0, 4)).is_err());
        assert!(std::panic::catch_unwind(|| SamplingSchedule::new(1.0, 0)).is_err());
    }

    #[test]
    fn all_nodes_converge_to_the_injected_outlier() {
        let mut sim = build_sim(4);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(200)));
        for (id, app) in sim.apps() {
            let estimate = app.detector().estimate();
            assert_eq!(
                estimate.points()[0].features[0],
                -100.0,
                "node {id} did not converge on the injected outlier"
            );
        }
    }

    #[test]
    fn a_simulator_without_install_sampling_still_samples() {
        // The self-scheduling fallback: a plain `Simulator::new` (no
        // install_sampling) must never silently run zero rounds.
        let specs: Vec<SensorSpec> = (0..2)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        let topo = Topology::from_specs(&specs, 6.0);
        let schedule = SamplingSchedule::new(10.0, 3);
        let window = WindowConfig::from_samples(8, 10.0).unwrap();
        let mut sim = Simulator::new(SimConfig::default(), topo, |id| {
            let spec = specs.iter().find(|s| s.id == id).copied().unwrap();
            let mut stream = SensorStream::new(spec);
            for r in 0..3u64 {
                stream.readings.push(SensorReading::present(
                    Epoch(r),
                    Timestamp::from_secs(r * 10),
                    20.0 + id.raw() as f64,
                ));
            }
            DetectorApp::new(GlobalNode::new(id, NnDistance, 1, window), stream, schedule)
        });
        assert!(sim.run_until_quiescent(Timestamp::from_secs(200)));
        for (id, app) in sim.apps() {
            assert!(app.detector().held_points().len() >= 3, "node {id} sampled");
        }
    }

    #[test]
    fn every_node_samples_and_broadcasts_at_least_once() {
        let mut sim = build_sim(3);
        sim.run_until_quiescent(Timestamp::from_secs(200));
        for (id, app) in sim.apps() {
            assert!(app.events_handled() > 0, "node {id} handled no events");
            assert!(app.packets_broadcast() > 0, "node {id} broadcast nothing");
        }
        let stats = sim.network_stats();
        assert!(stats.total_packets_sent() > 0);
        assert!(stats.total_bytes_sent() > 0);
    }

    #[test]
    fn packets_not_tagged_for_a_node_are_not_events() {
        // With 3 nodes in a chain, node 2's broadcasts tagged only for node 1
        // are heard by nobody else; node 0 must not react to packets carrying
        // nothing for it. We verify indirectly: the simulation terminates
        // (no infinite re-broadcast loop) and estimates are correct.
        let mut sim = build_sim(2);
        assert!(sim.run_until_quiescent(Timestamp::from_secs(500)), "protocol must terminate");
    }

    #[test]
    fn detector_counters_reflect_data_movement() {
        let mut sim = build_sim(3);
        sim.run_until_quiescent(Timestamp::from_secs(200));
        let total_sent: u64 = sim.apps().map(|(_, a)| a.detector().points_sent()).sum();
        let total_recv: u64 = sim.apps().map(|(_, a)| a.detector().points_received()).sum();
        assert!(total_sent > 0);
        assert!(total_recv > 0);
        // Every accepted point was sent by someone (single-hop, no loss).
        assert!(total_recv <= total_sent);
    }
}
