//! Shared telemetry statics of the detector layer.
//!
//! The two distributed detectors ([`crate::global`], [`crate::semiglobal`])
//! and the simulator application ([`crate::app`]) record their broadcast
//! volume into one set of process-wide metrics, defined here once so both
//! detectors feed the same counters. Everything follows the `wsn_obs`
//! overhead contract: write-only, runtime-gated, compiled out without the
//! `telemetry` feature.

/// Protocol messages put on the air (one per [`crate::app::DetectorApp`]
/// broadcast).
pub(crate) static BROADCASTS: wsn_obs::Counter = wsn_obs::Counter::new("detector.broadcasts");
/// Payload bytes of those messages (wire size incl. headers and tags).
pub(crate) static BROADCAST_BYTES: wsn_obs::Counter =
    wsn_obs::Counter::new("detector.broadcast_bytes");
/// Wire size per broadcast message.
pub(crate) static BROADCAST_WIRE_SIZE: wsn_obs::Histogram =
    wsn_obs::Histogram::new("detector.broadcast_wire_bytes");
/// Data points addressed to neighbours, totalled across all per-neighbour
/// batches.
pub(crate) static POINTS_BROADCAST: wsn_obs::Counter =
    wsn_obs::Counter::new("detector.points_broadcast");
/// Batch size per neighbour entry of a broadcast (the `Z_j \ known` sets).
pub(crate) static NEIGHBOR_BATCH_POINTS: wsn_obs::Histogram =
    wsn_obs::Histogram::new("detector.points_per_neighbor");
/// Neighbours pruned by the self-healing paths: dead/out-of-range neighbours
/// dropped on a neighbourhood change, plus silent neighbours aged out by the
/// staleness liveness timeout.
pub(crate) static STALE_NEIGHBORS_PRUNED: wsn_obs::Counter =
    wsn_obs::Counter::new("detector.stale_neighbors_pruned");
