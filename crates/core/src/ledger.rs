//! Per-neighbour revision bookkeeping shared by the two detectors.
//!
//! Both [`crate::global::GlobalNode`] and
//! [`crate::semiglobal::SemiGlobalNode`] memoize the per-neighbour "nothing
//! to send" outcome of [`crate::detector::OutlierDetector::process`], keyed
//! by `(window revision, bookkeeping revision)` — the exact inputs of the
//! sufficient-set computation. The invariant that makes the memo safe is
//! single-sourced here: **every** mutation of a neighbour's `sent_to` /
//! `recv_from` set must bump that neighbour's revision, or a stale memo
//! would silently suppress a broadcast. The ledger owns the revision and
//! quiet-state maps and the window-slide eviction pass (the mutation site
//! easiest to forget); the detectors report their remaining mutations
//! (receive / record-send) through [`QuietLedger::bump`].

use std::collections::BTreeMap;
use wsn_data::{PointSet, SensorId, Timestamp};

/// Telemetry ([`wsn_obs`]): quiet-memo lookups and the subset that hit —
/// every hit is one whole sufficient-set computation skipped.
static OBS_QUIET_QUERIES: wsn_obs::Counter = wsn_obs::Counter::new("ledger.quiet_queries");
static OBS_QUIET_HITS: wsn_obs::Counter = wsn_obs::Counter::new("ledger.quiet_hits");

/// The memo key pinning the inputs of one per-neighbour computation.
pub(crate) type LedgerState = (u64, u64);

/// Revision and quiet-state bookkeeping for the per-neighbour
/// shared-knowledge sets.
#[derive(Debug, Clone, Default)]
pub(crate) struct QuietLedger {
    /// Per-neighbour change counter of the bookkeeping sets.
    revisions: BTreeMap<SensorId, u64>,
    /// The `(window revision, bookkeeping revision)` at which the last
    /// computation for a neighbour produced nothing to send.
    quiet_at: BTreeMap<SensorId, LedgerState>,
}

impl QuietLedger {
    pub fn new() -> Self {
        QuietLedger::default()
    }

    /// Records a change to either bookkeeping set of `neighbor`.
    pub fn bump(&mut self, neighbor: SensorId) {
        *self.revisions.entry(neighbor).or_insert(0) += 1;
    }

    /// The memo key for `neighbor` at the given window revision.
    pub fn state(&self, neighbor: SensorId, window_revision: u64) -> LedgerState {
        (window_revision, self.revisions.get(&neighbor).copied().unwrap_or(0))
    }

    /// Returns `true` if the last computation at exactly this state produced
    /// nothing to send — same inputs, same (empty) outcome, skip the work.
    pub fn is_quiet(&self, neighbor: SensorId, state: LedgerState) -> bool {
        let quiet = self.quiet_at.get(&neighbor) == Some(&state);
        OBS_QUIET_QUERIES.add(1);
        if quiet {
            OBS_QUIET_HITS.add(1);
        }
        quiet
    }

    /// Records that the computation at `state` produced nothing to send.
    pub fn mark_quiet(&mut self, neighbor: SensorId, state: LedgerState) {
        self.quiet_at.insert(neighbor, state);
    }

    /// The full bookkeeping state, for the persistence layer
    /// ([`crate::persist`]): per-neighbour revision counters and quiet memos,
    /// in neighbour order.
    #[allow(clippy::type_complexity)]
    pub fn export(&self) -> (Vec<(SensorId, u64)>, Vec<(SensorId, LedgerState)>) {
        (
            self.revisions.iter().map(|(&j, &r)| (j, r)).collect(),
            self.quiet_at.iter().map(|(&j, &s)| (j, s)).collect(),
        )
    }

    /// Rebuilds a ledger from [`QuietLedger::export`]ed parts.
    pub fn from_parts(
        revisions: Vec<(SensorId, u64)>,
        quiet_at: Vec<(SensorId, LedgerState)>,
    ) -> Self {
        QuietLedger {
            revisions: revisions.into_iter().collect(),
            quiet_at: quiet_at.into_iter().collect(),
        }
    }

    /// Drops all bookkeeping for a departed neighbour (revision counter and
    /// quiet memo). If the neighbour later rejoins, it starts from revision
    /// zero — exactly like a neighbour never heard from.
    pub fn forget(&mut self, neighbor: SensorId) {
        self.revisions.remove(&neighbor);
        self.quiet_at.remove(&neighbor);
    }

    /// Window-slide eviction over one bookkeeping map, bumping the revision
    /// of every neighbour whose set changed.
    pub fn evict_and_bump(&mut self, sets: &mut BTreeMap<SensorId, PointSet>, cutoff: Timestamp) {
        for (&j, set) in sets.iter_mut() {
            if set.evict_older_than(cutoff) > 0 {
                self.bump(j);
            }
        }
    }

    /// [`QuietLedger::evict_and_bump`] behind an O(1) gate: `oldest` is the
    /// conservative minimum timestamp across all sets (maintained by
    /// [`fold_min_timestamp`] at every insertion site — it must never be
    /// *later* than the true minimum, or evictions would be skipped). The
    /// sweep only runs when the cutoff has actually passed it, and `oldest`
    /// is recomputed exactly afterwards.
    pub fn evict_and_bump_gated(
        &mut self,
        sets: &mut BTreeMap<SensorId, PointSet>,
        cutoff: Timestamp,
        oldest: &mut Option<Timestamp>,
    ) {
        if !oldest.is_some_and(|o| o < cutoff) {
            return;
        }
        self.evict_and_bump(sets, cutoff);
        *oldest = sets.values().flat_map(|s| s.iter().map(|p| p.timestamp)).min();
    }
}

/// Lowers `slot` to `candidate` if it is earlier (or the slot is empty) —
/// the single place the detectors' conservative shared-knowledge minimum is
/// folded at, paired with [`QuietLedger::evict_and_bump_gated`].
pub(crate) fn fold_min_timestamp(slot: &mut Option<Timestamp>, candidate: Timestamp) {
    if !slot.is_some_and(|oldest| oldest <= candidate) {
        *slot = Some(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::{DataPoint, Epoch};

    #[test]
    fn bump_invalidates_exactly_the_touched_neighbor() {
        let mut ledger = QuietLedger::new();
        let a = SensorId(1);
        let b = SensorId(2);
        let state_a = ledger.state(a, 7);
        let state_b = ledger.state(b, 7);
        ledger.mark_quiet(a, state_a);
        ledger.mark_quiet(b, state_b);
        assert!(ledger.is_quiet(a, state_a));
        ledger.bump(a);
        assert!(!ledger.is_quiet(a, ledger.state(a, 7)), "a's revision moved");
        assert!(ledger.is_quiet(b, ledger.state(b, 7)), "b is untouched");
    }

    #[test]
    fn a_window_revision_move_changes_every_state() {
        let ledger = QuietLedger::new();
        let j = SensorId(3);
        assert_ne!(ledger.state(j, 1), ledger.state(j, 2));
    }

    #[test]
    fn eviction_bumps_only_neighbors_that_lost_points() {
        let mut ledger = QuietLedger::new();
        let old =
            DataPoint::new(SensorId(9), Epoch(0), Timestamp::from_secs(1), vec![1.0]).unwrap();
        let fresh =
            DataPoint::new(SensorId(9), Epoch(1), Timestamp::from_secs(50), vec![2.0]).unwrap();
        let mut sets = BTreeMap::new();
        sets.insert(SensorId(1), vec![old].into_iter().collect::<PointSet>());
        sets.insert(SensorId(2), vec![fresh].into_iter().collect::<PointSet>());
        ledger.evict_and_bump(&mut sets, Timestamp::from_secs(10));
        assert_ne!(ledger.state(SensorId(1), 0), (0, 0), "evicted neighbour bumped");
        assert_eq!(ledger.state(SensorId(2), 0), (0, 0), "untouched neighbour stable");
    }
}
