//! Error types for the detection algorithms and experiment runner.

use crate::persist::PersistError;
use std::error::Error;
use std::fmt;
use wsn_data::DataError;

/// Errors produced while configuring or running the detection algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was invalid (zero outliers requested, zero
    /// hop diameter, empty network, …).
    InvalidConfig(String),
    /// An error bubbled up from the data layer (trace generation, windows).
    Data(DataError),
    /// The deployment's communication graph is not connected at the
    /// configured radio range; the algorithms' correctness guarantees need a
    /// connected network (§4.2).
    DisconnectedNetwork,
    /// Persisted state could not be written, read, verified or installed
    /// (checkpointing or resume; see [`crate::persist`]).
    Persist(PersistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::DisconnectedNetwork => {
                write!(f, "the communication graph is not connected at the configured radio range")
            }
            CoreError::Persist(e) => write!(f, "persistence error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Data(e) => Some(e),
            CoreError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig("n must be positive".into());
        assert!(e.to_string().contains("n must be positive"));
        assert!(e.source().is_none());
        let e: CoreError = DataError::EmptyWindow.into();
        assert!(e.to_string().contains("window"));
        assert!(e.source().is_some());
        assert!(CoreError::DisconnectedNetwork.to_string().contains("connected"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
