//! Ground truth, convergence and accuracy metrics (§7.2).
//!
//! The evaluation's headline accuracy claim is that "nodes converged upon the
//! correct results approximately 99% of the time", with any error attributed
//! to dropped packets. To measure the same quantity we need
//!
//! * the **global ground truth** `O_n(D)` over the union of every sensor's
//!   window contents at a given moment,
//! * the **semi-global ground truth** `O_n(D_i^{≤d})` per sensor, built from
//!   the hop distances of the communication topology, and
//! * per-node comparison of each detector's estimate against its own ground
//!   truth, summarised as the fraction of nodes whose estimate is exactly
//!   correct (the paper's detection accuracy).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use wsn_data::{DataPoint, PointKey, PointSet, SensorId};
use wsn_netsim::topology::Topology;
use wsn_ranking::{top_n_outliers, OutlierEstimate, RankingFunction};

/// The correct answers a deployment's detectors are measured against.
///
/// For the global algorithm every sensor shares the single answer
/// `O_n(⋃_i D_i)`; for the semi-global algorithm each sensor `p_i` has its own
/// answer `O_n(D_i^{≤d})` computed over the data sampled within `d` hops.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// The answers are held behind [`Arc`]s: the global ground truth is one
    /// estimate shared by every node, not one deep copy per node.
    per_node: BTreeMap<SensorId, Arc<OutlierEstimate>>,
}

impl GroundTruth {
    /// Computes the global ground truth: every sensor listed in `sensors` is
    /// assigned the same (shared, not copied) `O_n` over the union of all
    /// `local_data`.
    pub fn global<R: RankingFunction + ?Sized>(
        ranking: &R,
        n: usize,
        local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
    ) -> Self {
        let union: PointSet = local_data.values().flatten().cloned().collect();
        let answer = Arc::new(top_n_outliers(ranking, n, &union));
        let per_node = local_data.keys().map(|id| (*id, Arc::clone(&answer))).collect();
        GroundTruth { per_node }
    }

    /// Computes the semi-global ground truth: sensor `p_i`'s answer is the
    /// `O_n` of the union of the local data of every sensor within
    /// `hop_diameter` hops of `p_i` in `topology` (including `p_i` itself).
    pub fn semi_global<R: RankingFunction + ?Sized>(
        ranking: &R,
        n: usize,
        local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
        topology: &Topology,
        hop_diameter: u32,
    ) -> Self {
        let per_node = local_data
            .keys()
            .map(|&id| {
                let union = hop_scoped_union(id, local_data, topology, hop_diameter);
                (id, Arc::new(top_n_outliers(ranking, n, &union)))
            })
            .collect();
        GroundTruth { per_node }
    }

    /// The correct answer for one sensor, if it is part of the deployment.
    pub fn answer_for(&self, id: SensorId) -> Option<&OutlierEstimate> {
        self.per_node.get(&id).map(|answer| answer.as_ref())
    }

    /// Number of sensors the ground truth covers.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Iterates over `(sensor, correct answer)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (SensorId, &OutlierEstimate)> {
        self.per_node.iter().map(|(id, est)| (*id, est.as_ref()))
    }

    /// Grades a set of per-node estimates against this ground truth.
    pub fn grade(&self, estimates: &BTreeMap<SensorId, OutlierEstimate>) -> AccuracyReport {
        let mut report = AccuracyReport::default();
        for (id, truth) in &self.per_node {
            report.total_nodes += 1;
            match estimates.get(id) {
                Some(estimate) => {
                    if estimate.same_outliers_as(truth) {
                        report.correct_nodes += 1;
                    } else {
                        report.incorrect.push(*id);
                    }
                    let truth_keys = truth.keys();
                    if !truth_keys.is_empty() {
                        let found =
                            truth_keys.iter().filter(|key| estimate.contains_key(key)).count();
                        report.recall_sum += found as f64 / truth_keys.len() as f64;
                    } else {
                        report.recall_sum += 1.0;
                    }
                }
                None => report.missing.push(*id),
            }
        }
        report
    }
}

/// The result of grading every node's estimate against the ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyReport {
    /// Number of sensors graded.
    pub total_nodes: usize,
    /// Number of sensors whose estimate exactly matched the correct answer.
    pub correct_nodes: usize,
    /// Sensors whose estimate differed from the correct answer.
    pub incorrect: Vec<SensorId>,
    /// Sensors for which no estimate was supplied.
    pub missing: Vec<SensorId>,
    /// Sum over graded sensors of the fraction of their true outliers that
    /// appear in their estimate (used by [`AccuracyReport::mean_recall`]).
    pub recall_sum: f64,
}

impl AccuracyReport {
    /// Fraction of graded sensors with the exactly correct estimate (the
    /// paper's detection accuracy). Returns 1.0 for an empty deployment.
    pub fn accuracy(&self) -> f64 {
        if self.total_nodes == 0 {
            return 1.0;
        }
        self.correct_nodes as f64 / self.total_nodes as f64
    }

    /// Mean, over sensors, of the fraction of each sensor's true outliers
    /// that its estimate contains. A gentler measure than exact-set equality:
    /// a node that reports three of its four true outliers scores 0.75 here
    /// and 0 under [`AccuracyReport::accuracy`]. Sensors that supplied no
    /// estimate count as 0.
    pub fn mean_recall(&self) -> f64 {
        if self.total_nodes == 0 {
            return 1.0;
        }
        self.recall_sum / self.total_nodes as f64
    }

    /// Returns `true` if every graded sensor is exactly correct — the state
    /// Theorems 1 and 2 guarantee at termination on static data with no
    /// packet loss.
    pub fn all_correct(&self) -> bool {
        self.correct_nodes == self.total_nodes
    }
}

/// The **label-based** ground truth: which of the injected-anomaly labels
/// are *in scope* for each sensor — i.e. carried by a point of the dataset
/// its estimate is computed over (everyone's union for the global algorithm,
/// the `d`-hop union for the semi-global one).
///
/// Complements [`GroundTruth`], which grades against what a perfectly
/// informed ranking would report: `LabelTruth` instead grades against what
/// the workload *generator* injected, yielding the precision/recall numbers
/// a deployment operator would see.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelTruth {
    /// Per-sensor in-scope label sets, shared where identical (global).
    per_node: BTreeMap<SensorId, Arc<BTreeSet<PointKey>>>,
}

impl LabelTruth {
    /// Global scope: every sensor is graded against the labels carried by
    /// the union of all sensors' local data (one shared set).
    pub fn global(
        labels: &BTreeSet<PointKey>,
        local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
    ) -> Self {
        let in_scope = Arc::new(labels_among(labels, local_data.values().flatten()));
        let per_node = local_data.keys().map(|id| (*id, Arc::clone(&in_scope))).collect();
        LabelTruth { per_node }
    }

    /// Semi-global scope: sensor `p_i` is graded against the labels carried
    /// by the local data of sensors within `hop_diameter` hops of it.
    pub fn semi_global(
        labels: &BTreeSet<PointKey>,
        local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
        topology: &Topology,
        hop_diameter: u32,
    ) -> Self {
        let per_node = local_data
            .keys()
            .map(|&id| {
                let union = hop_scoped_union(id, local_data, topology, hop_diameter);
                (id, Arc::new(labels_among(labels, union.iter())))
            })
            .collect();
        LabelTruth { per_node }
    }

    /// The in-scope labels of one sensor.
    pub fn scope_for(&self, id: SensorId) -> Option<&BTreeSet<PointKey>> {
        self.per_node.get(&id).map(|s| s.as_ref())
    }

    /// Grades per-node estimates against the injected labels.
    ///
    /// Per node, with `hits = |estimate ∩ in-scope labels|`:
    /// precision is `hits / |estimate|` and recall is
    /// `hits / |in-scope labels|`. Both are vacuously 1.0 when they have
    /// nothing to measure — an empty estimate for precision (no false
    /// positives), an empty label scope for both (on unlabelled data the
    /// protocol still legitimately reports its `O_n`; only
    /// agreement-based accuracy is meaningful there, see
    /// [`LabelReport::has_labels`]). A sensor that supplied no estimate
    /// counts as an empty one. Note the recall of a correctly working
    /// protocol is capped below 1.0 whenever more than `n` labelled
    /// anomalies are in scope — the protocol reports `O_n`, not every
    /// anomaly.
    pub fn grade(&self, estimates: &BTreeMap<SensorId, OutlierEstimate>) -> LabelReport {
        let mut report = LabelReport::default();
        for (id, scope) in &self.per_node {
            report.total_nodes += 1;
            if !scope.is_empty() {
                report.labelled_nodes += 1;
            }
            let (est_len, hits) = match estimates.get(id) {
                Some(estimate) => {
                    let hits = estimate.keys().iter().filter(|key| scope.contains(key)).count();
                    (estimate.len(), hits)
                }
                None => (0, 0),
            };
            report.precision_sum +=
                if scope.is_empty() || est_len == 0 { 1.0 } else { hits as f64 / est_len as f64 };
            report.recall_sum +=
                if scope.is_empty() { 1.0 } else { hits as f64 / scope.len() as f64 };
        }
        report
    }
}

/// The result of grading estimates against injected ground-truth labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabelReport {
    /// Number of sensors graded.
    pub total_nodes: usize,
    /// Number of sensors with at least one labelled anomaly in scope.
    pub labelled_nodes: usize,
    /// Sum over sensors of the per-node label precision.
    pub precision_sum: f64,
    /// Sum over sensors of the per-node label recall.
    pub recall_sum: f64,
}

impl LabelReport {
    /// Mean per-node precision: of the outliers reported, the fraction that
    /// are injected anomalies. 1.0 for an empty deployment.
    pub fn mean_precision(&self) -> f64 {
        if self.total_nodes == 0 {
            return 1.0;
        }
        self.precision_sum / self.total_nodes as f64
    }

    /// Mean per-node recall: of the in-scope injected anomalies, the
    /// fraction reported. 1.0 for an empty deployment.
    pub fn mean_recall(&self) -> f64 {
        if self.total_nodes == 0 {
            return 1.0;
        }
        self.recall_sum / self.total_nodes as f64
    }

    /// Returns `true` if any graded sensor had labelled anomalies in scope
    /// (without which the recall numbers are vacuous).
    pub fn has_labels(&self) -> bool {
        self.labelled_nodes > 0
    }
}

/// The union of the local data of every sensor within `hop_diameter` hops
/// of `id` — the single source of the semi-global scoping rule shared by
/// [`GroundTruth`], [`LabelTruth`] and [`paired_truths`].
fn hop_scoped_union(
    id: SensorId,
    local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
    topology: &Topology,
    hop_diameter: u32,
) -> PointSet {
    topology
        .within_hops(id, hop_diameter)
        .iter()
        .filter_map(|peer| local_data.get(peer))
        .flatten()
        .cloned()
        .collect()
}

/// The label keys carried by `points`.
fn labels_among<'a>(
    labels: &BTreeSet<PointKey>,
    points: impl IntoIterator<Item = &'a DataPoint>,
) -> BTreeSet<PointKey> {
    points.into_iter().filter(|p| labels.contains(&p.key)).map(|p| p.key).collect()
}

/// Builds the detection-accuracy and label ground truths over **identical**
/// scoping in one pass: the global union (or, semi-globally, each node's
/// `d`-hop BFS and union) is computed once and feeds both the `O_n` answer
/// and the label scope. This is what the batch and streaming runners call —
/// it halves the per-slide scoping cost of the streaming driver and keeps
/// the two metrics guaranteed-consistent. `hop_scope` is `None` for global
/// (and centralized) scoping, `Some((topology, d))` for semi-global.
pub fn paired_truths<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    labels: &BTreeSet<PointKey>,
    local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
    hop_scope: Option<(&Topology, u32)>,
) -> (GroundTruth, LabelTruth) {
    match hop_scope {
        None => {
            let union: PointSet = local_data.values().flatten().cloned().collect();
            let answer = Arc::new(top_n_outliers(ranking, n, &union));
            let scope = Arc::new(labels_among(labels, union.iter()));
            (
                GroundTruth {
                    per_node: local_data.keys().map(|id| (*id, Arc::clone(&answer))).collect(),
                },
                LabelTruth {
                    per_node: local_data.keys().map(|id| (*id, Arc::clone(&scope))).collect(),
                },
            )
        }
        Some((topology, hop_diameter)) => {
            let mut truth = BTreeMap::new();
            let mut scopes = BTreeMap::new();
            for &id in local_data.keys() {
                let union = hop_scoped_union(id, local_data, topology, hop_diameter);
                scopes.insert(id, Arc::new(labels_among(labels, union.iter())));
                truth.insert(id, Arc::new(top_n_outliers(ranking, n, &union)));
            }
            (GroundTruth { per_node: truth }, LabelTruth { per_node: scopes })
        }
    }
}

/// Returns `true` if every pair of estimates reports the same outlier set —
/// the agreement property of Theorem 1.
///
/// The map's key set defines the population: agreement is judged over
/// exactly the estimates passed in. Under churn the runners collect
/// estimates from the **live** node set only (dead nodes are removed from
/// the simulator and never snapshotted), so this is Theorem 1 restricted to
/// the surviving network — a dead node's last opinion neither helps nor
/// hurts.
pub fn estimates_agree(estimates: &BTreeMap<SensorId, OutlierEstimate>) -> bool {
    let mut iter = estimates.values();
    let Some(first) = iter.next() else {
        return true;
    };
    iter.all(|e| e.same_outliers_as(first))
}

/// Convenience: collects the union of every sensor's local data and computes
/// `O_n(D)` directly (what a perfectly informed centralized node would report).
pub fn global_answer<R: RankingFunction + ?Sized>(
    ranking: &R,
    n: usize,
    local_data: &BTreeMap<SensorId, Vec<DataPoint>>,
) -> OutlierEstimate {
    let union: PointSet = local_data.values().flatten().cloned().collect();
    top_n_outliers(ranking, n, &union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::stream::SensorSpec;
    use wsn_data::{Epoch, Position, Timestamp};
    use wsn_ranking::NnDistance;

    fn pt(origin: u32, epoch: u64, v: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::ZERO, vec![v]).unwrap()
    }

    /// Three sensors on a chain; sensor 0 holds the only extreme value.
    fn local_data() -> BTreeMap<SensorId, Vec<DataPoint>> {
        let mut data = BTreeMap::new();
        data.insert(SensorId(0), vec![pt(0, 0, -100.0), pt(0, 1, 10.0), pt(0, 2, 10.2)]);
        data.insert(SensorId(1), vec![pt(1, 0, 11.0), pt(1, 1, 11.3), pt(1, 2, 11.5)]);
        data.insert(SensorId(2), vec![pt(2, 0, 12.0), pt(2, 1, 12.4), pt(2, 2, 12.7)]);
        data
    }

    fn chain_topology() -> Topology {
        let specs: Vec<SensorSpec> = (0..3)
            .map(|i| SensorSpec::new(SensorId(i), Position::new(i as f64 * 5.0, 0.0)))
            .collect();
        Topology::from_specs(&specs, 6.0)
    }

    #[test]
    fn global_truth_is_shared_by_every_node() {
        let truth = GroundTruth::global(&NnDistance, 1, &local_data());
        assert_eq!(truth.node_count(), 3);
        for (_, answer) in truth.iter() {
            assert_eq!(answer.points()[0].features, vec![-100.0]);
        }
        assert_eq!(global_answer(&NnDistance, 1, &local_data()).points()[0].features, vec![-100.0]);
    }

    #[test]
    fn global_truth_shares_one_answer_across_nodes() {
        let truth = GroundTruth::global(&NnDistance, 1, &local_data());
        let answers: Vec<_> = truth.per_node.values().collect();
        assert!(answers.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])), "one shared Arc, not copies");
    }

    #[test]
    fn semi_global_truth_respects_hop_distance() {
        let truth = GroundTruth::semi_global(&NnDistance, 1, &local_data(), &chain_topology(), 1);
        // Node 2 is two hops from node 0: its ground truth must not contain
        // node 0's extreme value.
        let answer_2 = truth.answer_for(SensorId(2)).unwrap();
        assert_ne!(answer_2.points()[0].features, vec![-100.0]);
        // Node 1 is adjacent to node 0: the extreme value is its answer.
        let answer_1 = truth.answer_for(SensorId(1)).unwrap();
        assert_eq!(answer_1.points()[0].features, vec![-100.0]);
        assert!(truth.answer_for(SensorId(9)).is_none());
    }

    #[test]
    fn semi_global_with_large_diameter_equals_global() {
        let data = local_data();
        let topo = chain_topology();
        let semi = GroundTruth::semi_global(&NnDistance, 2, &data, &topo, 10);
        let global = GroundTruth::global(&NnDistance, 2, &data);
        for (id, answer) in global.iter() {
            assert!(semi.answer_for(id).unwrap().same_outliers_as(answer));
        }
    }

    #[test]
    fn grading_counts_correct_incorrect_and_missing() {
        let data = local_data();
        let truth = GroundTruth::global(&NnDistance, 1, &data);
        let correct = global_answer(&NnDistance, 1, &data);
        let wrong = top_n_outliers(&NnDistance, 1, &data[&SensorId(1)].iter().cloned().collect());

        let mut estimates = BTreeMap::new();
        estimates.insert(SensorId(0), correct.clone());
        estimates.insert(SensorId(1), wrong);
        // Node 2 supplies nothing.
        let report = truth.grade(&estimates);
        assert_eq!(report.total_nodes, 3);
        assert_eq!(report.correct_nodes, 1);
        assert_eq!(report.incorrect, vec![SensorId(1)]);
        assert_eq!(report.missing, vec![SensorId(2)]);
        assert!((report.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!report.all_correct());
        // Recall: node 0 found its single true outlier (1.0), node 1 found
        // none of it (0.0), node 2 supplied nothing (0.0) — mean 1/3.
        assert!((report.mean_recall() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_counts_as_fully_accurate() {
        let report = AccuracyReport::default();
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.mean_recall(), 1.0);
        assert!(report.all_correct());
    }

    #[test]
    fn label_truth_grades_precision_and_recall() {
        let data = local_data();
        // The single injected anomaly is node 0's extreme value.
        let labels: BTreeSet<PointKey> = [pt(0, 0, -100.0).key].into_iter().collect();
        let truth = LabelTruth::global(&labels, &data);
        assert_eq!(truth.scope_for(SensorId(1)).unwrap().len(), 1);
        assert!(truth.scope_for(SensorId(9)).is_none());

        let correct = global_answer(&NnDistance, 1, &data); // reports the -100 point
        let wrong = top_n_outliers(&NnDistance, 1, &data[&SensorId(1)].iter().cloned().collect());
        let mut estimates = BTreeMap::new();
        estimates.insert(SensorId(0), correct);
        estimates.insert(SensorId(1), wrong);
        // Node 2 supplies nothing: empty estimate, precision 1, recall 0.
        let report = truth.grade(&estimates);
        assert_eq!(report.total_nodes, 3);
        assert_eq!(report.labelled_nodes, 3);
        assert!(report.has_labels());
        // Precision: node 0 = 1.0, node 1 = 0.0, node 2 (empty) = 1.0.
        assert!((report.mean_precision() - 2.0 / 3.0).abs() < 1e-12);
        // Recall: node 0 = 1.0, nodes 1 and 2 = 0.0.
        assert!((report.mean_recall() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn label_truth_semi_global_restricts_scope_by_hops() {
        let data = local_data();
        let labels: BTreeSet<PointKey> = [pt(0, 0, -100.0).key].into_iter().collect();
        let truth = LabelTruth::semi_global(&labels, &data, &chain_topology(), 1);
        // Node 2 is two hops from the label's origin: nothing in scope.
        assert!(truth.scope_for(SensorId(2)).unwrap().is_empty());
        assert_eq!(truth.scope_for(SensorId(1)).unwrap().len(), 1);
        // With nothing in scope and an empty estimate, node 2 scores 1/1.
        let report = truth.grade(&BTreeMap::new());
        assert_eq!(report.labelled_nodes, 2);
        assert!((report.recall_sum - 1.0).abs() < 1e-12, "only node 2 recalls vacuously");
    }

    #[test]
    fn paired_truths_match_the_individual_constructors() {
        let data = local_data();
        let labels: BTreeSet<PointKey> = [pt(0, 0, -100.0).key].into_iter().collect();
        let (truth, label_truth) = paired_truths(&NnDistance, 1, &labels, &data, None);
        assert_eq!(truth, GroundTruth::global(&NnDistance, 1, &data));
        assert_eq!(label_truth, LabelTruth::global(&labels, &data));
        let topo = chain_topology();
        let (truth, label_truth) = paired_truths(&NnDistance, 1, &labels, &data, Some((&topo, 1)));
        assert_eq!(truth, GroundTruth::semi_global(&NnDistance, 1, &data, &topo, 1));
        assert_eq!(label_truth, LabelTruth::semi_global(&labels, &data, &topo, 1));
    }

    #[test]
    fn empty_label_report_is_perfect() {
        let report = LabelReport::default();
        assert_eq!(report.mean_precision(), 1.0);
        assert_eq!(report.mean_recall(), 1.0);
        assert!(!report.has_labels());
    }

    #[test]
    fn agreement_check_detects_disagreement() {
        let data = local_data();
        let correct = global_answer(&NnDistance, 1, &data);
        let wrong = top_n_outliers(&NnDistance, 1, &data[&SensorId(1)].iter().cloned().collect());
        let mut estimates = BTreeMap::new();
        assert!(estimates_agree(&estimates), "an empty map trivially agrees");
        estimates.insert(SensorId(0), correct.clone());
        estimates.insert(SensorId(1), correct);
        assert!(estimates_agree(&estimates));
        estimates.insert(SensorId(2), wrong);
        assert!(!estimates_agree(&estimates));
    }

    #[test]
    fn agreement_is_judged_over_the_live_set_only() {
        // A dead node's stale estimate must not break agreement: the churn
        // runners simply never include it. Removing the disagreeing entry
        // (what remove_node does to the snapshot) restores agreement.
        let data = local_data();
        let correct = global_answer(&NnDistance, 1, &data);
        let stale = top_n_outliers(&NnDistance, 1, &data[&SensorId(1)].iter().cloned().collect());
        let mut estimates = BTreeMap::new();
        estimates.insert(SensorId(0), correct.clone());
        estimates.insert(SensorId(1), correct);
        estimates.insert(SensorId(2), stale);
        assert!(!estimates_agree(&estimates));
        estimates.remove(&SensorId(2));
        assert!(estimates_agree(&estimates), "agreement over the survivors");
    }
}
