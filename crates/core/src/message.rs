//! The protocol message of the distributed algorithms.
//!
//! Because of the broadcast nature of the wireless medium, a sensor cannot
//! send points to one neighbour without the others hearing them (§5.2).
//! The algorithm therefore accumulates everything it needs to tell *any*
//! neighbour into a single packet `M`: a list of point batches, each tagged
//! with the id of the neighbour it is intended for. A neighbour receiving `M`
//! extracts the points tagged with its own id and ignores the rest (though
//! it still paid the receive energy — that is accounted by the simulator).

use std::sync::Arc;
use wsn_data::{DataPoint, SensorId};

/// Fixed per-packet header bytes of the outlier protocol (sender id, entry
/// count, per-entry lengths).
pub const PROTOCOL_HEADER_BYTES: usize = 8;

/// Per-recipient tag bytes inside the packet.
pub const RECIPIENT_TAG_BYTES: usize = 4;

/// The broadcast packet `M`: recipient-tagged point batches.
///
/// Points are carried behind [`Arc`] handles: building a packet from a
/// sender's bookkeeping sets, fanning it out to every receiver and folding
/// it into each receiver's window all share one allocation per point — no
/// copy is made anywhere on the delivery path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutlierBroadcast {
    entries: Vec<(SensorId, Vec<Arc<DataPoint>>)>,
}

impl OutlierBroadcast {
    /// Creates an empty packet.
    pub fn new() -> Self {
        OutlierBroadcast { entries: Vec::new() }
    }

    /// Appends a batch of points addressed to `recipient`. Empty batches are
    /// ignored (the paper only appends non-empty `Z_j` differences).
    pub fn add_entry(&mut self, recipient: SensorId, points: Vec<DataPoint>) {
        self.add_entry_arcs(recipient, points.into_iter().map(Arc::new).collect());
    }

    /// [`OutlierBroadcast::add_entry`] for points already behind shared
    /// handles (the detectors' bookkeeping sets store them that way).
    pub fn add_entry_arcs(&mut self, recipient: SensorId, points: Vec<Arc<DataPoint>>) {
        if !points.is_empty() {
            self.entries.push((recipient, points));
        }
    }

    /// Returns `true` if no recipient has any points (nothing to broadcast).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of `(recipient, batch)` entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of points carried (counting duplicates across entries).
    pub fn point_count(&self) -> usize {
        self.entries.iter().map(|(_, pts)| pts.len()).sum()
    }

    /// The points tagged for `recipient` (what that neighbour extracts),
    /// as owned copies — the convenience form tests and examples use.
    pub fn points_for(&self, recipient: SensorId) -> Vec<DataPoint> {
        self.points_for_arcs(recipient).into_iter().map(|p| (*p).clone()).collect()
    }

    /// The points tagged for `recipient`, sharing the stored allocations —
    /// the zero-copy extraction the simulator adapter uses.
    pub fn points_for_arcs(&self, recipient: SensorId) -> Vec<Arc<DataPoint>> {
        self.entries
            .iter()
            .filter(|(id, _)| *id == recipient)
            .flat_map(|(_, pts)| pts.iter().cloned())
            .collect()
    }

    /// Iterates over the entries.
    pub fn entries(&self) -> impl Iterator<Item = (SensorId, &[Arc<DataPoint>])> {
        self.entries.iter().map(|(id, pts)| (*id, pts.as_slice()))
    }

    /// Bytes this packet occupies on the air: header, one tag per entry, and
    /// the wire size of every carried point.
    pub fn wire_size(&self) -> usize {
        PROTOCOL_HEADER_BYTES
            + self
                .entries
                .iter()
                .map(|(_, pts)| {
                    RECIPIENT_TAG_BYTES + pts.iter().map(|p| p.wire_size()).sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::{Epoch, Timestamp};

    fn pt(origin: u32, epoch: u64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::ZERO, vec![1.0, 2.0, 3.0])
            .unwrap()
    }

    #[test]
    fn empty_packet_is_empty_and_small() {
        let m = OutlierBroadcast::new();
        assert!(m.is_empty());
        assert_eq!(m.point_count(), 0);
        assert_eq!(m.wire_size(), PROTOCOL_HEADER_BYTES);
        assert_eq!(m, OutlierBroadcast::default());
    }

    #[test]
    fn empty_batches_are_not_recorded() {
        let mut m = OutlierBroadcast::new();
        m.add_entry(SensorId(2), vec![]);
        assert!(m.is_empty());
        m.add_entry(SensorId(2), vec![pt(1, 0)]);
        assert!(!m.is_empty());
        assert_eq!(m.entry_count(), 1);
    }

    #[test]
    fn recipients_extract_only_their_points() {
        let mut m = OutlierBroadcast::new();
        m.add_entry(SensorId(2), vec![pt(1, 0), pt(1, 1)]);
        m.add_entry(SensorId(3), vec![pt(1, 2)]);
        assert_eq!(m.points_for(SensorId(2)).len(), 2);
        assert_eq!(m.points_for(SensorId(3)).len(), 1);
        assert!(m.points_for(SensorId(4)).is_empty());
        assert_eq!(m.point_count(), 3);
        assert_eq!(m.entries().count(), 2);
    }

    #[test]
    fn wire_size_counts_tags_and_points() {
        let mut m = OutlierBroadcast::new();
        m.add_entry(SensorId(2), vec![pt(1, 0)]);
        m.add_entry(SensorId(3), vec![pt(1, 0), pt(1, 1)]);
        let expected = PROTOCOL_HEADER_BYTES + 2 * RECIPIENT_TAG_BYTES + 3 * pt(1, 0).wire_size();
        assert_eq!(m.wire_size(), expected);
    }
}
