//! The semi-global (hop-limited) outlier detection algorithm (§6, Algorithm 2).
//!
//! Instead of the outliers of the whole network's data, each sensor computes
//! the outliers of the data sampled within `d` hops of itself
//! (`O_n(D_i^{≤d})`). Every point carries a hop counter: 0 at birth,
//! incremented each time it is forwarded. A sensor keeps only the lowest-hop
//! copy of each observation, runs the global sufficient-set computation
//! separately on every hop-prefix `P_i^{≤h}` for `h ∈ [0, d−1]`, unions the
//! results (keeping minimum hops), suppresses anything the neighbour already
//! holds at an equal or smaller hop, and broadcasts the rest. Setting `d` to
//! at least the network diameter makes the algorithm behave exactly like the
//! global one.

use crate::cache::RevisionCache;
use crate::detector::OutlierDetector;
use crate::ledger::{fold_min_timestamp, QuietLedger};
use crate::message::OutlierBroadcast;
use crate::persist::{self, PersistError};
use crate::sufficient::FixedPointEngine;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, HopCount, PointSet, SensorId, SlidingWindow, Timestamp};
use wsn_json::JsonValue;
use wsn_ranking::index::{AnyIndex, IndexStrategy};
use wsn_ranking::{top_n_outliers, OutlierEstimate, RankingFunction};

/// One hop-prefix `P_i^{≤h}` of the window together with its neighbour
/// index, precomputed once per window revision and reused for every
/// neighbour's sufficient-set fixed point.
type HopPrefixes = Vec<(PointSet, AnyIndex)>;

/// Per-sensor state of the semi-global algorithm.
#[derive(Debug, Clone)]
pub struct SemiGlobalNode<R> {
    id: SensorId,
    ranking: R,
    n: usize,
    hop_diameter: HopCount,
    window: SlidingWindow,
    /// Per neighbour, the points this node knows the neighbour holds at the
    /// minimum hop count at which they were ever exchanged in either
    /// direction (`[D^i_{i,j} ∪ D^i_{j,i}]^min`), maintained incrementally:
    /// sends and receipts min-hop-insert into it, window slides evict from
    /// it. Only the min-hop union is ever read, so the two directions live
    /// merged.
    shared_with: BTreeMap<SensorId, PointSet>,
    /// The smallest timestamp ever inserted into any shared-knowledge set
    /// and still possibly present (conservative: never later than the true
    /// minimum). Clock advances whose cutoff does not pass it skip the
    /// whole per-neighbour eviction sweep in O(1) — the common case, since
    /// every delivery advances the clock but only window slides evict.
    shared_oldest: Option<Timestamp>,
    points_sent: u64,
    points_received: u64,
    /// The hop-prefixes `P_i^{≤h}` for `h ∈ [0, d-1]` with their neighbour
    /// indexes, invalidated whenever the window slides or changes.
    prefix_cache: RevisionCache<HopPrefixes>,
    /// Per-neighbour revision bookkeeping behind the "nothing to send" memo
    /// (see [`crate::global::GlobalNode`] for the full rationale).
    ledger: QuietLedger,
    /// One reusable sufficient-set evaluator per hop prefix `P_i^{≤h}`:
    /// each prefix is a pure function of the window contents, so the window
    /// revision pins engine `h`'s caches to prefix `h` and the seed/support
    /// work is shared across all neighbours of a protocol step.
    engines: Vec<FixedPointEngine>,
    /// Silence threshold in seconds after which a neighbour is presumed dead
    /// (`None` = disabled; see [`crate::global::GlobalNode`]).
    liveness_timeout_secs: Option<f64>,
    /// The clock of the most recent [`OutlierDetector::advance_time`] call.
    last_now: Timestamp,
    /// When each neighbour was last heard from (maintained only while the
    /// timeout is on).
    last_heard: BTreeMap<SensorId, Timestamp>,
    /// Neighbours aged out by the timeout, skipped until they speak again.
    presumed_dead: BTreeSet<SensorId>,
}

impl<R: RankingFunction> SemiGlobalNode<R> {
    /// Creates the state for sensor `id`, computing the top `n` outliers of
    /// the data within `hop_diameter` hops (the paper's `d` / `ε` parameter).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `hop_diameter` is zero.
    pub fn new(
        id: SensorId,
        ranking: R,
        n: usize,
        hop_diameter: HopCount,
        window: WindowConfig,
    ) -> Self {
        assert!(n > 0, "the number of reported outliers n must be at least 1");
        assert!(hop_diameter > 0, "the hop diameter d must be at least 1");
        SemiGlobalNode {
            id,
            ranking,
            n,
            hop_diameter,
            window: SlidingWindow::new(window),
            shared_with: BTreeMap::new(),
            shared_oldest: None,
            points_sent: 0,
            points_received: 0,
            prefix_cache: RevisionCache::new(),
            ledger: QuietLedger::new(),
            engines: (0..hop_diameter).map(|_| FixedPointEngine::new()).collect(),
            liveness_timeout_secs: None,
            last_now: Timestamp::ZERO,
            last_heard: BTreeMap::new(),
            presumed_dead: BTreeSet::new(),
        }
    }

    /// Enables the staleness liveness timeout (see
    /// [`crate::global::GlobalNode::with_liveness_timeout`]).
    pub fn with_liveness_timeout(mut self, secs: f64) -> Self {
        self.liveness_timeout_secs = Some(secs);
        self
    }

    /// Whether this node currently retains any per-neighbour protocol state
    /// for `neighbor` (diagnostics for the churn tests).
    pub fn shares_state_with(&self, neighbor: SensorId) -> bool {
        self.shared_with.contains_key(&neighbor)
            || self.engines.iter().any(|e| e.tracks_neighbor(neighbor))
            || self.last_heard.contains_key(&neighbor)
    }

    /// Whether the liveness timeout has aged `neighbor` out.
    pub fn presumes_dead(&self, neighbor: SensorId) -> bool {
        self.presumed_dead.contains(&neighbor)
    }

    /// Drops all per-neighbour state for `neighbor` across every hop
    /// prefix's engine.
    fn forget_neighbor(&mut self, neighbor: SensorId) {
        self.shared_with.remove(&neighbor);
        self.ledger.forget(neighbor);
        for engine in &mut self.engines {
            engine.forget_neighbor(neighbor);
        }
        self.last_heard.remove(&neighbor);
    }

    /// The hop diameter `d` of the spatial extent of detection.
    pub fn hop_diameter(&self) -> HopCount {
        self.hop_diameter
    }

    /// The ranking function in use.
    pub fn ranking(&self) -> &R {
        &self.ranking
    }

    /// Total data points this node has put on the air so far.
    pub fn points_sent(&self) -> u64 {
        self.points_sent
    }

    /// Total data points this node has accepted from neighbours so far.
    pub fn points_received(&self) -> u64 {
        self.points_received
    }

    /// The points this node knows it shares with `neighbor`, at the hop
    /// counts at which they were exchanged (min-hop merged). The returned
    /// set shares the stored points.
    pub fn known_common_with(&self, neighbor: SensorId) -> PointSet {
        self.shared_with.get(&neighbor).cloned().unwrap_or_default()
    }

    /// Forwards a just-recorded shared-knowledge delta to every hop
    /// prefix's engine: a point at hop `v` enters `known^{≤h}` for every
    /// `h ≥ v`, and engines whose prefix the delta does not touch still get
    /// an (empty) note so their sync chain follows the bookkeeping
    /// revision.
    fn note_shared(&mut self, neighbor: SensorId, fresh: &[Arc<DataPoint>]) {
        let revision = self.ledger.state(neighbor, 0).1;
        let mut batch: Vec<Arc<DataPoint>> = Vec::with_capacity(fresh.len());
        for (h, engine) in self.engines.iter_mut().enumerate() {
            batch.clear();
            batch.extend(fresh.iter().filter(|p| p.hop <= h as HopCount).cloned());
            engine.note_shared_points(neighbor, &batch, revision);
        }
    }

    /// Serializes this node's complete canonical protocol state for
    /// [`crate::persist`] — like
    /// [`crate::global::GlobalNode::persist_snapshot`], plus the hop
    /// diameter and one engine chain set per hop prefix. The hop-prefix
    /// cache is derived state and not included.
    pub fn persist_snapshot(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::from("semiglobal")),
            ("id".into(), JsonValue::from(self.id.raw())),
            ("n".into(), JsonValue::from(self.n)),
            ("hop_diameter".into(), JsonValue::from(u32::from(self.hop_diameter))),
            ("liveness_timeout_secs".into(), persist::opt_f64_to_json(self.liveness_timeout_secs)),
            ("window".into(), persist::snapshot_window(&self.window)),
            ("shared_with".into(), persist::sets_by_id_to_json(&self.shared_with)),
            (
                "shared_oldest".into(),
                persist::opt_u64_to_json(self.shared_oldest.map(|t| t.as_micros())),
            ),
            ("points_sent".into(), JsonValue::from(self.points_sent)),
            ("points_received".into(), JsonValue::from(self.points_received)),
            ("ledger".into(), persist::ledger_to_json(&self.ledger)),
            (
                "engines".into(),
                JsonValue::Array(self.engines.iter().map(persist::engine_to_json).collect()),
            ),
            ("last_now".into(), JsonValue::from(self.last_now.as_micros())),
            ("last_heard".into(), persist::times_by_id_to_json(&self.last_heard)),
            ("presumed_dead".into(), persist::ids_to_json(self.presumed_dead.iter().copied())),
        ])
    }

    /// Installs a [`SemiGlobalNode::persist_snapshot`] into this node,
    /// refusing snapshots from a differently configured node (id, `n`, hop
    /// diameter, window length, liveness timeout).
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] for malformed dumps,
    /// [`PersistError::Mismatch`] for configuration disagreements. On error
    /// the node is left untouched.
    pub fn persist_restore(&mut self, dump: &JsonValue) -> Result<(), PersistError> {
        persist::expect_kind(dump, "semiglobal")?;
        let id = persist::u32_field(dump, "id")?;
        if id != self.id.raw() {
            return Err(PersistError::Mismatch(format!(
                "snapshot is for sensor {id}, restoring into sensor {}",
                self.id.raw()
            )));
        }
        let n = persist::usize_field(dump, "n")?;
        if n != self.n {
            return Err(PersistError::Mismatch(format!(
                "snapshot reports top-{n}, this node reports top-{}",
                self.n
            )));
        }
        let hop_diameter = persist::u32_field(dump, "hop_diameter")?;
        if hop_diameter != u32::from(self.hop_diameter) {
            return Err(PersistError::Mismatch(format!(
                "snapshot hop diameter is {hop_diameter}, this node's is {}",
                self.hop_diameter
            )));
        }
        if persist::opt_f64_field(dump, "liveness_timeout_secs")? != self.liveness_timeout_secs {
            return Err(PersistError::Mismatch("liveness timeout differs".into()));
        }
        let window = persist::restore_window(persist::field(dump, "window")?)?;
        if window.config().length_micros != self.window.config().length_micros {
            return Err(PersistError::Mismatch(format!(
                "snapshot window is {}µs long, this node's is {}µs",
                window.config().length_micros,
                self.window.config().length_micros
            )));
        }
        let engine_values = persist::array_field(dump, "engines")?;
        if engine_values.len() != self.engines.len() {
            return Err(PersistError::Mismatch(format!(
                "snapshot holds {} engine chains, this node runs {}",
                engine_values.len(),
                self.engines.len()
            )));
        }
        let engine_dumps = engine_values
            .iter()
            .map(persist::engine_dumps_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let shared_with = persist::sets_by_id_from_json(persist::field(dump, "shared_with")?)?;
        let shared_oldest =
            persist::opt_u64_field(dump, "shared_oldest")?.map(Timestamp::from_micros);
        let points_sent = persist::u64_field(dump, "points_sent")?;
        let points_received = persist::u64_field(dump, "points_received")?;
        let ledger = persist::ledger_from_json(persist::field(dump, "ledger")?)?;
        let last_now = Timestamp::from_micros(persist::u64_field(dump, "last_now")?);
        let last_heard = persist::times_by_id_from_json(persist::field(dump, "last_heard")?)?;
        let presumed_dead: BTreeSet<SensorId> =
            persist::ids_from_json(persist::field(dump, "presumed_dead")?)?.into_iter().collect();
        self.window = window;
        self.shared_with = shared_with;
        self.shared_oldest = shared_oldest;
        self.points_sent = points_sent;
        self.points_received = points_received;
        self.prefix_cache.invalidate();
        self.ledger = ledger;
        for (engine, dumps) in self.engines.iter_mut().zip(engine_dumps) {
            engine.restore_neighbor_states(dumps);
        }
        self.last_now = last_now;
        self.last_heard = last_heard;
        self.presumed_dead = presumed_dead;
        Ok(())
    }
}

impl<R: RankingFunction> OutlierDetector for SemiGlobalNode<R> {
    fn id(&self) -> SensorId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    fn add_local_points(&mut self, points: Vec<DataPoint>) {
        for mut p in points {
            p.hop = 0; // points are born at their origin
            self.window.insert(p);
        }
    }

    fn receive(&mut self, from: SensorId, points: Vec<DataPoint>) {
        self.receive_arcs(from, points.into_iter().map(Arc::new).collect());
    }

    fn receive_arcs(&mut self, from: SensorId, points: Vec<Arc<DataPoint>>) {
        if self.liveness_timeout_secs.is_some() {
            self.last_heard.insert(from, self.last_now);
            self.presumed_dead.remove(&from);
        }
        let shared = self.shared_with.entry(from).or_default();
        let mut fresh: Vec<Arc<DataPoint>> = Vec::new();
        for p in points {
            if p.hop > self.hop_diameter {
                // A copy that travelled farther than the spatial extent can
                // never influence this node's result; ignore it outright.
                continue;
            }
            // The bookkeeping set, the window and the sender's copy share
            // one allocation.
            if shared.insert_min_hop_arc(Arc::clone(&p)).changed() {
                fresh.push(Arc::clone(&p));
            }
            if self.window.insert_arc(p) {
                self.points_received += 1;
            }
        }
        if !fresh.is_empty() {
            self.ledger.bump(from);
            self.note_shared(from, &fresh);
        }
        if let Some(min_ts) = fresh.iter().map(|p| p.timestamp).min() {
            fold_min_timestamp(&mut self.shared_oldest, min_ts);
        }
    }

    fn advance_time(&mut self, now: Timestamp) {
        self.last_now = now;
        if let Some(timeout) = self.liveness_timeout_secs {
            let stale: Vec<SensorId> = self
                .last_heard
                .iter()
                .filter(|(_, heard)| now.as_secs_f64() - heard.as_secs_f64() > timeout)
                .map(|(j, _)| *j)
                .collect();
            for j in stale {
                self.forget_neighbor(j);
                self.presumed_dead.insert(j);
                crate::telemetry::STALE_NEIGHBORS_PRUNED.add(1);
            }
        }
        self.window.advance_to(now);
        let cutoff = self.window.config().cutoff(now);
        self.ledger.evict_and_bump_gated(&mut self.shared_with, cutoff, &mut self.shared_oldest);
    }

    fn retain_neighbors(&mut self, live: &[SensorId]) {
        let tracked: BTreeSet<SensorId> = self
            .shared_with
            .keys()
            .copied()
            .chain(self.engines.iter().flat_map(|e| e.tracked_neighbors()))
            .chain(self.last_heard.keys().copied())
            .chain(self.presumed_dead.iter().copied())
            .collect();
        for j in tracked {
            if !live.contains(&j) {
                self.forget_neighbor(j);
                self.presumed_dead.remove(&j);
                crate::telemetry::STALE_NEIGHBORS_PRUNED.add(1);
            }
        }
    }

    fn process(&mut self, neighbors: &[SensorId]) -> Option<OutlierBroadcast> {
        // A zero-copy snapshot of P_i: the window is read, never cloned, and
        // the hop-prefixes derived from it share its stored points.
        let pi = self.window.snapshot();
        let hop_diameter = self.hop_diameter;
        let revision = self.window.revision();
        let prefixes = self.prefix_cache.get_or_build(revision, || {
            (0..hop_diameter)
                .map(|h| {
                    let pi_h = pi.filter_max_hop(h);
                    let index = AnyIndex::build(IndexStrategy::Auto, &pi_h);
                    (pi_h, index)
                })
                .collect()
        });
        let mut message = OutlierBroadcast::new();
        for &j in neighbors {
            if j == self.id || self.presumed_dead.contains(&j) {
                continue;
            }
            if self.liveness_timeout_secs.is_some() {
                // First contact attempt starts the liveness clock, so a
                // neighbour that never answers also ages out.
                self.last_heard.entry(j).or_insert(self.last_now);
            }
            let state = self.ledger.state(j, revision);
            if self.ledger.is_quiet(j, state) {
                // Same P_i, same shared knowledge: replay the empty outcome.
                continue;
            }
            // The min-hop shared-knowledge set is maintained incrementally;
            // reading it here is free.
            let empty = PointSet::new();
            let known = self.shared_with.get(&j).unwrap_or(&empty);
            // Per-prefix sufficient sets, hop-incremented and min-merged.
            // The hop increment necessarily materialises a fresh copy of
            // each forwarded point; every set below shares those copies.
            let mut z = PointSet::new();
            for (h, (pi_h, index)) in prefixes.iter().enumerate() {
                let known_h = known.filter_max_hop(h as HopCount);
                let z_h = self.engines[h].sufficient_set(
                    &self.ranking,
                    self.n,
                    pi_h,
                    Some(index),
                    j,
                    &known_h,
                    state,
                );
                for p in z_h.iter() {
                    z.insert_min_hop(p.with_incremented_hop());
                }
            }
            // Suppress points the neighbour already holds at an equal or
            // smaller hop count.
            let to_send: Vec<&Arc<DataPoint>> = z
                .iter_arcs()
                .filter(|x| match known.get(&x.key) {
                    Some(y) => x.hop < y.hop,
                    None => true,
                })
                .collect();
            if to_send.is_empty() {
                self.ledger.mark_quiet(j, state);
                continue;
            }
            let batch: Vec<Arc<DataPoint>> = to_send.into_iter().map(Arc::clone).collect();
            if let Some(min_ts) = batch.iter().map(|p| p.timestamp).min() {
                fold_min_timestamp(&mut self.shared_oldest, min_ts);
            }
            let shared = self.shared_with.entry(j).or_default();
            let mut recorded: Vec<Arc<DataPoint>> = Vec::with_capacity(batch.len());
            for p in &batch {
                if shared.insert_min_hop_arc(Arc::clone(p)).changed() {
                    recorded.push(Arc::clone(p));
                }
            }
            self.ledger.bump(j);
            self.note_shared(j, &recorded);
            self.points_sent += batch.len() as u64;
            crate::telemetry::POINTS_BROADCAST.add(batch.len() as u64);
            crate::telemetry::NEIGHBOR_BATCH_POINTS.record(batch.len() as u64);
            message.add_entry_arcs(j, batch);
        }
        if message.is_empty() {
            None
        } else {
            Some(message)
        }
    }

    fn estimate(&self) -> OutlierEstimate {
        let in_range = self.window.contents().filter_max_hop(self.hop_diameter);
        top_n_outliers(&self.ranking, self.n, &in_range)
    }

    fn held_points(&self) -> &PointSet {
        self.window.contents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_data::Epoch;
    use wsn_ranking::NnDistance;

    fn pt(origin: u32, epoch: u64, v: f64) -> DataPoint {
        DataPoint::new(SensorId(origin), Epoch(epoch), Timestamp::from_secs(1), vec![v]).unwrap()
    }

    fn window() -> WindowConfig {
        WindowConfig::from_secs(1_000).unwrap()
    }

    /// Builds a chain of `count` semi-global nodes with the given hop
    /// diameter; node `i` holds a small cluster around `10 * i` plus, for the
    /// first node, one clear outlier.
    fn chain(count: u32, d: HopCount) -> Vec<SemiGlobalNode<NnDistance>> {
        (0..count)
            .map(|i| {
                let mut node = SemiGlobalNode::new(SensorId(i), NnDistance, 1, d, window());
                let base = 10.0 * i as f64;
                node.add_local_points((0..4).map(|e| pt(i, e, base + e as f64 * 0.1)).collect());
                node
            })
            .collect()
    }

    /// Synchronously runs the chain protocol (each node talks to its chain
    /// neighbours) until no node has anything to send.
    fn run_chain(nodes: &mut [SemiGlobalNode<NnDistance>]) {
        let ids: Vec<SensorId> = nodes.iter().map(|n| n.id()).collect();
        for _ in 0..100 {
            let mut progress = false;
            for idx in 0..nodes.len() {
                let mut neighbors = Vec::new();
                if idx > 0 {
                    neighbors.push(ids[idx - 1]);
                }
                if idx + 1 < nodes.len() {
                    neighbors.push(ids[idx + 1]);
                }
                if let Some(m) = nodes[idx].process(&neighbors) {
                    progress = true;
                    for (nb_idx, nb_id) in ids.iter().enumerate() {
                        if neighbors.contains(nb_id) {
                            let pts = m.points_for(*nb_id);
                            if !pts.is_empty() {
                                let from = ids[idx];
                                nodes[nb_idx].receive(from, pts);
                            }
                        }
                    }
                }
            }
            if !progress {
                return;
            }
        }
        panic!("chain protocol did not terminate");
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(std::panic::catch_unwind(|| SemiGlobalNode::new(
            SensorId(1),
            NnDistance,
            0,
            1,
            window()
        ))
        .is_err());
        assert!(std::panic::catch_unwind(|| SemiGlobalNode::new(
            SensorId(1),
            NnDistance,
            1,
            0,
            window()
        ))
        .is_err());
        let node = SemiGlobalNode::new(SensorId(1), NnDistance, 2, 3, window());
        assert_eq!(node.hop_diameter(), 3);
        assert_eq!(node.n(), 2);
        assert_eq!(node.id(), SensorId(1));
    }

    #[test]
    fn local_points_are_reset_to_hop_zero() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.add_local_points(vec![pt(1, 0, 5.0).with_hop(7)]);
        assert_eq!(node.held_points().iter().next().unwrap().hop, 0);
    }

    #[test]
    fn points_beyond_the_hop_diameter_are_ignored_on_receipt() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.receive(SensorId(2), vec![pt(2, 0, 5.0).with_hop(3)]);
        assert!(node.held_points().is_empty());
        assert_eq!(node.points_received(), 0);
        node.receive(SensorId(2), vec![pt(2, 1, 5.0).with_hop(2)]);
        assert_eq!(node.points_received(), 1);
    }

    #[test]
    fn sent_points_carry_incremented_hops_bounded_by_d() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.add_local_points((0..4).map(|e| pt(1, e, e as f64)).collect());
        node.receive(SensorId(3), vec![pt(3, 0, 100.0).with_hop(1)]);
        let m = node.process(&[SensorId(2)]).expect("something to send");
        for p in m.points_for(SensorId(2)) {
            assert!(p.hop >= 1, "forwarded copies have travelled at least one hop");
            assert!(p.hop <= 2, "no copy may claim more hops than the diameter");
        }
    }

    #[test]
    fn chain_with_d1_keeps_detection_local() {
        // Three nodes in a chain, d = 1: the ends never learn about each
        // other's data, so their estimates are based on at most their own and
        // the middle node's points.
        let mut nodes = chain(3, 1);
        // Give node 0 an extreme outlier.
        nodes[0].add_local_points(vec![pt(0, 99, -500.0)]);
        run_chain(&mut nodes);
        // Node 2 must not hold the far-away outlier: it lives two hops away.
        assert!(
            !nodes[2].held_points().iter().any(|p| p.features[0] == -500.0),
            "a d=1 node must never see data from two hops away"
        );
        // Node 1 (adjacent) does see it and reports it.
        assert_eq!(nodes[1].estimate().points()[0].features, vec![-500.0]);
    }

    #[test]
    fn chain_with_large_d_behaves_like_the_global_algorithm() {
        let mut nodes = chain(4, 8);
        nodes[3].add_local_points(vec![pt(3, 99, 500.0)]);
        run_chain(&mut nodes);
        // Everybody agrees on the single global outlier at 500.
        for node in &nodes {
            assert_eq!(
                node.estimate().points()[0].features,
                vec![500.0],
                "node {} disagrees",
                node.id()
            );
        }
    }

    #[test]
    fn larger_hop_diameter_moves_more_points() {
        let mut local = chain(4, 1);
        run_chain(&mut local);
        let sent_local: u64 = local.iter().map(|n| n.points_sent()).sum();

        let mut wide = chain(4, 3);
        run_chain(&mut wide);
        let sent_wide: u64 = wide.iter().map(|n| n.points_sent()).sum();
        assert!(sent_wide > sent_local, "d=3 sent {sent_wide} points, d=1 sent {sent_local}");
    }

    #[test]
    fn known_common_tracks_minimum_hops() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 3, window());
        node.receive(SensorId(2), vec![pt(3, 0, 5.0).with_hop(2)]);
        node.receive(SensorId(2), vec![pt(3, 0, 5.0).with_hop(1)]);
        let known = node.known_common_with(SensorId(2));
        assert_eq!(known.get(&pt(3, 0, 5.0).key).unwrap().hop, 1);
        assert!(node.known_common_with(SensorId(9)).is_empty());
    }

    #[test]
    fn window_eviction_cleans_all_bookkeeping() {
        let mut node = SemiGlobalNode::new(
            SensorId(1),
            NnDistance,
            1,
            2,
            WindowConfig::from_secs(10).unwrap(),
        );
        node.add_local_points(vec![pt(1, 0, 1.0)]);
        node.receive(SensorId(2), vec![pt(2, 0, 2.0).with_hop(1)]);
        node.advance_time(Timestamp::from_secs(100));
        assert!(node.held_points().is_empty());
        assert!(node.known_common_with(SensorId(2)).is_empty());
    }

    #[test]
    fn estimate_only_uses_points_within_the_diameter() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.add_local_points((0..4).map(|e| pt(1, e, e as f64 * 0.1)).collect());
        node.receive(SensorId(2), vec![pt(5, 0, 1000.0).with_hop(2)]);
        // The far value is within the diameter and dominates the estimate.
        assert_eq!(node.estimate().points()[0].features, vec![1000.0]);
    }

    #[test]
    fn dead_neighbor_state_is_pruned_and_pins_no_points() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.add_local_points((0..4).map(|e| pt(1, e, e as f64 * 0.1)).collect());
        let shared = Arc::new(pt(2, 0, 500.0).with_hop(1));
        node.receive_arcs(SensorId(2), vec![Arc::clone(&shared)]);
        // Run one exchange round so per-neighbour engine state exists too.
        let _ = node.process(&[SensorId(2)]);
        assert!(node.shares_state_with(SensorId(2)));

        node.retain_neighbors(&[]);
        assert!(!node.shares_state_with(SensorId(2)), "all per-neighbour state dropped");
        // Flush the window so the held copy is evicted as well, then run one
        // protocol step against a live neighbour: that rolls the engines'
        // revision-scoped own-window caches forward. The dead neighbour's
        // hypothetical-set state would survive that roll — only the explicit
        // prune above removes it. Afterwards the only strong reference left
        // must be the test's own.
        node.advance_time(Timestamp::from_secs(5_000));
        let _ = node.process(&[SensorId(3)]);
        assert_eq!(Arc::strong_count(&shared), 1, "dead neighbour pins no data points");
    }

    #[test]
    fn retain_neighbors_keeps_live_neighbors_untouched() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.receive(SensorId(2), vec![pt(2, 0, 5.0).with_hop(1)]);
        node.receive(SensorId(3), vec![pt(3, 0, 6.0).with_hop(1)]);
        node.retain_neighbors(&[SensorId(2)]);
        assert!(node.shares_state_with(SensorId(2)), "live neighbour survives");
        assert!(!node.shares_state_with(SensorId(3)), "dead neighbour pruned");
    }

    #[test]
    fn silent_neighbors_age_out_and_resync_on_return() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window())
            .with_liveness_timeout(30.0);
        node.add_local_points((0..4).map(|e| pt(1, e, e as f64 * 0.1)).collect());
        node.advance_time(Timestamp::from_secs(1));
        // A contact attempt starts the liveness clock for the silent peer.
        let _ = node.process(&[SensorId(2)]);
        node.advance_time(Timestamp::from_secs(40));
        assert!(node.presumes_dead(SensorId(2)), "silent neighbour aged out");
        // A presumed-dead neighbour is skipped entirely by process.
        assert!(node.process(&[SensorId(2)]).is_none());
        // Hearing from it again resurrects it and restarts the exchange.
        node.receive(SensorId(2), vec![pt(2, 9, 7.0).with_hop(1)]);
        assert!(!node.presumes_dead(SensorId(2)));
        assert!(node.process(&[SensorId(2)]).is_some(), "resync resumes from scratch");
    }

    #[test]
    fn persist_snapshot_round_trips_mid_protocol() {
        let mut nodes = chain(3, 2);
        nodes[0].add_local_points(vec![pt(0, 99, -500.0)]);
        // A couple of exchange rounds leaves live per-neighbour state in
        // every hop prefix's engine.
        for _ in 0..2 {
            for idx in 0..nodes.len() {
                let neighbors: Vec<SensorId> = [idx.wrapping_sub(1), idx + 1]
                    .iter()
                    .filter_map(|&i| nodes.get(i).map(|n| n.id()))
                    .collect();
                if let Some(m) = nodes[idx].process(&neighbors) {
                    let from = nodes[idx].id();
                    for (nb, node) in nodes.iter_mut().enumerate() {
                        let pts = m.points_for(node.id());
                        if nb != idx && !pts.is_empty() {
                            node.receive(from, pts);
                        }
                    }
                }
            }
        }
        let dump = nodes[1].persist_snapshot();
        let mut fresh = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        fresh.persist_restore(&dump).unwrap();
        assert_eq!(fresh.persist_snapshot(), dump, "restore is lossless");
        assert_eq!(
            fresh.process(&[SensorId(0), SensorId(2)]),
            nodes[1].process(&[SensorId(0), SensorId(2)]),
            "the restored node continues identically"
        );
        assert!(fresh.estimate().same_outliers_as(&nodes[1].estimate()));
        // A node with a different hop diameter refuses the snapshot.
        let mut other = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 3, window());
        assert!(matches!(other.persist_restore(&dump), Err(PersistError::Mismatch(_))));
    }

    #[test]
    fn liveness_timeout_off_never_presumes_death() {
        let mut node = SemiGlobalNode::new(SensorId(1), NnDistance, 1, 2, window());
        node.add_local_points(vec![pt(1, 0, 1.0)]);
        node.advance_time(Timestamp::from_secs(1));
        let _ = node.process(&[SensorId(2)]);
        node.advance_time(Timestamp::from_secs(900));
        assert!(!node.presumes_dead(SensorId(2)), "default behaviour is unchanged");
    }
}
