//! Reusable experiment runner (§7.1's simulation set-up as a library).
//!
//! Every figure of the evaluation is a sweep over the same kind of run: build
//! the 53-sensor lab deployment, generate its synthetic trace, pick an
//! algorithm (Centralized, Global-NN, Global-KNN, or Semi-global with some
//! hop diameter ε), pick the sliding-window length `w` and the number of
//! reported outliers `n`, simulate, and read off per-node energy and
//! detection accuracy. [`run_experiment`] packages exactly that; the examples
//! and the `wsn-bench` figure harness are thin loops around it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::app::{DetectorApp, SamplingSchedule};
use crate::centralized::CentralizedApp;
use crate::detector::OutlierDetector;
use crate::error::CoreError;
use crate::global::GlobalNode;
use crate::message::OutlierBroadcast;
use crate::metrics::{estimates_agree, paired_truths, AccuracyReport, LabelReport};
use crate::semiglobal::SemiGlobalNode;
use wsn_data::impute::WindowMeanImputer;
use wsn_data::lab::{LabDeployment, PAPER_TRANSMISSION_RANGE_M};
use wsn_data::stream::SensorStream;
use wsn_data::synth::SyntheticTraceConfig;
use wsn_data::window::WindowConfig;
use wsn_data::{DataPoint, HopCount, PointSet, SensorId, Timestamp};
use wsn_netsim::fault::{FaultAction, FaultPlan};
use wsn_netsim::radio::{LossModel, RadioConfig};
use wsn_netsim::region::{AnySimulator, SimBackend, SimHandle};
use wsn_netsim::sim::SimConfig;
use wsn_netsim::stats::{MinAvgMax, NetworkStats};
use wsn_netsim::topology::Topology;
use wsn_ranking::{
    KnnAverageDistance, KthNeighborDistance, NeighborCountInverse, NnDistance, OutlierEstimate,
    RankingFunction,
};

/// Which outlier ranking function `R` an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingChoice {
    /// Distance to the nearest neighbour (the paper's `NN`).
    Nn,
    /// Average distance to the `k` nearest neighbours (the paper's `KNN`).
    KnnAverage {
        /// Number of neighbours `k`.
        k: usize,
    },
    /// Distance to the `k`-th nearest neighbour.
    KthNeighbor {
        /// Which neighbour's distance is the rank.
        k: usize,
    },
    /// Inverse of the number of neighbours within radius `alpha`.
    NeighborCountInverse {
        /// The neighbourhood radius `α`.
        alpha: f64,
    },
}

impl RankingChoice {
    /// Instantiates the ranking function behind a shared trait object so that
    /// every node of a heterogeneous experiment can clone it cheaply.
    pub fn build(&self) -> Arc<dyn RankingFunction> {
        match *self {
            RankingChoice::Nn => Arc::new(NnDistance),
            RankingChoice::KnnAverage { k } => Arc::new(KnnAverageDistance::new(k)),
            RankingChoice::KthNeighbor { k } => Arc::new(KthNeighborDistance::new(k)),
            RankingChoice::NeighborCountInverse { alpha } => {
                Arc::new(NeighborCountInverse::new(alpha))
            }
        }
    }

    /// The label the paper's plots use for this ranking function.
    pub fn label(&self) -> &'static str {
        match self {
            RankingChoice::Nn => "NN",
            RankingChoice::KnnAverage { .. } => "KNN",
            RankingChoice::KthNeighbor { .. } => "KthNN",
            RankingChoice::NeighborCountInverse { .. } => "CountInv",
        }
    }
}

/// Which detection algorithm an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmConfig {
    /// The distributed global algorithm of §5 (Algorithm 1).
    Global {
        /// Ranking function.
        ranking: RankingChoice,
    },
    /// The distributed semi-global algorithm of §6 (Algorithm 2).
    SemiGlobal {
        /// Ranking function.
        ranking: RankingChoice,
        /// The hop diameter `d` (the plots' `epsilon`).
        hop_diameter: HopCount,
    },
    /// The centralized baseline of §7.1 (windows shipped to a sink over AODV).
    Centralized {
        /// Ranking function used by the sink.
        ranking: RankingChoice,
    },
}

impl AlgorithmConfig {
    /// The label the paper's plots use for this configuration.
    pub fn label(&self) -> String {
        match self {
            AlgorithmConfig::Global { ranking } => format!("Global-{}", ranking.label()),
            AlgorithmConfig::SemiGlobal { hop_diameter, .. } => {
                format!("Semi-global, epsilon={hop_diameter}")
            }
            AlgorithmConfig::Centralized { .. } => "Centralized".to_string(),
        }
    }

    /// The ranking function of this configuration.
    pub fn ranking(&self) -> RankingChoice {
        match *self {
            AlgorithmConfig::Global { ranking } => ranking,
            AlgorithmConfig::SemiGlobal { ranking, .. } => ranking,
            AlgorithmConfig::Centralized { ranking } => ranking,
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of deployed sensors (53 for the full evaluation, 32 for the
    /// scaling study).
    pub sensor_count: usize,
    /// Seed of the deployment layout jitter.
    pub deployment_seed: u64,
    /// Synthetic trace parameters (sampling interval, rounds, field model,
    /// anomaly injection, missing-data probability).
    pub trace: SyntheticTraceConfig,
    /// Seed of the trace generator.
    pub trace_seed: u64,
    /// Seed of the simulator's channel randomness.
    pub sim_seed: u64,
    /// Sliding-window length `w`, in samples.
    pub window_samples: u64,
    /// Number of outliers to report, `n`.
    pub n: usize,
    /// The algorithm under test.
    pub algorithm: AlgorithmConfig,
    /// Packet-loss model of the channel.
    pub loss: LossModel,
    /// Radio range in metres.
    pub transmission_range_m: f64,
    /// Which simulation engine runs the experiment. Both backends produce
    /// bit-for-bit identical outcomes; the partitioned one trades worker
    /// threads for wall-clock time on large deployments.
    pub backend: SimBackend,
    /// Scheduled node deaths, late joins and per-node duty cycles (see
    /// [`wsn_netsim::fault`]). `None` runs the paper's static network. Not
    /// supported by the centralized baseline (its AODV routes assume a
    /// static sink tree).
    pub fault_plan: Option<FaultPlan>,
    /// Staleness threshold, in seconds, after which the distributed
    /// detectors presume a silent neighbour dead and prune its state
    /// ([`GlobalNode::with_liveness_timeout`]). `None` (the default)
    /// preserves the paper's static-network behaviour exactly.
    pub liveness_timeout_secs: Option<f64>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sensor_count: wsn_data::lab::LAB_SENSOR_COUNT,
            deployment_seed: 1,
            trace: SyntheticTraceConfig::default(),
            trace_seed: 1,
            sim_seed: 1,
            window_samples: 20,
            n: 4,
            algorithm: AlgorithmConfig::Global { ranking: RankingChoice::Nn },
            loss: LossModel::Reliable,
            transmission_range_m: PAPER_TRANSMISSION_RANGE_M,
            backend: SimBackend::Sequential,
            fault_plan: None,
            liveness_timeout_secs: None,
        }
    }
}

impl ExperimentConfig {
    /// A small, fast configuration used by unit tests and doc examples: a
    /// handful of sensors, a short trace, no packet loss. The radio range is
    /// widened so that the sparse 9-sensor layout is still connected (the
    /// paper's 6.77 m range is tuned for the 53-sensor density).
    pub fn small() -> Self {
        ExperimentConfig {
            sensor_count: 9,
            trace: SyntheticTraceConfig { rounds: 6, ..Default::default() },
            window_samples: 8,
            n: 2,
            transmission_range_m: 20.0,
            ..Default::default()
        }
    }

    /// Replaces the algorithm under test.
    pub fn with_algorithm(mut self, algorithm: AlgorithmConfig) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the sliding-window length `w` (in samples).
    pub fn with_window_samples(mut self, w: u64) -> Self {
        self.window_samples = w;
        self
    }

    /// Replaces the number of reported outliers `n`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Replaces the simulation seed (the paper averages four seeds per point).
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self
    }

    /// Replaces the simulation backend.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Installs a fault plan (deaths, late joins, duty cycles).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the detectors' staleness-based neighbour liveness timeout.
    pub fn with_liveness_timeout(mut self, secs: f64) -> Self {
        self.liveness_timeout_secs = Some(secs);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero sensors, zero outliers,
    /// a zero-length window, or an invalid trace configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.sensor_count == 0 {
            return Err(CoreError::InvalidConfig("sensor count must be positive".into()));
        }
        if self.n == 0 {
            return Err(CoreError::InvalidConfig("n must be at least 1".into()));
        }
        if self.window_samples == 0 {
            return Err(CoreError::InvalidConfig("window must hold at least one sample".into()));
        }
        if !self.transmission_range_m.is_finite() || self.transmission_range_m <= 0.0 {
            return Err(CoreError::InvalidConfig("transmission range must be positive".into()));
        }
        if let Some(t) = self.liveness_timeout_secs {
            if !t.is_finite() || t <= 0.0 {
                return Err(CoreError::InvalidConfig("liveness timeout must be positive".into()));
            }
        }
        if self.fault_plan.as_ref().is_some_and(|p| !p.is_empty())
            && matches!(self.algorithm, AlgorithmConfig::Centralized { .. })
        {
            return Err(CoreError::InvalidConfig(
                "fault plans are not supported by the centralized baseline".into(),
            ));
        }
        self.trace.validate().map_err(CoreError::from)
    }

    /// The sampling schedule implied by the trace configuration.
    pub fn schedule(&self) -> SamplingSchedule {
        SamplingSchedule::new(self.trace.sample_interval_secs, self.trace.rounds)
    }

    /// A generous simulation deadline: all sampling rounds plus settling time
    /// for the protocol to reach quiescence.
    pub fn deadline(&self) -> Timestamp {
        let secs = self.trace.sample_interval_secs * (self.trace.rounds as f64 + 2.0) + 600.0;
        Timestamp::from_secs_f64(secs)
    }
}

/// The measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The plot label of the algorithm that ran ("Centralized", "Global-NN", …).
    pub label: String,
    /// The configuration that produced this outcome.
    pub config: ExperimentConfig,
    /// Link-layer and energy statistics of the whole run.
    pub stats: NetworkStats,
    /// Per-node detection accuracy at the end of the run.
    pub accuracy: AccuracyReport,
    /// Per-node precision/recall against the trace's injected ground-truth
    /// labels (each node graded over the labels in its algorithm's scope).
    pub labels: LabelReport,
    /// Whether every node's estimate agreed with every other node's
    /// (Theorem 1's property; only meaningful for the global algorithm).
    pub all_estimates_agree: bool,
    /// Whether the protocol reached quiescence before the deadline.
    pub quiescent: bool,
    /// Total protocol-level data points broadcast by the distributed
    /// algorithms (zero for the centralized baseline, which ships whole
    /// windows instead).
    pub data_points_sent: u64,
    /// Number of sampling rounds simulated.
    pub rounds: usize,
    /// Number of sensors simulated.
    pub node_count: usize,
}

impl ExperimentOutcome {
    /// Average transmit energy per node per sampling round, in joules — the
    /// y-axis of Figures 4, 7, 8 and 9 (left panels).
    pub fn avg_tx_energy_per_node_per_round(&self) -> f64 {
        self.per_node_per_round(self.stats.tx_energy_summary().avg)
    }

    /// Average receive energy per node per sampling round, in joules — the
    /// y-axis of Figures 4, 7, 8 and 9 (right panels).
    pub fn avg_rx_energy_per_node_per_round(&self) -> f64 {
        self.per_node_per_round(self.stats.rx_energy_summary().avg)
    }

    /// Min / average / maximum total energy consumed by a node over the whole
    /// run — the quantity of Figure 5.
    pub fn total_energy_summary(&self) -> MinAvgMax {
        self.stats.total_energy_summary()
    }

    /// Figure 5's summary normalised by the average — the quantity of Figure 6.
    pub fn normalized_energy_summary(&self) -> MinAvgMax {
        self.total_energy_summary().normalized()
    }

    /// The detection accuracy (fraction of nodes with exactly the correct
    /// outlier estimate at the end of the run).
    pub fn accuracy(&self) -> f64 {
        self.accuracy.accuracy()
    }

    /// Mean per-node recall: the average fraction of each node's true
    /// outliers that appear in its estimate (a gentler measure than the
    /// exact-set accuracy above).
    pub fn mean_recall(&self) -> f64 {
        self.accuracy.mean_recall()
    }

    /// Mean per-node precision against the injected ground-truth labels: of
    /// the outliers each node reported, the fraction that the workload
    /// generator actually injected.
    pub fn label_precision(&self) -> f64 {
        self.labels.mean_precision()
    }

    /// Mean per-node recall against the injected ground-truth labels: of the
    /// anomalies injected within each node's scope, the fraction reported
    /// (capped below 1.0 when more than `n` anomalies are in scope).
    pub fn label_recall(&self) -> f64 {
        self.labels.mean_recall()
    }

    fn per_node_per_round(&self, per_node_total: f64) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            per_node_total / self.rounds as f64
        }
    }
}

/// A detector that can be either of the two distributed algorithms, so one
/// simulator type can run every distributed configuration.
///
/// The variants differ in size (the semi-global node carries per-hop engine
/// and prefix state), but the enum is held once per simulated node inside
/// its application — boxing the payload would buy nothing and cost an
/// indirection on every event.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum AnyDetector {
    /// The global algorithm (§5).
    Global(GlobalNode<Arc<dyn RankingFunction>>),
    /// The semi-global algorithm (§6).
    SemiGlobal(SemiGlobalNode<Arc<dyn RankingFunction>>),
}

impl OutlierDetector for AnyDetector {
    fn id(&self) -> SensorId {
        match self {
            AnyDetector::Global(d) => d.id(),
            AnyDetector::SemiGlobal(d) => d.id(),
        }
    }

    fn n(&self) -> usize {
        match self {
            AnyDetector::Global(d) => d.n(),
            AnyDetector::SemiGlobal(d) => d.n(),
        }
    }

    fn add_local_points(&mut self, points: Vec<DataPoint>) {
        match self {
            AnyDetector::Global(d) => d.add_local_points(points),
            AnyDetector::SemiGlobal(d) => d.add_local_points(points),
        }
    }

    fn receive(&mut self, from: SensorId, points: Vec<DataPoint>) {
        match self {
            AnyDetector::Global(d) => d.receive(from, points),
            AnyDetector::SemiGlobal(d) => d.receive(from, points),
        }
    }

    fn receive_arcs(&mut self, from: SensorId, points: Vec<Arc<DataPoint>>) {
        match self {
            AnyDetector::Global(d) => d.receive_arcs(from, points),
            AnyDetector::SemiGlobal(d) => d.receive_arcs(from, points),
        }
    }

    fn advance_time(&mut self, now: Timestamp) {
        match self {
            AnyDetector::Global(d) => d.advance_time(now),
            AnyDetector::SemiGlobal(d) => d.advance_time(now),
        }
    }

    fn retain_neighbors(&mut self, live: &[SensorId]) {
        match self {
            AnyDetector::Global(d) => d.retain_neighbors(live),
            AnyDetector::SemiGlobal(d) => d.retain_neighbors(live),
        }
    }

    fn process(&mut self, neighbors: &[SensorId]) -> Option<OutlierBroadcast> {
        match self {
            AnyDetector::Global(d) => d.process(neighbors),
            AnyDetector::SemiGlobal(d) => d.process(neighbors),
        }
    }

    fn estimate(&self) -> OutlierEstimate {
        match self {
            AnyDetector::Global(d) => d.estimate(),
            AnyDetector::SemiGlobal(d) => d.estimate(),
        }
    }

    fn held_points(&self) -> &PointSet {
        match self {
            AnyDetector::Global(d) => d.held_points(),
            AnyDetector::SemiGlobal(d) => d.held_points(),
        }
    }
}

impl AnyDetector {
    /// Total data points this node has broadcast.
    pub fn points_sent(&self) -> u64 {
        match self {
            AnyDetector::Global(d) => d.points_sent(),
            AnyDetector::SemiGlobal(d) => d.points_sent(),
        }
    }

    /// Enables the staleness-based neighbour liveness timeout on whichever
    /// detector this is.
    pub fn with_liveness_timeout(self, secs: f64) -> Self {
        match self {
            AnyDetector::Global(d) => AnyDetector::Global(d.with_liveness_timeout(secs)),
            AnyDetector::SemiGlobal(d) => AnyDetector::SemiGlobal(d.with_liveness_timeout(secs)),
        }
    }

    /// Serializes the wrapped detector's canonical state (see
    /// [`crate::persist`]); the variant is recorded in the payload's `kind`
    /// discriminator.
    pub fn persist_snapshot(&self) -> wsn_json::JsonValue {
        match self {
            AnyDetector::Global(d) => d.persist_snapshot(),
            AnyDetector::SemiGlobal(d) => d.persist_snapshot(),
        }
    }

    /// Installs a snapshot into the wrapped detector. The payload's `kind`
    /// must match the live variant — a global snapshot never restores into a
    /// semi-global node or vice versa.
    ///
    /// # Errors
    ///
    /// [`crate::persist::PersistError::Mismatch`] on a variant or
    /// configuration disagreement, [`crate::persist::PersistError::Schema`]
    /// on malformed payloads.
    pub fn persist_restore(
        &mut self,
        dump: &wsn_json::JsonValue,
    ) -> Result<(), crate::persist::PersistError> {
        match self {
            AnyDetector::Global(d) => d.persist_restore(dump),
            AnyDetector::SemiGlobal(d) => d.persist_restore(dump),
        }
    }
}

impl std::fmt::Debug for AnyDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyDetector::Global(d) => {
                write!(f, "AnyDetector::Global(id={}, n={})", d.id(), d.n())
            }
            AnyDetector::SemiGlobal(d) => write!(
                f,
                "AnyDetector::SemiGlobal(id={}, n={}, d={})",
                d.id(),
                d.n(),
                d.hop_diameter()
            ),
        }
    }
}

/// Replays a [`FaultPlan`] onto a running simulator, in-band: the simulator
/// is advanced to each event's time before the event is applied, so deaths
/// and joins interleave with protocol traffic exactly where the plan puts
/// them. Joins construct a fresh application via the experiment's app
/// factory, mark it schedule-driven, and install the node's *remaining*
/// sampling rounds (past rounds are skipped, not replayed — a late joiner
/// has no data for them).
pub(crate) struct FaultDriver<'a, A> {
    plan: &'a FaultPlan,
    schedule: &'a SamplingSchedule,
    make_app: Box<dyn FnMut(SensorId) -> A + 'a>,
    /// Index of the next unapplied event of `plan.events()`.
    next: usize,
}

impl<'a, A> FaultDriver<'a, A>
where
    A: wsn_netsim::sim::Application + crate::app::ScheduleDriven,
{
    pub fn new(
        plan: &'a FaultPlan,
        schedule: &'a SamplingSchedule,
        make_app: Box<dyn FnMut(SensorId) -> A + 'a>,
    ) -> Self {
        FaultDriver { plan, schedule, make_app, next: 0 }
    }

    /// Applies every not-yet-applied event scheduled at or before `until`.
    pub fn apply_through<S: SimHandle<A> + ?Sized>(&mut self, sim: &mut S, until: Timestamp) {
        while let Some(ev) = self.plan.events().get(self.next) {
            if ev.at > until {
                break;
            }
            self.next += 1;
            sim.run_until(ev.at);
            match &ev.action {
                FaultAction::Death(id) => sim.remove_node(*id),
                FaultAction::Join { id, position } => {
                    let mut app = (self.make_app)(*id);
                    app.sampling_installed();
                    let _ = sim.add_node(*id, *position, app);
                    sim.schedule_timer_batch(self.schedule.node_batch_after(sim.now(), *id));
                }
            }
        }
    }

    /// Applies all remaining events (call before waiting for quiescence).
    pub fn finish<S: SimHandle<A> + ?Sized>(&mut self, sim: &mut S) {
        self.apply_through(sim, Timestamp::from_micros(u64::MAX));
    }

    /// Index of the next unapplied plan event — the fault-plan cursor a
    /// checkpoint records and a resume validates (see [`crate::persist`]).
    pub fn cursor(&self) -> usize {
        self.next
    }
}

/// Runs one experiment end to end: deployment → trace → simulation → metrics.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for invalid parameters,
/// [`CoreError::DisconnectedNetwork`] when the deployment is not connected at
/// the configured radio range, and propagates trace-generation errors.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentOutcome, CoreError> {
    config.validate()?;
    let deployment = LabDeployment::with_sensor_count(config.sensor_count, config.deployment_seed)?;
    // Nodes whose first fault event is a join start outside the network and
    // are added by the fault loop when their time comes.
    let absent = config.fault_plan.as_ref().map(FaultPlan::initially_absent).unwrap_or_default();
    let topology = if absent.is_empty() {
        Topology::from_deployment(&deployment, config.transmission_range_m)
    } else {
        let specs: Vec<wsn_data::stream::SensorSpec> =
            deployment.sensors().iter().filter(|s| !absent.contains(&s.id)).copied().collect();
        Topology::from_specs(&specs, config.transmission_range_m)
    };
    if !topology.is_connected() {
        return Err(CoreError::DisconnectedNetwork);
    }
    let mut trace = deployment.generate_trace(&config.trace, config.trace_seed)?;
    // §7.1: missing readings are replaced by the mean of the preceding window.
    WindowMeanImputer::new(config.window_samples as usize).impute_trace(&mut trace);

    let window =
        WindowConfig::from_samples(config.window_samples, config.trace.sample_interval_secs)?;
    let schedule = config.schedule();
    let sim_config = SimConfig {
        radio: RadioConfig::with_range(config.transmission_range_m).with_loss(config.loss),
        seed: config.sim_seed,
        ..Default::default()
    };
    let ranking = config.algorithm.ranking().build();

    match config.algorithm {
        AlgorithmConfig::Global { .. } | AlgorithmConfig::SemiGlobal { .. } => run_distributed(
            config,
            &deployment,
            topology,
            &trace,
            window,
            schedule,
            sim_config,
            ranking,
        ),
        AlgorithmConfig::Centralized { .. } => run_centralized(
            config,
            &deployment,
            topology,
            &trace,
            window,
            schedule,
            sim_config,
            ranking,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_distributed(
    config: &ExperimentConfig,
    deployment: &LabDeployment,
    topology: Topology,
    trace: &wsn_data::stream::DeploymentTrace,
    window: WindowConfig,
    schedule: SamplingSchedule,
    sim_config: SimConfig,
    ranking: Arc<dyn RankingFunction>,
) -> Result<ExperimentOutcome, CoreError> {
    let hop_diameter = match config.algorithm {
        AlgorithmConfig::SemiGlobal { hop_diameter, .. } => Some(hop_diameter),
        _ => None,
    };
    let make_app = |id: SensorId| {
        let stream = trace
            .stream(id)
            .ok()
            .cloned()
            .unwrap_or_else(|| SensorStream::new(deployment.sensors()[0]));
        let detector = match hop_diameter {
            None => AnyDetector::Global(GlobalNode::new(id, ranking.clone(), config.n, window)),
            Some(d) => AnyDetector::SemiGlobal(SemiGlobalNode::new(
                id,
                ranking.clone(),
                config.n,
                d,
                window,
            )),
        };
        let detector = match config.liveness_timeout_secs {
            Some(t) => detector.with_liveness_timeout(t),
            None => detector,
        };
        DetectorApp::new(detector, stream, schedule)
    };
    let mut sim: AnySimulator<DetectorApp<AnyDetector>> = crate::app::any_simulator_with_sampling(
        config.backend,
        sim_config,
        topology,
        &schedule,
        &make_app,
    );
    if let Some(plan) = &config.fault_plan {
        sim.set_duty_cycles(Arc::new(plan.duty_cycles().clone()));
        let mut driver = FaultDriver::new(plan, &schedule, Box::new(make_app));
        driver.finish(&mut sim);
    }
    let quiescent = sim.run_until_quiescent(config.deadline());
    // Under churn the radio graph at the end differs from the initial one;
    // the semi-global d-hop grading scopes are taken over what is actually
    // deployed when the verdict is read.
    let grading_topology = sim.topology().clone();

    // Each node's own data D_i is whatever it currently holds that originated
    // at itself; this is the dataset the correctness theorems are stated over.
    let mut local_data: BTreeMap<SensorId, Vec<DataPoint>> = BTreeMap::new();
    let mut estimates: BTreeMap<SensorId, OutlierEstimate> = BTreeMap::new();
    let mut data_points_sent = 0;
    sim.for_each_app(&mut |id, app| {
        let own: Vec<DataPoint> =
            app.detector().held_points().iter().filter(|p| p.key.origin == id).cloned().collect();
        local_data.insert(id, own);
        estimates.insert(id, app.detector().estimate());
        data_points_sent += app.detector().points_sent();
    });
    let label_keys: BTreeSet<wsn_data::PointKey> = trace.anomaly_keys().into_iter().collect();
    let (truth, label_truth) = paired_truths(
        &ranking,
        config.n,
        &label_keys,
        &local_data,
        hop_diameter.map(|d| (&grading_topology, u32::from(d))),
    );
    let accuracy = truth.grade(&estimates);
    let labels = label_truth.grade(&estimates);
    let all_estimates_agree = hop_diameter.is_none() && estimates_agree(&estimates);
    Ok(ExperimentOutcome {
        label: config.algorithm.label(),
        config: config.clone(),
        stats: sim.network_stats(),
        accuracy,
        labels,
        all_estimates_agree,
        quiescent,
        data_points_sent,
        rounds: config.trace.rounds,
        node_count: config.sensor_count,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_centralized(
    config: &ExperimentConfig,
    deployment: &LabDeployment,
    topology: Topology,
    trace: &wsn_data::stream::DeploymentTrace,
    window: WindowConfig,
    schedule: SamplingSchedule,
    sim_config: SimConfig,
    ranking: Arc<dyn RankingFunction>,
) -> Result<ExperimentOutcome, CoreError> {
    let sink = deployment.sink();
    let mut sim: AnySimulator<CentralizedApp<Arc<dyn RankingFunction>>> =
        crate::app::any_simulator_with_sampling(
            config.backend,
            sim_config,
            topology,
            &schedule,
            |id| {
                let stream = trace
                    .stream(id)
                    .ok()
                    .cloned()
                    .unwrap_or_else(|| SensorStream::new(deployment.sensors()[0]));
                CentralizedApp::new(id, sink, ranking.clone(), config.n, window, stream, schedule)
            },
        );
    let quiescent = sim.run_until_quiescent(config.deadline());

    let mut local_data: BTreeMap<SensorId, Vec<DataPoint>> = BTreeMap::new();
    let mut estimates: BTreeMap<SensorId, OutlierEstimate> = BTreeMap::new();
    sim.for_each_app(&mut |id, app| {
        local_data.insert(id, app.local_window().to_vec());
        estimates.insert(id, app.estimate());
    });
    let label_keys: BTreeSet<wsn_data::PointKey> = trace.anomaly_keys().into_iter().collect();
    let (truth, label_truth) = paired_truths(&ranking, config.n, &label_keys, &local_data, None);
    let accuracy = truth.grade(&estimates);
    let labels = label_truth.grade(&estimates);
    let all_estimates_agree = estimates_agree(&estimates);

    Ok(ExperimentOutcome {
        label: config.algorithm.label(),
        config: config.clone(),
        stats: sim.network_stats(),
        accuracy,
        labels,
        all_estimates_agree,
        quiescent,
        data_points_sent: 0,
        rounds: config.trace.rounds,
        node_count: config.sensor_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(algorithm: AlgorithmConfig) -> ExperimentConfig {
        ExperimentConfig::small().with_algorithm(algorithm)
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(ExperimentConfig::small().validate().is_ok());
        let mut c = ExperimentConfig::small();
        c.sensor_count = 0;
        assert!(matches!(c.validate(), Err(CoreError::InvalidConfig(_))));
        let mut c = ExperimentConfig::small();
        c.n = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::small();
        c.window_samples = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::small();
        c.transmission_range_m = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels_match_the_papers_plot_legends() {
        assert_eq!(AlgorithmConfig::Global { ranking: RankingChoice::Nn }.label(), "Global-NN");
        assert_eq!(
            AlgorithmConfig::Global { ranking: RankingChoice::KnnAverage { k: 4 } }.label(),
            "Global-KNN"
        );
        assert_eq!(
            AlgorithmConfig::SemiGlobal { ranking: RankingChoice::Nn, hop_diameter: 2 }.label(),
            "Semi-global, epsilon=2"
        );
        assert_eq!(
            AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }.label(),
            "Centralized"
        );
    }

    #[test]
    fn ranking_choice_builds_every_function() {
        assert_eq!(RankingChoice::Nn.build().name(), "nn");
        assert_eq!(RankingChoice::KnnAverage { k: 3 }.label(), "KNN");
        assert_eq!(RankingChoice::KthNeighbor { k: 3 }.label(), "KthNN");
        assert_eq!(RankingChoice::NeighborCountInverse { alpha: 1.0 }.label(), "CountInv");
    }

    #[test]
    fn disconnected_network_is_rejected() {
        let mut c = ExperimentConfig::small();
        c.transmission_range_m = 0.5; // far too short to connect anything
        assert_eq!(run_experiment(&c).unwrap_err(), CoreError::DisconnectedNetwork);
    }

    #[test]
    fn global_experiment_converges_and_is_accurate() {
        let outcome =
            run_experiment(&small(AlgorithmConfig::Global { ranking: RankingChoice::Nn })).unwrap();
        assert!(outcome.quiescent, "protocol must reach quiescence");
        assert!(outcome.all_estimates_agree, "Theorem 1: all estimates agree");
        assert!(outcome.accuracy.all_correct(), "Theorem 2: estimates are correct");
        assert!(outcome.data_points_sent > 0);
        assert!(outcome.stats.total_packets_sent() > 0);
        assert!(outcome.avg_tx_energy_per_node_per_round() > 0.0);
        assert!(outcome.avg_rx_energy_per_node_per_round() > 0.0);
        assert_eq!(outcome.label, "Global-NN");
        assert_eq!(outcome.node_count, 9);
    }

    #[test]
    fn semi_global_experiment_is_accurate_per_node() {
        // Unlike the global algorithm, the semi-global variant carries no
        // exact correctness theorem (§6), and each node here is graded
        // against the exact O_n of its d-hop neighbourhood — a strict target.
        // Its accuracy depends on how pronounced the outliers are (in the
        // paper's real trace, failing motes report wildly wrong values); with
        // a realistic anomaly rate most nodes are exactly right.
        let mut config = ExperimentConfig::small().with_algorithm(AlgorithmConfig::SemiGlobal {
            ranking: RankingChoice::Nn,
            hop_diameter: 2,
        });
        config.trace.rounds = 10;
        config.trace.anomalies =
            wsn_data::synth::AnomalyModel { spike_probability: 0.08, ..Default::default() };
        // The per-node target is statistical, so the accuracy depends on the
        // seed's draw of spike locations: across trace seeds 0..16 this
        // configuration scores 0.78-1.0 except a couple of unlucky draws.
        // Pin a representative seed rather than asserting on the tail.
        config.trace_seed = 4;
        let outcome = run_experiment(&config).unwrap();
        assert!(outcome.quiescent);
        assert!(outcome.accuracy() >= 0.7, "semi-global accuracy was {}", outcome.accuracy());
    }

    #[test]
    fn label_metrics_are_reported_alongside_agreement_accuracy() {
        let mut config = small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        config.trace.rounds = 8;
        config.trace.missing_probability = 0.0;
        config.trace.anomalies = wsn_data::synth::AnomalyModel {
            spike_probability: 0.10,
            spike_magnitude: 80.0,
            ..wsn_data::synth::AnomalyModel::none()
        };
        config.n = 3;
        let outcome = run_experiment(&config).unwrap();
        assert_eq!(outcome.labels.total_nodes, 9);
        assert!(outcome.labels.has_labels(), "10% spikes over 72 readings must label something");
        // The huge spikes dominate the feature space, so the reported
        // outliers overlap the injected labels.
        assert!(outcome.label_precision() > 0.0);
        assert!(outcome.label_recall() > 0.0);
    }

    #[test]
    fn centralized_experiment_reaches_the_sink_and_back() {
        let outcome =
            run_experiment(&small(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }))
                .unwrap();
        assert!(outcome.quiescent);
        assert_eq!(outcome.label, "Centralized");
        assert_eq!(outcome.data_points_sent, 0);
        assert!(outcome.stats.total_packets_sent() > 0);
        assert!(outcome.accuracy() > 0.5, "accuracy was {}", outcome.accuracy());
    }

    #[test]
    fn centralized_uses_more_energy_than_global_nn() {
        // The headline comparison of the evaluation, on a small instance.
        let distributed =
            run_experiment(&small(AlgorithmConfig::Global { ranking: RankingChoice::Nn })).unwrap();
        let centralized =
            run_experiment(&small(AlgorithmConfig::Centralized { ranking: RankingChoice::Nn }))
                .unwrap();
        assert!(
            centralized.avg_tx_energy_per_node_per_round()
                > distributed.avg_tx_energy_per_node_per_round(),
            "centralized TX {} vs distributed TX {}",
            centralized.avg_tx_energy_per_node_per_round(),
            distributed.avg_tx_energy_per_node_per_round()
        );
    }

    #[test]
    fn outcomes_are_deterministic_per_seed() {
        let config = small(AlgorithmConfig::Global { ranking: RankingChoice::Nn });
        let a = run_experiment(&config).unwrap();
        let b = run_experiment(&config).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.data_points_sent, b.data_points_sent);
    }
}
